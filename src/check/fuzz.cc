#include "src/check/fuzz.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>

#include "src/check/template_gen.h"
#include "src/core/package.h"
#include "src/core/serialize_binary.h"
#include "src/core/serialize_text.h"
#include "src/dev/cryptoacc/cryptoacc_device.h"
#include "src/dev/ftpm/ftpm_device.h"
#include "src/dev/vc4/vc4_firmware.h"
#include "src/drv/bcm_sdhost_driver.h"
#include "src/drv/cryptoacc_driver.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/obs/edge.h"
#include "src/obs/telemetry.h"
#include "src/tee/attestation.h"
#include "src/workload/deploy_util.h"

namespace dlt {

namespace {

constexpr char kProgramHeader[] = "driverlet-boundary v1";
constexpr char kReproHeader[] = "driverlet-boundary-repro v1";
constexpr size_t kSlots = 4;
constexpr int kCurveStride = 16;

struct OpName {
  BoundaryOp op;
  const char* name;
};

constexpr OpName kOpNames[] = {
    {BoundaryOp::kOpen, "open"},         {BoundaryOp::kClose, "close"},
    {BoundaryOp::kInvoke, "invoke"},     {BoundaryOp::kSubmit, "submit"},
    {BoundaryOp::kProcess, "process"},   {BoundaryOp::kRingPush, "push"},
    {BoundaryOp::kDoorbell, "doorbell"}, {BoundaryOp::kRingPop, "pop"},
    {BoundaryOp::kAttest, "attest"},     {BoundaryOp::kFaultArm, "fault"},
    {BoundaryOp::kFaultDisarm, "disarm"}, {BoundaryOp::kRegisterPackage, "register"},
};
constexpr size_t kOpCount = sizeof(kOpNames) / sizeof(kOpNames[0]);

const char* NameOf(BoundaryOp op) {
  for (const OpName& n : kOpNames) {
    if (n.op == op) return n.name;
  }
  return "?";
}

// SplitMix64: the mutation engine's deterministic draw stream.
struct FuzzRng {
  uint64_t state;
  uint64_t Next() {
    state += 0x9e3779b97f4a7c15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
};

uint64_t Fnv1a(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

uint64_t Log2Bucket(uint64_t v) {
  uint64_t b = 0;
  while (v > 1) {
    v >>= 1;
    ++b;
  }
  return b;
}

// ---------------------------------------------------------------------------
// Program execution
// ---------------------------------------------------------------------------

// The fuzzer's class table IS the registered-class table: operands are taken
// modulo its size, so a class added to RegisteredDriverletClasses() joins the
// fuzzing surface without touching this file.
size_t NumClasses() { return RegisteredDriverletClasses().size(); }

const std::vector<uint8_t>& SealedPackage(size_t cls) {
  // Recording a campaign per class is the expensive part; seal once per
  // process and reuse the bytes for every fuzz run.
  const std::vector<DriverletClassSpec>& classes = RegisteredDriverletClasses();
  static std::vector<const std::vector<uint8_t>*>* pkgs =
      new std::vector<const std::vector<uint8_t>*>(classes.size(), nullptr);
  size_t i = cls % classes.size();
  if ((*pkgs)[i] == nullptr) {
    (*pkgs)[i] = new std::vector<uint8_t>(classes[i].build_package());
  }
  return *(*pkgs)[i];
}

// The register op's package corpus: two tiny generated templates under the
// reserved driverlet name "fzz", built once per process. Generated templates
// touch the gen device ids (DMA 0 + device 1), both TEE-mapped on the
// deployment testbed, so the intact seal can actually register.
const DriverletPackage& FzzPackage() {
  static const DriverletPackage* pkg = [] {
    auto* p = new DriverletPackage;
    p->driverlet = "fzz";
    for (uint64_t s = 0; s < 2; ++s) {
      GenConfig gc;
      gc.seed = 0x5a + s;
      gc.min_blocks = 1;
      gc.max_blocks = 2;
      GeneratedCase c = GenerateCase(gc);
      c.tpl.name = "fzz_" + std::to_string(s);
      c.tpl.entry = "replay_fzz";
      p->templates.push_back(std::move(c.tpl));
    }
    return p;
  }();
  return *pkg;
}

// Pre-seal serialized payload per wire framing — the bytes SealPackageRaw
// wraps, and the mutation substrate for the re-sign class.
const std::vector<uint8_t>& FzzPayload(PackageWire wire) {
  static const std::vector<uint8_t>* payloads[3] = {nullptr, nullptr, nullptr};
  size_t i = static_cast<size_t>(wire) % 3;
  if (payloads[i] == nullptr) {
    const DriverletPackage& pkg = FzzPackage();
    switch (static_cast<PackageWire>(i)) {
      case PackageWire::kV1Text: {
        std::string text = TemplatesToText(pkg.templates);
        payloads[i] = new std::vector<uint8_t>(text.begin(), text.end());
        break;
      }
      case PackageWire::kV1Binary:
        payloads[i] = new std::vector<uint8_t>(TemplatesToBinary(pkg.templates));
        break;
      default:
        payloads[i] = new std::vector<uint8_t>(TemplatesToBinaryV2(pkg.templates));
        break;
    }
  }
  return *payloads[i];
}

const std::vector<uint8_t>& FzzSealed(PackageWire wire) {
  static const std::vector<uint8_t>* sealed[3] = {nullptr, nullptr, nullptr};
  size_t i = static_cast<size_t>(wire) % 3;
  if (sealed[i] == nullptr) {
    sealed[i] = new std::vector<uint8_t>(
        SealPackageRaw("fzz", static_cast<PackageWire>(i), FzzPayload(wire), kDeveloperKey));
  }
  return *sealed[i];
}

// Deterministic mutant of the sealed "fzz" package. c%4 selects the class:
//   0  intact seal — the only class RegisterDriverlet may accept;
//   1  post-seal bit flips — HMAC breaks, the parser must answer kCorrupt;
//   2  truncation — framing/HMAC failure, kCorrupt;
//   3  payload mutated BEFORE sealing, then re-signed — a valid signature
//      over a garbage interior, so the deserializers themselves are on trial.
std::vector<uint8_t> MutantPackageBytes(uint64_t salt, PackageWire wire, uint64_t c) {
  uint64_t m = c % 4;
  FuzzRng rng{(salt * 131 + c) * 0x2545f4914f6cdd1dull + static_cast<uint64_t>(wire)};
  std::vector<uint8_t> bytes;
  if (m == 3) {
    std::vector<uint8_t> payload = FzzPayload(wire);
    size_t flips = 1 + rng.Next() % 8;
    for (size_t f = 0; f < flips && !payload.empty(); ++f) {
      payload[rng.Next() % payload.size()] ^= static_cast<uint8_t>(1u << (rng.Next() % 8));
    }
    bytes = SealPackageRaw("fzz", wire, payload, kDeveloperKey);
  } else {
    bytes = FzzSealed(wire);
    if (m == 1) {
      size_t flips = 1 + rng.Next() % 8;
      for (size_t f = 0; f < flips && !bytes.empty(); ++f) {
        bytes[rng.Next() % bytes.size()] ^= static_cast<uint8_t>(1u << (rng.Next() % 8));
      }
    } else if (m == 2) {
      bytes.resize(rng.Next() % bytes.size());
    }
  }
  return bytes;
}

const char* EntryOf(size_t cls) {
  const std::vector<DriverletClassSpec>& classes = RegisteredDriverletClasses();
  return classes[cls % classes.size()].entry;
}

class BoundaryExec {
 public:
  explicit BoundaryExec(const BoundaryProgram& p) : prog_(p) {
    TestbedOptions opts;
    opts.secure_io = true;
    opts.probe_drivers = false;
    tb_ = std::make_unique<Rpi3Testbed>(opts);
    ReplayServiceConfig cfg;
    cfg.max_sessions = kSlots;
    cfg.queue_depth = 4;
    cfg.ring_depth = 4;       // small rings so wrap-around is routine
    cfg.quarantine_threshold = 2;
    cfg.enforce_integrity = true;  // rung 0 armed: fuzz the strictest policy
    service_ = std::make_unique<ReplayService>(&tb_->tee(), kDeveloperKey, cfg);
    injector_ = std::make_unique<FaultInjector>(&tb_->machine());
  }

  BoundaryRunResult Run() {
    // Warm the process-wide sealed-package cache before arming telemetry:
    // the one-time record campaigns emit counters, and a run's feature set
    // must not depend on whether an earlier run already paid that cost.
    for (size_t cls = 0; cls < NumClasses(); ++cls) SealedPackage(cls);
    for (size_t w = 0; w < 3; ++w) FzzSealed(static_cast<PackageWire>(w));
    Telemetry::Get().Enable();
    Telemetry::Get().Reset();
    EdgeCoverage::Get().Reset();
    EdgeCoverage::Get().Arm();
    Setup();
    for (size_t i = 0; i < prog_.actions.size() && ok(); ++i) {
      Step(prog_.actions[i], i);
      if (ok()) AfterAction();
      ++result_.actions_run;
    }
    if (ok()) Finish();
    EdgeCoverage::Get().Disarm();
    CollectFeatures();
    Telemetry::Get().Disable();
    result_.trace = std::move(trace_);
    return std::move(result_);
  }

 private:
  bool ok() const { return result_.invariant.empty(); }

  void Fail(const char* invariant, std::string detail) {
    if (!ok()) return;  // keep the first violation
    result_.invariant = invariant;
    result_.detail = std::move(detail);
  }

  void Trace(const std::string& line) {
    trace_ += line;
    trace_ += '\n';
  }

  // Statuses that must never escape the service boundary, whatever the
  // client does: they signal internal corruption, not client error.
  static bool StatusAllowed(Status s) {
    switch (s) {
      case Status::kBadState:
      case Status::kCorrupt:
      case Status::kUnsupported:
      case Status::kPermissionDenied:
        return false;
      default:
        return true;
    }
  }

  void CheckStatus(size_t idx, const char* what, Status s) {
    if (!StatusAllowed(s)) {
      Fail("allowed-status", std::string(what) + " returned " + StatusName(s) +
                                 " at action #" + std::to_string(idx));
    }
  }

  void Setup() {
    // Register only the classes the program opens (plus mmc as a floor), so
    // open-reject paths stay reachable for the other names.
    std::vector<bool> wanted(NumClasses(), false);
    bool any = false;
    for (const BoundaryAction& a : prog_.actions) {
      if (a.op == BoundaryOp::kOpen) {
        wanted[a.a % NumClasses()] = true;
        any = true;
      }
    }
    if (!any) wanted[0] = true;
    for (size_t cls = 0; cls < NumClasses(); ++cls) {
      if (!wanted[cls]) continue;
      const std::vector<uint8_t>& pkg = SealedPackage(cls);
      Result<std::string> name = service_->RegisterDriverlet(pkg.data(), pkg.size());
      if (!name.ok()) {
        Fail("allowed-status", std::string("registration of sealed package failed: ") +
                                   StatusName(name.status()));
        return;
      }
      class_name_[cls] = *name;
    }
  }

  // Synthesizes the invoke arguments for (class, entry variant, arg seed).
  // Buffers live in |arena_| for the whole run: Submit and RingPush borrow
  // views until their completions are taken.
  std::pair<std::string, ReplayArgs> SynthInvoke(size_t cls, uint64_t variant, uint64_t seed) {
    cls %= NumClasses();
    variant %= 4;
    std::string entry = EntryOf(cls);
    if (variant == 2) entry = EntryOf(cls + 1);  // cross-class: uncovered
    if (variant == 3) entry = "replay_nosuch";
    ReplayArgs args;
    if (cls == 3) {
      // fTPM command pipe. Variant 0: GetRandom at a covered length derived
      // from the seed (the recorded 32..256 range); variant 1: PcrExtend on a
      // covered bank index.
      uint64_t ord = variant == 1 ? kFtpmOrdPcrExtend : kFtpmOrdGetRandom;
      uint64_t arg = variant == 1 ? seed % kFtpmPcrCount : 32 + (seed % 8) * 32;
      arena_.push_back(PatternBuf(kFtpmPcrBytes, seed));
      std::vector<uint8_t>& req = arena_.back();
      arena_.emplace_back(kFtpmMaxRandom, 0);
      std::vector<uint8_t>& rsp = arena_.back();
      args.scalars = {{"ord", ord}, {"arg", arg}};
      args.ro_buffers["req"] = ConstBufferView{req.data(), req.size()};
      args.buffers["rsp"] = BufferView{rsp.data(), rsp.size()};
    } else if (cls == 4) {
      // DMA crypto engine. Variant 0: encrypt at a seed-picked length inside
      // the covered 1..4 chunk-count range; variant 1: digest one chunk. The
      // key is a free symbolic operand, so any value is covered.
      uint64_t op = variant == 1 ? kCaOpDigest : kCaOpEncrypt;
      uint64_t len = variant == 1 ? kCryptoChunkBytes : 256 * (1 + seed % 64);
      arena_.push_back(PatternBuf(len, seed));
      std::vector<uint8_t>& buf = arena_.back();
      arena_.emplace_back(op == kCaOpDigest ? kCaDigestBytes : len, 0);
      std::vector<uint8_t>& out = arena_.back();
      args.scalars = {{"op", op}, {"key", 0xc0ffee00 + (seed % 16)}, {"len", len}};
      args.ro_buffers["buf"] = ConstBufferView{buf.data(), buf.size()};
      args.buffers["out"] = BufferView{out.data(), out.size()};
    } else if (cls == 2) {
      // Camera capture. One shared frame buffer per run bounds arena growth;
      // frame content is not an invariant here, only boundary behaviour.
      if (camera_buf_.empty()) {
        camera_buf_.resize(Vc4Firmware::FrameBytes(1440) + 4096);
      }
      arena_.emplace_back(4, 0);
      std::vector<uint8_t>& img_size = arena_.back();
      args.scalars = {{"frame", 1 + (seed % 2)},
                      {"resolution", variant == 1 ? 1080 : 720},
                      {"buf_size", camera_buf_.size()}};
      args.buffers["buf"] = BufferView{camera_buf_.data(), camera_buf_.size()};
      args.buffers["img_size"] = BufferView{img_size.data(), img_size.size()};
    } else {
      uint64_t blkcnt = 1 + (seed % 8);
      uint64_t blkid = 2048 + (seed % 32) * 64;
      bool read = variant == 1;
      args.scalars = {{"rw", read ? kMmcRwRead : kMmcRwWrite},
                      {"blkcnt", blkcnt},
                      {"blkid", blkid},
                      {"flag", 0}};
      arena_.push_back(PatternBuf(blkcnt * 512, seed));
      std::vector<uint8_t>& buf = arena_.back();
      if (read) {
        args.buffers["buf"] = BufferView{buf.data(), buf.size()};
      } else {
        args.ro_buffers["buf"] = ConstBufferView{buf.data(), buf.size()};
      }
    }
    return {std::move(entry), std::move(args)};
  }

  SessionId SlotId(uint64_t a) const { return slots_[a % kSlots]; }

  size_t SlotClass(uint64_t a) const { return slot_class_[a % kSlots]; }

  void Step(const BoundaryAction& act, size_t idx) {
    std::string line = std::to_string(idx) + " " + NameOf(act.op);
    switch (act.op) {
      case BoundaryOp::kOpen: {
        size_t cls = act.a % NumClasses();
        Result<SessionId> sid = service_->OpenSession(class_name_[cls]);
        CheckStatus(idx, "OpenSession", sid.ok() ? Status::kOk : sid.status());
        line += sid.ok() ? " ok" : std::string(" ") + StatusName(sid.status());
        if (sid.ok()) {
          size_t slot = kSlots;
          for (size_t i = 0; i < kSlots; ++i) {
            if (slots_[i] == 0) {
              slot = i;
              break;
            }
          }
          if (slot == kSlots) {
            // No free slot to track it: close again (exercises the
            // open/close edge pair without leaking table entries).
            service_->CloseSession(*sid);
            line += " untracked";
          } else {
            slots_[slot] = *sid;
            slot_class_[slot] = cls;
            line += " slot=" + std::to_string(slot);
          }
        }
        break;
      }
      case BoundaryOp::kClose: {
        SessionId id = SlotId(act.a);
        Status s = service_->CloseSession(id == 0 ? 999999 : id);
        CheckStatus(idx, "CloseSession", s);
        line += std::string(" ") + StatusName(s);
        if (id != 0) {
          slots_[act.a % kSlots] = 0;
          ring_last_seq_.erase(id);
          ring_counts_.erase(id);
          was_quarantined_.erase(id);
        }
        break;
      }
      case BoundaryOp::kInvoke: {
        SessionId id = SlotId(act.a);
        auto [entry, args] = SynthInvoke(SlotClass(act.a), act.b, act.c);
        bool quarantined_before = id != 0 && was_quarantined_.count(id) > 0;
        Result<ReplayStats> r = service_->Invoke(id == 0 ? 999999 : id, entry, args);
        CheckStatus(idx, "Invoke", r.ok() ? Status::kOk : r.status());
        if (quarantined_before && r.ok()) {
          Fail("quarantine-sticky",
               "Invoke succeeded on a quarantined session at action #" + std::to_string(idx));
        }
        line += r.ok() ? " ok ev=" + std::to_string(r->events_executed) + " meas=" +
                             r->measurement.substr(0, 8)
                       : std::string(" ") + StatusName(r.status());
        break;
      }
      case BoundaryOp::kSubmit: {
        SessionId id = SlotId(act.a);
        auto [entry, args] = SynthInvoke(SlotClass(act.a), act.b, act.c);
        Result<uint64_t> rid =
            service_->Submit(id == 0 ? 999999 : id, std::move(entry), std::move(args));
        CheckStatus(idx, "Submit", rid.ok() ? Status::kOk : rid.status());
        line += rid.ok() ? " id=" + std::to_string(*rid)
                         : std::string(" ") + StatusName(rid.status());
        if (rid.ok()) outstanding_.push_back(*rid);
        break;
      }
      case BoundaryOp::kProcess: {
        size_t max = act.a % 5 == 0 ? SIZE_MAX : act.a % 5;
        size_t n = service_->ProcessQueued(max);
        line += " n=" + std::to_string(n);
        // Global FIFO: the first |n| outstanding ids are the ones that ran.
        for (size_t i = 0; i < n && !outstanding_.empty(); ++i) {
          uint64_t rid = outstanding_.front();
          outstanding_.pop_front();
          Result<ReplayStats> c = service_->TakeCompletion(rid);
          CheckStatus(idx, "TakeCompletion", c.ok() ? Status::kOk : c.status());
          line += " [" + std::to_string(rid) + " " +
                  StatusName(c.ok() ? Status::kOk : c.status()) + "]";
        }
        break;
      }
      case BoundaryOp::kRingPush: {
        SessionId id = SlotId(act.a);
        auto [entry, args] = SynthInvoke(SlotClass(act.a), act.b, act.c);
        Result<uint64_t> seq =
            service_->RingPush(id == 0 ? 999999 : id, std::move(entry), std::move(args));
        CheckStatus(idx, "RingPush", seq.ok() ? Status::kOk : seq.status());
        line += seq.ok() ? " seq=" + std::to_string(*seq)
                         : std::string(" ") + StatusName(seq.status());
        break;
      }
      case BoundaryOp::kDoorbell: {
        SessionId id = SlotId(act.a);
        Result<size_t> n = service_->RingDoorbell(id == 0 ? 999999 : id);
        CheckStatus(idx, "RingDoorbell", n.ok() ? Status::kOk : n.status());
        line += n.ok() ? " n=" + std::to_string(*n)
                       : std::string(" ") + StatusName(n.status());
        break;
      }
      case BoundaryOp::kRingPop: {
        SessionId id = SlotId(act.a);
        Result<RingCompletion> c = service_->RingPop(id == 0 ? 999999 : id);
        CheckStatus(idx, "RingPop", c.ok() ? Status::kOk : c.status());
        if (c.ok()) {
          line += " seq=" + std::to_string(c->seq);
          auto it = ring_last_seq_.find(id);
          if (it != ring_last_seq_.end() && c->seq <= it->second) {
            Fail("ring-order", "popped seq " + std::to_string(c->seq) + " after seq " +
                                   std::to_string(it->second) + " at action #" +
                                   std::to_string(idx));
          }
          ring_last_seq_[id] = c->seq;
        } else {
          line += std::string(" ") + StatusName(c.status());
        }
        break;
      }
      case BoundaryOp::kAttest: {
        SessionId id = SlotId(act.a);
        Result<AttestationQuote> q =
            service_->Attest(id == 0 ? 999999 : id, "n" + std::to_string(act.c % 16));
        CheckStatus(idx, "Attest", q.ok() ? Status::kOk : q.status());
        if (q.ok()) {
          line += " pcr=" + q->session_measurement.substr(0, 8);
          if (!VerifyQuote(*q, kDeveloperKey)) {
            Fail("attest", "freshly signed quote failed verification at action #" +
                               std::to_string(idx));
          }
          Result<AttestationQuote> rt = ParseQuote(SerializeQuote(*q));
          if (!rt.ok() || SerializeQuote(*rt) != SerializeQuote(*q) ||
              !VerifyQuote(*rt, kDeveloperKey)) {
            Fail("attest",
                 "quote did not round-trip byte-identically at action #" + std::to_string(idx));
          }
          Result<SessionStats> st = service_->Stats(id);
          if (st.ok() && (q->invokes != st->invokes ||
                          q->measurement_mismatches != st->measurement_mismatches ||
                          q->quarantined != st->quarantined)) {
            Fail("attest",
                 "quote counters disagree with session stats at action #" + std::to_string(idx));
          }
        } else {
          line += std::string(" ") + StatusName(q.status());
        }
        break;
      }
      case BoundaryOp::kFaultArm: {
        FaultPlane plane = static_cast<FaultPlane>(act.a % 3);
        size_t cls = act.b % NumClasses();
        FaultTargets targets;
        if (cls == 0) {
          targets.device = tb_->mmc_id();
          targets.dma_via_engine = true;
        } else if (cls == 1) {
          targets.device = tb_->usb_id();
        } else if (cls == 2) {
          targets.device = tb_->vchiq_id();
        } else if (cls == 3) {
          targets.device = tb_->ftpm_id();
        } else {
          // The crypto engine masters its descriptor ring itself, so its DMA
          // plane is the device, not the system engine.
          targets.device = tb_->crypto_id();
        }
        FaultPlan plan = MakePresetPlan(plane, act.c + 1, targets);
        Status s = injector_->Arm(plan);
        any_fault_ = true;
        line += std::string(" ") + FaultPlaneName(plane) + " " + StatusName(s);
        break;
      }
      case BoundaryOp::kFaultDisarm: {
        injector_->Disarm();
        break;
      }
      case BoundaryOp::kRegisterPackage: {
        PackageWire wire = static_cast<PackageWire>(act.b % 3);
        std::vector<uint8_t> bytes = MutantPackageBytes(act.a, wire, act.c);
        size_t count_before = service_->store().template_count();
        bool had_before = service_->store().HasDriverlet("fzz");
        Result<std::string> name = service_->RegisterDriverlet(bytes.data(), bytes.size());
        Status s = name.ok() ? Status::kOk : name.status();
        // Per-op status contract, NOT CheckStatus: rejecting tampered bytes
        // with kCorrupt (or an unmapped device with kPermissionDenied) is the
        // correct answer here, while kBadState / kUnsupported still signal
        // internal corruption.
        switch (s) {
          case Status::kOk:
          case Status::kCorrupt:
          case Status::kPermissionDenied:
          case Status::kInvalidArg:
            break;
          default:
            Fail("allowed-status", std::string("RegisterDriverlet returned ") + StatusName(s) +
                                       " at action #" + std::to_string(idx));
            break;
        }
        bool had_after = service_->store().HasDriverlet("fzz");
        if (name.ok()) {
          if (!had_after || *name != "fzz") {
            Fail("register-atomic",
                 "successful registration not visible in the store at action #" +
                     std::to_string(idx));
          }
        } else if (had_after != had_before ||
                   service_->store().template_count() != count_before) {
          Fail("register-atomic",
               "failed registration changed store state at action #" + std::to_string(idx));
        }
        line += std::string(" ") + StatusName(s) + " w=" + std::to_string(act.b % 3) +
                " m=" + std::to_string(act.c % 4);
        break;
      }
    }
    Trace(line);
  }

  // Cross-cutting invariants evaluated after every action.
  void AfterAction() {
    for (size_t i = 0; i < kSlots && ok(); ++i) {
      SessionId id = slots_[i];
      if (id == 0) continue;
      Result<SessionStats> st = service_->Stats(id);
      if (!st.ok()) {
        Fail("allowed-status", "Stats lost an open session: " +
                                   std::string(StatusName(st.status())));
        return;
      }
      if (was_quarantined_.count(id) > 0 && !st->quarantined) {
        Fail("quarantine-sticky", "session " + std::to_string(id) +
                                      " left quarantine without being closed");
        return;
      }
      if (st->quarantined) was_quarantined_.insert(id);

      Result<InvocationRing*> ring = service_->Ring(id);
      if (!ring.ok()) continue;
      uint64_t pushed = (*ring)->pushed();
      uint64_t drained = (*ring)->drained();
      uint64_t reaped = (*ring)->reaped();
      if (pushed < drained || drained < reaped) {
        Fail("ring-accounting",
             "ring counters out of order: pushed=" + std::to_string(pushed) +
                 " drained=" + std::to_string(drained) + " reaped=" + std::to_string(reaped));
        return;
      }
      auto it = ring_counts_.find(id);
      if (it != ring_counts_.end()) {
        if (pushed < it->second[0] || drained < it->second[1] || reaped < it->second[2]) {
          Fail("ring-accounting",
               "ring counters regressed for session " + std::to_string(id));
          return;
        }
      }
      ring_counts_[id] = {pushed, drained, reaped};
    }
  }

  // End-of-run checks + the trace's closing summary.
  void Finish() {
    for (size_t i = 0; i < kSlots; ++i) {
      SessionId id = slots_[i];
      if (id == 0) continue;
      Result<SessionStats> st = service_->Stats(id);
      if (!st.ok()) continue;
      if (!any_fault_ && st->measurement_mismatches > 0) {
        Fail("integrity", "fault-free program recorded " +
                              std::to_string(st->measurement_mismatches) +
                              " measurement mismatches on session " + std::to_string(id));
      }
      Trace("end slot=" + std::to_string(i) + " invokes=" + std::to_string(st->invokes) +
            " failures=" + std::to_string(st->failures) +
            " mismatches=" + std::to_string(st->measurement_mismatches) +
            " quarantined=" + (st->quarantined ? std::string("1") : std::string("0")) +
            " meas=" + st->last_measurement.substr(0, 8));
    }
    Trace("end quarantined_total=" + std::to_string(service_->quarantined_sessions()) +
          " backlog=" + std::to_string(service_->queue_backlog()) +
          " sim_us=" + std::to_string(tb_->machine().clock().now_us()));
  }

  void CollectFeatures() {
    EdgeCoverage& ec = EdgeCoverage::Get();
    for (size_t i = 0; i < ec.map_size(); ++i) {
      uint64_t c = ec.count(i);
      if (c > 0) {
        result_.features.insert((static_cast<uint64_t>(i) << 6) | Log2Bucket(c));
      }
    }
    // Telemetry counters widen the map beyond the instrumented edges: any
    // counter the run moved contributes a (name-hash, log2 value) feature.
    Telemetry::Get().metrics().ForEachCounter(
        [this](const std::string& name, const Counter& c) {
          if (c.value() > 0) {
            result_.features.insert((1ull << 63) | ((Fnv1a(name) & 0xffffffffull) << 6) |
                                    Log2Bucket(c.value()));
          }
        });
  }

  const BoundaryProgram& prog_;
  std::unique_ptr<Rpi3Testbed> tb_;
  std::unique_ptr<ReplayService> service_;
  std::unique_ptr<FaultInjector> injector_;
  std::vector<std::string> class_name_ = std::vector<std::string>(NumClasses());
  SessionId slots_[kSlots] = {0, 0, 0, 0};
  size_t slot_class_[kSlots] = {0, 0, 0, 0};
  std::deque<std::vector<uint8_t>> arena_;
  std::vector<uint8_t> camera_buf_;
  std::deque<uint64_t> outstanding_;
  std::map<SessionId, uint64_t> ring_last_seq_;
  std::map<SessionId, std::array<uint64_t, 3>> ring_counts_;
  std::set<SessionId> was_quarantined_;
  bool any_fault_ = false;
  std::string trace_;
  BoundaryRunResult result_;
};

// ---------------------------------------------------------------------------
// Mutation
// ---------------------------------------------------------------------------

BoundaryAction RandomAction(FuzzRng& rng) {
  BoundaryAction a;
  a.op = kOpNames[rng.Next() % kOpCount].op;
  a.a = rng.Next() % 8;
  a.b = rng.Next() % 4;
  a.c = rng.Next() % 64;
  return a;
}

BoundaryProgram RandomProgram(FuzzRng& rng) {
  BoundaryProgram p;
  size_t n = 4 + rng.Next() % 13;
  p.actions.reserve(n);
  for (size_t i = 0; i < n; ++i) p.actions.push_back(RandomAction(rng));
  return p;
}

BoundaryProgram Mutate(const BoundaryProgram& base, const BoundaryProgram& other,
                       FuzzRng& rng, size_t max_actions) {
  BoundaryProgram p = base;
  size_t edits = 1 + rng.Next() % 3;
  for (size_t e = 0; e < edits; ++e) {
    uint64_t kind = rng.Next() % 6;
    size_t n = p.actions.size();
    switch (kind) {
      case 0: {  // insert
        size_t at = n == 0 ? 0 : rng.Next() % (n + 1);
        p.actions.insert(p.actions.begin() + static_cast<long>(at), RandomAction(rng));
        break;
      }
      case 1: {  // delete
        if (n > 1) p.actions.erase(p.actions.begin() + static_cast<long>(rng.Next() % n));
        break;
      }
      case 2: {  // tweak one field
        if (n == 0) break;
        BoundaryAction& a = p.actions[rng.Next() % n];
        switch (rng.Next() % 4) {
          case 0: a.op = kOpNames[rng.Next() % kOpCount].op; break;
          case 1: a.a = rng.Next() % 8; break;
          case 2: a.b = rng.Next() % 4; break;
          default: a.c = rng.Next() % 64; break;
        }
        break;
      }
      case 3: {  // duplicate
        if (n == 0) break;
        size_t at = rng.Next() % n;
        p.actions.insert(p.actions.begin() + static_cast<long>(at), p.actions[at]);
        break;
      }
      case 4: {  // splice: other's prefix + our suffix
        if (other.actions.empty() || n == 0) break;
        size_t cut_a = rng.Next() % (other.actions.size() + 1);
        size_t cut_b = rng.Next() % (n + 1);
        BoundaryProgram spliced;
        spliced.actions.assign(other.actions.begin(),
                               other.actions.begin() + static_cast<long>(cut_a));
        spliced.actions.insert(spliced.actions.end(),
                               p.actions.begin() + static_cast<long>(cut_b), p.actions.end());
        if (!spliced.actions.empty()) p = std::move(spliced);
        break;
      }
      default: {  // truncate
        if (n > 2) p.actions.resize(1 + rng.Next() % (n - 1));
        break;
      }
    }
  }
  if (p.actions.size() > max_actions) p.actions.resize(max_actions);
  if (p.actions.empty()) p.actions.push_back(RandomAction(rng));
  return p;
}

Result<uint64_t> ParseDec(std::string_view tok) {
  if (tok.empty()) return Status::kCorrupt;
  uint64_t v = 0;
  for (char c : tok) {
    if (c < '0' || c > '9') return Status::kCorrupt;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  return v;
}

std::vector<std::string_view> SplitWs(std::string_view line) {
  std::vector<std::string_view> toks;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    size_t start = i;
    while (i < line.size() && line[i] != ' ') ++i;
    if (i > start) toks.push_back(line.substr(start, i - start));
  }
  return toks;
}

}  // namespace

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

std::string BoundaryProgramToString(const BoundaryProgram& p) {
  std::string s;
  s += kProgramHeader;
  s += '\n';
  for (const BoundaryAction& a : p.actions) {
    s += NameOf(a.op);
    s += ' ';
    s += std::to_string(a.a);
    s += ' ';
    s += std::to_string(a.b);
    s += ' ';
    s += std::to_string(a.c);
    s += '\n';
  }
  return s;
}

Result<BoundaryProgram> ParseBoundaryProgram(std::string_view text) {
  BoundaryProgram p;
  bool saw_header = false;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (!saw_header) {
      if (line != kProgramHeader) return Status::kCorrupt;
      saw_header = true;
      continue;
    }
    if (line.empty() || line[0] == '#') continue;
    auto toks = SplitWs(line);
    if (toks.empty()) continue;
    BoundaryAction a;
    bool known = false;
    for (const OpName& n : kOpNames) {
      if (toks[0] == n.name) {
        a.op = n.op;
        known = true;
        break;
      }
    }
    if (!known || toks.size() > 4) return Status::kCorrupt;
    if (toks.size() > 1) {
      DLT_ASSIGN_OR_RETURN(a.a, ParseDec(toks[1]));
    }
    if (toks.size() > 2) {
      DLT_ASSIGN_OR_RETURN(a.b, ParseDec(toks[2]));
    }
    if (toks.size() > 3) {
      DLT_ASSIGN_OR_RETURN(a.c, ParseDec(toks[3]));
    }
    p.actions.push_back(a);
  }
  if (!saw_header) return Status::kCorrupt;
  return p;
}

// ---------------------------------------------------------------------------
// Execution + built-in corpus
// ---------------------------------------------------------------------------

BoundaryRunResult RunBoundaryProgram(const BoundaryProgram& p) {
  BoundaryExec exec(p);
  return exec.Run();
}

std::vector<BoundaryProgram> BuiltinBoundaryCorpus() {
  // One lifecycle per registered driverlet class: open, a covered invoke
  // (arg seed 7 maps into each class's recorded geometry), a full ring cycle
  // that wraps the 4-deep ring, a queued submit/process round, attest, close.
  std::vector<BoundaryProgram> corpus;
  for (uint64_t cls = 0; cls < NumClasses(); ++cls) {
    BoundaryProgram p;
    auto add = [&p](BoundaryOp op, uint64_t a, uint64_t b, uint64_t c) {
      p.actions.push_back(BoundaryAction{op, a, b, c});
    };
    add(BoundaryOp::kOpen, cls, 0, 0);
    add(BoundaryOp::kInvoke, 0, 0, 7);
    for (int i = 0; i < 4; ++i) add(BoundaryOp::kRingPush, 0, 0, 7);
    add(BoundaryOp::kDoorbell, 0, 0, 0);
    for (int i = 0; i < 4; ++i) add(BoundaryOp::kRingPop, 0, 0, 0);
    // Second lap wraps the sequence space past the 4-slot ring.
    for (int i = 0; i < 2; ++i) add(BoundaryOp::kRingPush, 0, 1, 7);
    add(BoundaryOp::kDoorbell, 0, 0, 0);
    for (int i = 0; i < 2; ++i) add(BoundaryOp::kRingPop, 0, 0, 0);
    add(BoundaryOp::kSubmit, 0, 0, 7);
    add(BoundaryOp::kProcess, 0, 0, 0);
    add(BoundaryOp::kAttest, 0, 0, 1);
    add(BoundaryOp::kClose, 0, 0, 0);
    corpus.push_back(std::move(p));
  }
  // Register-boundary lifecycle: every wire framing intact, then each
  // mutation class, interleaved with live mmc traffic to pin down that a
  // rejected package never perturbs open sessions.
  {
    BoundaryProgram p;
    auto add = [&p](BoundaryOp op, uint64_t a, uint64_t b, uint64_t c) {
      p.actions.push_back(BoundaryAction{op, a, b, c});
    };
    add(BoundaryOp::kOpen, 0, 0, 0);
    add(BoundaryOp::kRegisterPackage, 0, 0, 0);  // intact, v1 text
    add(BoundaryOp::kRegisterPackage, 0, 1, 0);  // intact, v1 binary
    add(BoundaryOp::kRegisterPackage, 0, 2, 0);  // intact, v2
    add(BoundaryOp::kInvoke, 0, 0, 7);
    add(BoundaryOp::kRegisterPackage, 1, 2, 1);  // post-seal bit flips
    add(BoundaryOp::kRegisterPackage, 2, 2, 2);  // truncation
    add(BoundaryOp::kRegisterPackage, 3, 1, 3);  // re-signed mutated v1 payload
    add(BoundaryOp::kRegisterPackage, 4, 2, 3);  // re-signed mutated v2 payload
    add(BoundaryOp::kInvoke, 0, 0, 7);
    add(BoundaryOp::kClose, 0, 0, 0);
    corpus.push_back(std::move(p));
  }
  return corpus;
}

// ---------------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------------

Result<BoundaryShrinkResult> ShrinkBoundary(const BoundaryProgram& p,
                                            const std::string& invariant) {
  if (RunBoundaryProgram(p).invariant != invariant) return Status::kInvalidArg;

  constexpr int kMaxSteps = 300;
  BoundaryShrinkResult result;
  result.original_actions = p.actions.size();
  BoundaryProgram cur = p;
  int steps = 0;
  auto still_fails = [&](const BoundaryProgram& cand) {
    if (steps >= kMaxSteps) return false;
    ++steps;
    return RunBoundaryProgram(cand).invariant == invariant;
  };

  bool progress = true;
  while (progress && steps < kMaxSteps) {
    progress = false;
    for (size_t chunk = std::max<size_t>(cur.actions.size() / 2, 1);; chunk /= 2) {
      size_t i = 0;
      while (i < cur.actions.size() && steps < kMaxSteps) {
        BoundaryProgram cand = cur;
        size_t end = std::min(i + chunk, cand.actions.size());
        cand.actions.erase(cand.actions.begin() + static_cast<long>(i),
                           cand.actions.begin() + static_cast<long>(end));
        if (!cand.actions.empty() && still_fails(cand)) {
          cur = std::move(cand);
          progress = true;
        } else {
          i += chunk;
        }
      }
      if (chunk == 1) break;
    }
  }
  result.reduced = std::move(cur);
  result.steps = steps;
  return result;
}

// ---------------------------------------------------------------------------
// Repro files
// ---------------------------------------------------------------------------

std::string BoundaryReproToString(const BoundaryProgram& p, const std::string& invariant,
                                  const std::string& detail) {
  std::string s;
  s += kReproHeader;
  s += '\n';
  s += "invariant " + invariant + "\n";
  if (!detail.empty()) s += "detail " + detail + "\n";
  s += "program\n";
  s += BoundaryProgramToString(p);
  return s;
}

Result<BoundaryRepro> ParseBoundaryRepro(std::string_view text) {
  BoundaryRepro repro;
  bool saw_header = false;
  bool in_program = false;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (!saw_header) {
      if (line != kReproHeader) return Status::kCorrupt;
      saw_header = true;
      continue;
    }
    if (line == "program") {
      in_program = true;
      break;
    }
    if (line.empty()) continue;
    size_t sp = line.find(' ');
    std::string_view key = line.substr(0, sp);
    std::string_view val =
        sp == std::string_view::npos ? std::string_view() : line.substr(sp + 1);
    if (key == "invariant") {
      repro.invariant = std::string(val);
    } else if (key == "detail") {
      repro.detail = std::string(val);
    } else {
      return Status::kCorrupt;
    }
  }
  if (!saw_header || !in_program) return Status::kCorrupt;
  DLT_ASSIGN_OR_RETURN(repro.program, ParseBoundaryProgram(text.substr(pos)));
  return repro;
}

Status WriteBoundaryRepro(const std::string& path, const BoundaryProgram& p,
                          const std::string& invariant, const std::string& detail) {
  std::string body = BoundaryReproToString(p, invariant, detail);
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::kIoError;
  size_t written = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return written == body.size() ? Status::kOk : Status::kIoError;
}

Result<BoundaryRepro> ReadBoundaryRepro(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::kNotFound;
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  return ParseBoundaryRepro(text);
}

// ---------------------------------------------------------------------------
// The fuzz loop
// ---------------------------------------------------------------------------

BoundaryFuzzStats RunBoundaryFuzz(const BoundaryFuzzConfig& cfg) {
  if (cfg.plant_ring_quirk) SetRingWrapQuirkForTest(true);

  BoundaryFuzzStats stats;
  std::vector<BoundaryProgram> corpus = BuiltinBoundaryCorpus();
  for (const BoundaryProgram& p : cfg.extra_corpus) corpus.push_back(p);

  std::set<uint64_t> features;
  FuzzRng rng{cfg.seed * 0x9e3779b97f4a7c15ull + 1};

  auto record_finding = [&](const std::string& invariant, const std::string& detail,
                            const BoundaryProgram& p) {
    for (const BoundaryFinding& f : stats.findings) {
      if (f.invariant == invariant) return;  // one shrunk repro per invariant
    }
    BoundaryFinding f;
    f.invariant = invariant;
    f.detail = detail;
    f.program = p;
    f.shrunk = p;
    Result<BoundaryShrinkResult> s = ShrinkBoundary(p, invariant);
    if (s.ok()) {
      f.shrunk = s->reduced;
      f.shrink_steps = s->steps;
    }
    if (!cfg.repro_dir.empty()) {
      f.repro_path = cfg.repro_dir + "/boundary_" + invariant + ".repro";
      WriteBoundaryRepro(f.repro_path, f.shrunk, invariant, detail);
    }
    stats.findings.push_back(std::move(f));
  };

  // Seed phase: every corpus entry runs once, its features chart the floor.
  for (const BoundaryProgram& p : corpus) {
    BoundaryRunResult r = RunBoundaryProgram(p);
    features.insert(r.features.begin(), r.features.end());
    if (!r.ok()) record_finding(r.invariant, r.detail, p);
  }
  stats.coverage_curve.push_back(features.size());

  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(cfg.seconds));
  auto more = [&]() {
    if (static_cast<int>(stats.findings.size()) >= cfg.max_findings) return false;
    if (cfg.iterations > 0) return stats.runs < cfg.iterations;
    return std::chrono::steady_clock::now() < deadline;
  };

  while (more()) {
    BoundaryProgram cand;
    if (rng.Next() % 8 == 0) {
      cand = RandomProgram(rng);
    } else {
      const BoundaryProgram& base = corpus[rng.Next() % corpus.size()];
      const BoundaryProgram& other = corpus[rng.Next() % corpus.size()];
      cand = Mutate(base, other, rng, cfg.max_actions);
    }
    BoundaryRunResult r = RunBoundaryProgram(cand);
    ++stats.runs;
    if (!r.ok()) {
      record_finding(r.invariant, r.detail, cand);
    } else {
      bool novel = false;
      for (uint64_t f : r.features) {
        if (features.count(f) == 0) {
          novel = true;
          break;
        }
      }
      if (novel) {
        // Corpus admission doubles as the determinism invariant: the same
        // program must replay to the same observable trace.
        BoundaryRunResult again = RunBoundaryProgram(cand);
        if (again.trace != r.trace) {
          record_finding("determinism", "trace differs across identical runs", cand);
        } else {
          features.insert(r.features.begin(), r.features.end());
          corpus.push_back(std::move(cand));
        }
      }
    }
    if (stats.runs % kCurveStride == 0) stats.coverage_curve.push_back(features.size());
  }
  stats.coverage_curve.push_back(features.size());
  stats.corpus_size = corpus.size();
  stats.features = features.size();

  if (cfg.plant_ring_quirk) SetRingWrapQuirkForTest(false);
  return stats;
}

}  // namespace dlt
