// TemplateGen: seeded generator of arbitrary-but-valid interaction templates
// for property-based conformance testing (docs/conformance.md). Each seed
// deterministically yields a GeneratedCase: an InteractionTemplate mixing
// register reads/writes, polling loops, shared-memory word runs (bulk
// coalescing stress), DMA descriptor chains through the system DMA engine,
// IRQ waits, PIO block transfers and random operand expressions/constraints —
// plus the matching GenDevice script that makes every device-side observation
// the template constrains actually come true at replay time, the concrete
// invoke scalars, the input payload and the expected output bytes.
//
// Validity rules the generator maintains by construction (the conformance
// invariants rely on them):
//  - every symbol an expression references is bound earlier (scalar param,
//    scripted read, poll success value or dma_alloc);
//  - every expression's concrete value is computable at generation time, so
//    readback constraints are satisfiable on the clean path — random and
//    timestamp values bind to symbols that are never referenced again;
//  - shm reads and DMA copies only touch bytes the same invoke wrote, so
//    repeat invokes on one harness observe identical data;
//  - each scripted register offset is used by exactly one block, so read
//    queues cannot desynchronize across blocks.
#ifndef SRC_CHECK_TEMPLATE_GEN_H_
#define SRC_CHECK_TEMPLATE_GEN_H_

#include <map>
#include <string>
#include <vector>

#include "src/check/gen_device.h"
#include "src/core/interaction_template.h"

namespace dlt {

// Identity of the synthetic driverlet every generated case belongs to. The
// conformance harness attaches GenDevice right after Machine's built-in DMA
// engine (id 0), so generated templates always name it as device 1.
inline constexpr const char kGenDriverlet[] = "gen";
inline constexpr const char kGenEntry[] = "replay_gen";
inline constexpr uint16_t kGenDeviceId = 1;
inline constexpr uint16_t kGenDmaDeviceId = 0;

struct GenConfig {
  uint64_t seed = 1;
  int min_blocks = 2;
  int max_blocks = 6;
  // Adds one operand expression deeper than kMaxExprStack, forcing the
  // template down the compile-unsupported interpreter-fallback path.
  bool force_deep_expr = false;
};

// One self-contained conformance case: the template plus everything needed to
// replay it (device script, invoke arguments) and to judge a clean run
// (expected output bytes).
struct GeneratedCase {
  uint64_t seed = 0;
  InteractionTemplate tpl;
  GenScript script;
  std::map<std::string, uint64_t> scalars;
  std::vector<uint8_t> payload;       // bound read-only as "payload"
  size_t out_len = 0;                 // writable "out" buffer size
  std::vector<uint8_t> expected_out;  // clean-run contents of "out"
};

// Deterministic splitmix64 stream for generation draws.
class GenRng {
 public:
  explicit GenRng(uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ull) {}
  uint64_t Next();
  // Uniform in [lo, hi], inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) { return lo + Next() % (hi - lo + 1); }
  bool Chance(int pct) { return Next() % 100 < static_cast<uint64_t>(pct); }

 private:
  uint64_t state_;
};

class TemplateGen {
 public:
  explicit TemplateGen(GenConfig cfg) : cfg_(cfg), rng_(cfg.seed) {}

  GeneratedCase Generate();

 private:
  struct Region {
    std::string sym;              // dma_alloc binding
    std::vector<uint8_t> bytes;   // concrete content after this invoke's writes
    std::vector<bool> init;       // which bytes the invoke wrote
  };

  // Block generators; each appends events and updates the gentime model.
  void RegBlock();
  void ScriptedReadBlock();
  void PollBlock();
  void ShmRunBlock();
  void DmaDescriptorBlock();
  void PayloadCopyBlock();
  void PioBlock();
  void IrqBlock();
  void MiscBlock();
  void ExprBlock();
  // The fTPM-pipe shape: PIO transfers whose lengths are symbolic functions of
  // a scalar parameter (variable-length arg slots, postfix length folding)
  // plus an unconstrained statistic read.
  void VarLenPioBlock();
  // The crypto-queue shape: a descriptor ring in DMA memory with symbolic
  // control words, a doorbell kick, the completion IRQ, and an IRQ-gated poll
  // of a consumer index that the doorbell's completion publishes.
  void DescriptorRingBlock();

  // Random operand expression over known-value symbols; never divides by a
  // non-constant and keeps shifts < 32 so evaluation cannot fail.
  ExprRef RandomExpr(int depth);
  uint64_t ValueOf(const ExprRef& e) const;

  // Appends a readback constraint for |bind| whose rhs is either the folded
  // concrete value or the originating expression masked to 32 bits.
  Constraint ReadbackConstraint(const std::string& bind, const ExprRef& value_expr,
                                uint32_t concrete);

  TemplateEvent Event(EventKind kind);
  void Emit(TemplateEvent e) { case_.tpl.events.push_back(std::move(e)); }
  uint64_t NextOff();
  // Mirrors CmaPool's bump allocator (16 KB alignment) so every dma_alloc
  // address is known at generation time: allocation order is part of the
  // template, so addresses are as deterministic as everything else.
  uint64_t ModelAlloc(uint64_t size);
  std::string NewSym(const char* prefix);
  void AddKnown(const std::string& name, uint64_t value);
  // Copies [src_off, src_off+len) of |r| into "out", updating expected bytes.
  void CopyRegionToOut(const Region& r, uint64_t src_off, uint64_t len);
  void WriteRegionWord(Region* r, uint64_t byte_off, const ExprRef& value_expr);

  GenConfig cfg_;
  GenRng rng_;
  GeneratedCase case_;
  Bindings known_;                   // symbol -> concrete value at gentime
  std::vector<std::string> pool_;    // known_ keys usable in expressions
  std::vector<Region> regions_;
  uint64_t next_off_ = 0x10;
  uint64_t next_alloc_ = 0;
  size_t out_cursor_ = 0;
  int sym_counter_ = 0;
};

GeneratedCase GenerateCase(const GenConfig& cfg);
GeneratedCase GenerateCase(uint64_t seed);

}  // namespace dlt

#endif  // SRC_CHECK_TEMPLATE_GEN_H_
