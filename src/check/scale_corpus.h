// Scale corpus: a deterministic production-shaped template population for
// exercising the constraint-indexed selection path (ISSUE 9).
//
// The corpus models what a fleet actually stores — one driverlet with a
// moderate number of entries, each entry covered by many templates whose
// initial constraints partition the input space. Template bodies are tiny
// TemplateGen cases (real event mixes, so compile/serialize paths see
// realistic IR); the initial constraints are synthesized per row so that
// every template is selectable by exactly one crafted invoke:
//
//   row p within a slot (p = k / entries):
//     p == 1      residual  (sel ^ C) == W        xor defeats gate factoring
//     p % 7 == 2  range     lvl in [16p, 16p+7]   disjoint windows per slot
//     p % 7 == 3  mask      (flags & 0xffffff00) == (p+1)<<8
//     otherwise   eq        sel == k              globally unique
//
// The mix forces the index to populate all three gate dimensions plus the
// residual list, which is exactly the shape the O(log n) claim is made for:
// an indexed probe touches the one matching bucket/segment plus the slot's
// lone residual row, while a linear scan touches every row in the slot.
#ifndef SRC_CHECK_SCALE_CORPUS_H_
#define SRC_CHECK_SCALE_CORPUS_H_

#include <string>
#include <vector>

#include "src/core/package.h"

namespace dlt {

inline constexpr const char kScaleDriverlet[] = "scale";

struct ScaleCorpusConfig {
  size_t templates = 1000;
  size_t entries = 16;  // slots; rows per slot = templates / entries
  uint64_t seed = 1;
  size_t base_bodies = 4;  // distinct TemplateGen event bodies cycled across rows
};

struct ScaleCorpus {
  ScaleCorpusConfig cfg;
  DriverletPackage pkg;
  // Per base body: the generated case's own scalar bindings (a, b). Every
  // invoke carries them so the param-presence check passes for all rows.
  std::vector<Bindings> base_scalars;
};

// Deterministic: same config, byte-identical corpus.
ScaleCorpus BuildScaleCorpus(const ScaleCorpusConfig& cfg);

// Entry name template |target| belongs to.
std::string ScaleEntry(const ScaleCorpusConfig& cfg, size_t target);

// Invoke bindings for which template |target| (and no other) matches.
Bindings ScaleInvokeScalars(const ScaleCorpus& corpus, size_t target);

}  // namespace dlt

#endif  // SRC_CHECK_SCALE_CORPUS_H_
