// GenDevice: the synthetic MMIO device the conformance generator binds its
// templates to. Where the gold devices (MMC, dwc2, vc4) model real hardware,
// GenDevice is pure scripting surface: every register read the generated
// template performs is answered from a per-offset queue the generator filled
// when it decided what the template should observe, so replay of an arbitrary
// generated template is well-defined — the device-side responses are part of
// the same seeded artifact as the template itself (docs/conformance.md).
//
// The window also provides the handful of behaviours generated templates need
// from a "real" device: a doorbell register whose write schedules an IRQ raise
// a fixed virtual delay later (so kWaitIrq events have something to wait on),
// an ack register that lowers the line (level-triggered controller), and a
// FIFO offset backed by the same read queues for PIO block transfers.
//
// SoftReset() restores the scripted initial register file, rewinds every read
// queue and cancels in-flight doorbell raises. That property is load-bearing:
// the replayer soft-resets the primary device before every attempt, and the
// determinism/fault-plane invariants rely on attempt N seeing exactly the
// byte stream attempt 1 saw.
#ifndef SRC_CHECK_GEN_DEVICE_H_
#define SRC_CHECK_GEN_DEVICE_H_

#include <map>
#include <vector>

#include "src/soc/device.h"
#include "src/soc/irq.h"
#include "src/soc/sim_clock.h"

namespace dlt {

// Free MMIO window + IRQ line on the rpi3 board map (clear of every device
// Machine or Rpi3Testbed attaches).
inline constexpr PhysAddr kGenDeviceBase = 0x3F60'0000;
inline constexpr uint64_t kGenDeviceSize = 0x1000;
inline constexpr int kGenIrqLine = 60;

// The device half of a generated conformance case: initial register file,
// per-offset read scripts, and the doorbell latency. Pure data, produced by
// TemplateGen alongside the template, serialized into repro files.
struct GenScript {
  std::map<uint64_t, uint32_t> initial_regs;
  // Successive MmioRead32 values per offset; exhausted queues fall back to the
  // current register value. Cursor state rewinds on SoftReset.
  std::map<uint64_t, std::vector<uint32_t>> read_queues;
  uint64_t irq_delay_us = 40;  // doorbell write -> Raise latency
  // Completion state applied when a doorbell raise fires: each entry sets the
  // register at |offset| to |value| — how generated descriptor-ring templates
  // get a consumer index that only catches up after the "engine" finishes
  // (the IRQ-gated poll idiom). SoftReset restores the initial register file,
  // so each attempt re-earns the completion through its own doorbell.
  std::map<uint64_t, uint32_t> doorbell_sets;
};

class GenDevice : public MmioDevice {
 public:
  // Writing any value here schedules Raise(line) after script.irq_delay_us.
  static constexpr uint64_t kDoorbellOff = 0xf00;
  // Writing any value here clears the line (the device-level IRQ ack).
  static constexpr uint64_t kIrqAckOff = 0xf04;

  GenDevice(SimClock* clock, InterruptController* irq, int line = kGenIrqLine);
  ~GenDevice() override;

  // Installs the script and applies its reset state. Call before replay.
  void Configure(GenScript script);

  int irq_line() const { return line_; }

  // ---- MmioDevice ----
  std::string_view name() const override { return "gen"; }
  uint32_t MmioRead32(uint64_t offset) override;
  void MmioWrite32(uint64_t offset, uint32_t value) override;
  void SoftReset() override;

 private:
  void CancelPendingRaises();

  SimClock* clock_;
  InterruptController* irq_;
  int line_;
  GenScript script_;
  std::map<uint64_t, uint32_t> regs_;
  std::map<uint64_t, size_t> cursors_;  // read-queue positions
  std::vector<SimClock::EventId> pending_raises_;
};

}  // namespace dlt

#endif  // SRC_CHECK_GEN_DEVICE_H_
