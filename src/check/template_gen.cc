#include "src/check/template_gen.h"

#include "src/soc/dma_engine.h"
#include "src/soc/machine.h"
#include "src/tee/secure_world.h"

namespace dlt {

namespace {

ExprRef AddrExpr(const std::string& sym, uint64_t off) {
  ExprRef base = Expr::Input(sym);
  return off == 0 ? base : Expr::Binary(ExprOp::kAdd, std::move(base), Expr::Const(off));
}

uint32_t WordAt(const std::vector<uint8_t>& bytes, uint64_t off) {
  return static_cast<uint32_t>(bytes[off]) | static_cast<uint32_t>(bytes[off + 1]) << 8 |
         static_cast<uint32_t>(bytes[off + 2]) << 16 | static_cast<uint32_t>(bytes[off + 3]) << 24;
}

}  // namespace

uint64_t GenRng::Next() {
  // splitmix64.
  uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

TemplateEvent TemplateGen::Event(EventKind kind) {
  TemplateEvent e;
  e.kind = kind;
  e.file = "gen";
  e.line = static_cast<int>(case_.tpl.events.size()) + 1;
  return e;
}

uint64_t TemplateGen::NextOff() {
  uint64_t off = next_off_;
  next_off_ += 4;
  return off;
}

uint64_t TemplateGen::ModelAlloc(uint64_t size) {
  uint64_t addr = (next_alloc_ + 0x3fff) & ~0x3fffull;
  next_alloc_ = addr + size;
  return addr;
}

std::string TemplateGen::NewSym(const char* prefix) {
  return std::string(prefix) + std::to_string(sym_counter_++);
}

void TemplateGen::AddKnown(const std::string& name, uint64_t value) {
  known_[name] = value;
  pool_.push_back(name);
}

uint64_t TemplateGen::ValueOf(const ExprRef& e) const {
  Result<uint64_t> v = e->Eval(known_);
  return v.ok() ? *v : 0;  // unreachable by construction
}

ExprRef TemplateGen::RandomExpr(int depth) {
  if (depth <= 0 || rng_.Chance(30)) {
    if (!pool_.empty() && rng_.Chance(50)) {
      return Expr::Input(pool_[rng_.Range(0, pool_.size() - 1)]);
    }
    return Expr::Const(rng_.Range(0, 0xffff'ffff));
  }
  switch (rng_.Range(0, 8)) {
    case 0:
      return Expr::Binary(ExprOp::kAdd, RandomExpr(depth - 1), RandomExpr(depth - 1));
    case 1:
      return Expr::Binary(ExprOp::kSub, RandomExpr(depth - 1), RandomExpr(depth - 1));
    case 2:
      return Expr::Binary(ExprOp::kMul, RandomExpr(depth - 1), RandomExpr(depth - 1));
    case 3:
      return Expr::Binary(ExprOp::kAnd, RandomExpr(depth - 1), RandomExpr(depth - 1));
    case 4:
      return Expr::Binary(ExprOp::kOr, RandomExpr(depth - 1), RandomExpr(depth - 1));
    case 5:
      return Expr::Binary(ExprOp::kXor, RandomExpr(depth - 1), RandomExpr(depth - 1));
    case 6:
      return Expr::Binary(rng_.Chance(50) ? ExprOp::kShl : ExprOp::kShr, RandomExpr(depth - 1),
                          Expr::Const(rng_.Range(0, 31)));
    case 7:
      return Expr::Binary(rng_.Chance(50) ? ExprOp::kDiv : ExprOp::kMod, RandomExpr(depth - 1),
                          Expr::Const(rng_.Range(1, 255)));
    default:
      return Expr::Not(RandomExpr(depth - 1));
  }
}

Constraint TemplateGen::ReadbackConstraint(const std::string& bind, const ExprRef& value_expr,
                                           uint32_t concrete) {
  Constraint c;
  ExprRef rhs = rng_.Chance(60)
                    ? Expr::Const(concrete)
                    : Expr::Binary(ExprOp::kAnd, value_expr, Expr::Const(0xffff'ffff));
  c.AddAtom(ConstraintAtom{Expr::Input(bind), Cmp::kEq, std::move(rhs)});
  return c;
}

void TemplateGen::WriteRegionWord(Region* r, uint64_t byte_off, const ExprRef& value_expr) {
  uint32_t v = static_cast<uint32_t>(ValueOf(value_expr));
  for (int i = 0; i < 4; ++i) {
    r->bytes[byte_off + static_cast<uint64_t>(i)] = static_cast<uint8_t>(v >> (8 * i));
    r->init[byte_off + static_cast<uint64_t>(i)] = true;
  }
  TemplateEvent e = Event(EventKind::kShmWrite);
  e.addr = AddrExpr(r->sym, byte_off);
  e.value = value_expr;
  Emit(std::move(e));
}

void TemplateGen::CopyRegionToOut(const Region& r, uint64_t src_off, uint64_t len) {
  if (out_cursor_ + len > case_.out_len) {
    return;
  }
  TemplateEvent e = Event(EventKind::kCopyFromDma);
  e.buffer = "out";
  e.buf_offset = Expr::Const(out_cursor_);
  e.value = Expr::Const(len);
  e.addr = AddrExpr(r.sym, src_off);
  Emit(std::move(e));
  for (uint64_t i = 0; i < len; ++i) {
    case_.expected_out[out_cursor_ + i] = r.bytes[src_off + i];
  }
  out_cursor_ += len;
}

// Writes random expressions to fresh registers; readbacks observe the written
// value (no read queue at these offsets, so MmioRead32 returns the register).
void TemplateGen::RegBlock() {
  int n = static_cast<int>(rng_.Range(1, 3));
  for (int i = 0; i < n; ++i) {
    uint64_t off = NextOff();
    ExprRef v = RandomExpr(static_cast<int>(rng_.Range(0, 2)));
    uint32_t cv = static_cast<uint32_t>(ValueOf(v));
    TemplateEvent w = Event(EventKind::kRegWrite);
    w.device = kGenDeviceId;
    w.reg_off = off;
    w.value = v;
    Emit(std::move(w));
    if (rng_.Chance(70)) {
      std::string bind = NewSym("r");
      TemplateEvent rd = Event(EventKind::kRegRead);
      rd.device = kGenDeviceId;
      rd.reg_off = off;
      rd.bind = bind;
      rd.state_changing = true;
      rd.constraint = ReadbackConstraint(bind, v, cv);
      Emit(std::move(rd));
      AddKnown(bind, cv);
    }
  }
}

// Reads answered from a scripted per-offset queue, constrained to the script.
void TemplateGen::ScriptedReadBlock() {
  uint64_t off = NextOff();
  int n = static_cast<int>(rng_.Range(1, 3));
  std::vector<uint32_t>& queue = case_.script.read_queues[off];
  for (int i = 0; i < n; ++i) {
    uint32_t v = static_cast<uint32_t>(rng_.Range(0, 0xffff'ffff));
    queue.push_back(v);
    std::string bind = NewSym("r");
    TemplateEvent rd = Event(EventKind::kRegRead);
    rd.device = kGenDeviceId;
    rd.reg_off = off;
    rd.bind = bind;
    if (rng_.Chance(70)) {
      rd.state_changing = true;
      Constraint c;
      uint64_t form = rng_.Range(0, 4);
      Cmp cmp = form < 3 ? Cmp::kEq : (form == 3 ? Cmp::kLe : Cmp::kGe);
      c.AddAtom(ConstraintAtom{Expr::Input(bind), cmp, Expr::Const(v)});
      rd.constraint = std::move(c);
    }
    Emit(std::move(rd));
    AddKnown(bind, v);
  }
}

// A register poll that fails a scripted number of iterations before the
// scripted success value appears; the optional body runs per failed iteration.
void TemplateGen::PollBlock() {
  uint64_t off = NextOff();
  uint32_t iters = static_cast<uint32_t>(rng_.Range(0, 3));
  uint32_t mask = static_cast<uint32_t>(rng_.Range(0, 0xffff'ffff)) | 1u;
  uint32_t success = static_cast<uint32_t>(rng_.Range(0, 0xffff'ffff));
  uint32_t fail = success ^ 1u;  // differs in a masked bit
  std::vector<uint32_t>& queue = case_.script.read_queues[off];
  for (uint32_t i = 0; i < iters; ++i) {
    queue.push_back(fail);
  }
  queue.push_back(success);

  TemplateEvent p = Event(EventKind::kPollReg);
  p.device = kGenDeviceId;
  p.reg_off = off;
  p.mask = mask;
  p.want = success & mask;
  p.poll_cmp = Cmp::kEq;
  p.interval_us = rng_.Range(1, 4);
  p.timeout_us = 50'000;
  p.recorded_iters = iters;
  if (iters > 0 && rng_.Chance(40)) {
    TemplateEvent body = Event(EventKind::kRegWrite);
    body.device = kGenDeviceId;
    body.reg_off = NextOff();
    body.value = Expr::Const(rng_.Range(0, 0xffff));
    p.body.push_back(std::move(body));
  }
  if (rng_.Chance(50)) {
    std::string bind = NewSym("p");
    p.bind = bind;
    AddKnown(bind, success);
  }
  Emit(std::move(p));
}

// A dma_alloc plus a run of consecutive +4 word writes (the compiled engine
// coalesces these into one bulk op), optionally read back under constraints,
// shm-polled, and copied out to the trustlet buffer.
void TemplateGen::ShmRunBlock() {
  uint64_t words = rng_.Range(2, 6);
  std::string sym = NewSym("dma");
  TemplateEvent alloc = Event(EventKind::kDmaAlloc);
  alloc.bind = sym;
  alloc.value = Expr::Const(words * 4);
  Emit(std::move(alloc));
  known_[sym] = ModelAlloc(words * 4);  // modeled address; kept out of pool_

  Region r;
  r.sym = sym;
  r.bytes.assign(words * 4, 0);
  r.init.assign(words * 4, false);
  std::vector<ExprRef> vals;
  for (uint64_t i = 0; i < words; ++i) {
    ExprRef v = rng_.Chance(60) ? Expr::Const(rng_.Range(0, 0xffff'ffff))
                                : RandomExpr(static_cast<int>(rng_.Range(1, 2)));
    WriteRegionWord(&r, i * 4, v);
    vals.push_back(std::move(v));
  }
  if (rng_.Chance(70)) {
    for (uint64_t i = 0; i < words; ++i) {
      uint32_t cv = WordAt(r.bytes, i * 4);
      std::string bind = NewSym("r");
      TemplateEvent rd = Event(EventKind::kShmRead);
      rd.addr = AddrExpr(sym, i * 4);
      rd.bind = bind;
      rd.state_changing = true;
      rd.constraint = ReadbackConstraint(bind, vals[i], cv);
      Emit(std::move(rd));
      AddKnown(bind, cv);
    }
  }
  if (rng_.Chance(40)) {
    uint64_t w = rng_.Range(0, words - 1);
    TemplateEvent p = Event(EventKind::kPollShm);
    p.addr = AddrExpr(sym, w * 4);
    p.mask = 0xffff'ffff;
    p.want = WordAt(r.bytes, w * 4);
    p.poll_cmp = Cmp::kEq;
    p.interval_us = 1;
    p.timeout_us = 1'000;
    Emit(std::move(p));
  }
  if (rng_.Chance(50)) {
    uint64_t src = rng_.Range(0, words * 4 - 4);
    uint64_t len = rng_.Range(1, words * 4 - src);
    CopyRegionToOut(r, src, len);
  }
  regions_.push_back(std::move(r));
}

// The paper's descriptor topology: build a control block in shared memory,
// point the system DMA engine at it, kick CS, wait for the completion IRQ,
// ack it, and verify the destination — exercises the DMA and IRQ fault planes
// plus symbolic descriptor fields (dma_alloc addresses as data values).
void TemplateGen::DmaDescriptorBlock() {
  uint64_t words = rng_.Range(2, 8);
  uint64_t len = words * 4;
  std::string src = NewSym("dma");
  std::string dst = NewSym("dma");
  std::string cb = NewSym("dma");
  for (const auto& [sym, size] :
       {std::pair<std::string, uint64_t>{src, len}, {dst, len}, {cb, 32}}) {
    TemplateEvent alloc = Event(EventKind::kDmaAlloc);
    alloc.bind = sym;
    alloc.value = Expr::Const(size);
    Emit(std::move(alloc));
    known_[sym] = ModelAlloc(size);
  }

  Region rs;
  rs.sym = src;
  rs.bytes.assign(len, 0);
  rs.init.assign(len, false);
  for (uint64_t i = 0; i < words; ++i) {
    WriteRegionWord(&rs, i * 4, Expr::Const(rng_.Range(0, 0xffff'ffff)));
  }

  // Control block: ti | source_ad | dest_ad | txfr_len | stride | nextconbk | 2x reserved.
  Region rc;
  rc.sym = cb;
  rc.bytes.assign(32, 0);
  rc.init.assign(32, false);
  constexpr uint32_t kTi = kDmaTiIntEn | kDmaTiSrcInc | kDmaTiDestInc;
  const ExprRef cb_words[8] = {Expr::Const(kTi),  Expr::Input(src), Expr::Input(dst),
                               Expr::Const(len),  Expr::Const(0),   Expr::Const(0),
                               Expr::Const(0),    Expr::Const(0)};
  for (int i = 0; i < 8; ++i) {
    WriteRegionWord(&rc, static_cast<uint64_t>(i) * 4, cb_words[i]);
  }

  TemplateEvent kick = Event(EventKind::kRegWrite);
  kick.device = kGenDmaDeviceId;
  kick.reg_off = kDmaConblkAd;
  kick.value = Expr::Input(cb);
  Emit(std::move(kick));
  TemplateEvent go = Event(EventKind::kRegWrite);
  go.device = kGenDmaDeviceId;
  go.reg_off = kDmaCs;
  go.value = Expr::Const(kDmaCsActive);
  Emit(std::move(go));
  TemplateEvent wait = Event(EventKind::kWaitIrq);
  wait.irq_line = kDmaIrqBase;  // channel 0 completion line
  wait.timeout_us = 100'000;
  Emit(std::move(wait));
  TemplateEvent ack = Event(EventKind::kRegWrite);
  ack.device = kGenDmaDeviceId;
  ack.reg_off = kDmaCs;
  ack.value = Expr::Const(kDmaCsEnd | kDmaCsInt);  // write-1-clear lowers the line
  Emit(std::move(ack));

  Region rd;
  rd.sym = dst;
  rd.bytes = rs.bytes;
  rd.init.assign(len, true);
  if (rng_.Chance(70)) {
    for (uint64_t i = 0; i < words; ++i) {
      uint32_t cv = WordAt(rd.bytes, i * 4);
      std::string bind = NewSym("r");
      TemplateEvent chk = Event(EventKind::kShmRead);
      chk.addr = AddrExpr(dst, i * 4);
      chk.bind = bind;
      chk.state_changing = true;
      Constraint c;
      c.AddAtom(ConstraintAtom{Expr::Input(bind), Cmp::kEq, Expr::Const(cv)});
      chk.constraint = std::move(c);
      Emit(std::move(chk));
      AddKnown(bind, cv);
    }
  }
  if (rng_.Chance(40)) {
    CopyRegionToOut(rd, 0, rng_.Range(4, len));
  }
  regions_.push_back(std::move(rs));
  regions_.push_back(std::move(rc));
  regions_.push_back(std::move(rd));
}

// Trustlet payload -> shared memory -> verified readback -> back out.
void TemplateGen::PayloadCopyBlock() {
  uint64_t len = rng_.Range(4, 32);
  uint64_t src_off = rng_.Range(0, case_.payload.size() - len);
  std::string sym = NewSym("dma");
  TemplateEvent alloc = Event(EventKind::kDmaAlloc);
  alloc.bind = sym;
  alloc.value = Expr::Const(len);
  Emit(std::move(alloc));
  known_[sym] = ModelAlloc(len);

  TemplateEvent cp = Event(EventKind::kCopyToDma);
  cp.buffer = "payload";
  cp.buf_offset = Expr::Const(src_off);
  cp.value = Expr::Const(len);
  cp.addr = Expr::Input(sym);
  Emit(std::move(cp));

  Region r;
  r.sym = sym;
  r.bytes.assign(case_.payload.begin() + static_cast<long>(src_off),
                 case_.payload.begin() + static_cast<long>(src_off + len));
  r.init.assign(len, true);
  if (rng_.Chance(60)) {
    uint32_t cv = WordAt(r.bytes, 0);
    std::string bind = NewSym("r");
    TemplateEvent rd = Event(EventKind::kShmRead);
    rd.addr = Expr::Input(sym);
    rd.bind = bind;
    rd.state_changing = true;
    Constraint c;
    c.AddAtom(ConstraintAtom{Expr::Input(bind), Cmp::kEq, Expr::Const(cv)});
    rd.constraint = std::move(c);
    Emit(std::move(rd));
    AddKnown(bind, cv);
  }
  if (rng_.Chance(50)) {
    CopyRegionToOut(r, 0, len);
  }
  regions_.push_back(std::move(r));
}

// PIO block transfers through the device FIFO (a scripted offset): pio_in
// consumes scripted words into "out", pio_out pushes payload bytes.
void TemplateGen::PioBlock() {
  uint64_t words = rng_.Range(1, 3);
  uint64_t len = words * 4 - (rng_.Chance(30) ? rng_.Range(1, 3) : 0);
  if (out_cursor_ + len <= case_.out_len) {
    uint64_t off = NextOff();
    std::vector<uint32_t>& queue = case_.script.read_queues[off];
    std::vector<uint8_t> bytes;
    for (uint64_t i = 0; i < words; ++i) {
      uint32_t v = static_cast<uint32_t>(rng_.Range(0, 0xffff'ffff));
      queue.push_back(v);
      for (int b = 0; b < 4; ++b) {
        bytes.push_back(static_cast<uint8_t>(v >> (8 * b)));
      }
    }
    TemplateEvent in = Event(EventKind::kPioIn);
    in.device = kGenDeviceId;
    in.reg_off = off;
    in.buffer = "out";
    in.buf_offset = Expr::Const(out_cursor_);
    in.value = Expr::Const(len);
    Emit(std::move(in));
    for (uint64_t i = 0; i < len; ++i) {
      case_.expected_out[out_cursor_ + i] = bytes[i];
    }
    out_cursor_ += len;
  }
  if (rng_.Chance(50)) {
    uint64_t plen = rng_.Range(1, 16);
    TemplateEvent out = Event(EventKind::kPioOut);
    out.device = kGenDeviceId;
    out.reg_off = NextOff();
    out.buffer = "payload";
    out.buf_offset = Expr::Const(rng_.Range(0, case_.payload.size() - plen));
    out.value = Expr::Const(plen);
    Emit(std::move(out));
  }
}

// Doorbell -> wait_irq -> ack against the GenDevice's scheduled raise.
void TemplateGen::IrqBlock() {
  TemplateEvent bell = Event(EventKind::kRegWrite);
  bell.device = kGenDeviceId;
  bell.reg_off = GenDevice::kDoorbellOff;
  bell.value = Expr::Const(1);
  Emit(std::move(bell));
  if (rng_.Chance(30)) {
    TemplateEvent d = Event(EventKind::kDelay);
    d.value = Expr::Const(rng_.Range(1, 100));
    Emit(std::move(d));
  }
  TemplateEvent wait = Event(EventKind::kWaitIrq);
  wait.irq_line = kGenIrqLine;
  wait.timeout_us = 10'000;
  Emit(std::move(wait));
  TemplateEvent ack = Event(EventKind::kRegWrite);
  ack.device = kGenDeviceId;
  ack.reg_off = GenDevice::kIrqAckOff;
  ack.value = Expr::Const(1);
  Emit(std::move(ack));
}

// Environment events: delays plus rand/timestamp binds. Those bound values are
// deliberately opaque — never referenced again — because they differ between
// invokes (the TEE RNG stream and the clock both advance monotonically).
void TemplateGen::MiscBlock() {
  int n = static_cast<int>(rng_.Range(1, 3));
  for (int i = 0; i < n; ++i) {
    switch (rng_.Range(0, 2)) {
      case 0: {
        TemplateEvent d = Event(EventKind::kDelay);
        d.value = Expr::Const(rng_.Range(1, 50));
        Emit(std::move(d));
        break;
      }
      case 1: {
        TemplateEvent t = Event(EventKind::kGetTimestamp);
        t.bind = NewSym("t");
        Emit(std::move(t));
        break;
      }
      default: {
        TemplateEvent r = Event(EventKind::kGetRandBytes);
        r.bind = NewSym("n");
        Emit(std::move(r));
        break;
      }
    }
  }
}

// The fTPM-pipe shape: a FIFO read whose byte length is a symbolic function
// of a scalar parameter (the variable-length response slot the compiled
// engine lowers with postfix length folding), preceded by an unconstrained
// statistic read (the RspLen idiom: observed, bound, never branched), and
// optionally followed by a symbolic-length request push.
void TemplateGen::VarLenPioBlock() {
  const char* param = rng_.Chance(50) ? "a" : "b";
  // len = (param & 0x18) + 8 ∈ {8, 16, 24, 32}: word-aligned and bounded, so
  // the generated FIFO script always covers it.
  ExprRef len_expr =
      Expr::Binary(ExprOp::kAdd,
                   Expr::Binary(ExprOp::kAnd, Expr::Input(param), Expr::Const(0x18)),
                   Expr::Const(8));
  uint64_t len = ValueOf(len_expr);

  // Statistic input: the device reports the length; the template observes it
  // without constraining it (it is not state-changing).
  uint64_t stat_off = NextOff();
  case_.script.read_queues[stat_off].push_back(static_cast<uint32_t>(len));
  TemplateEvent stat = Event(EventKind::kRegRead);
  stat.device = kGenDeviceId;
  stat.reg_off = stat_off;
  stat.bind = NewSym("s");  // deliberately never referenced again
  Emit(std::move(stat));

  if (out_cursor_ + len <= case_.out_len) {
    uint64_t fifo_off = NextOff();
    std::vector<uint32_t>& queue = case_.script.read_queues[fifo_off];
    std::vector<uint8_t> bytes;
    for (uint64_t i = 0; i < len / 4; ++i) {
      uint32_t v = static_cast<uint32_t>(rng_.Range(0, 0xffff'ffff));
      queue.push_back(v);
      for (int b = 0; b < 4; ++b) {
        bytes.push_back(static_cast<uint8_t>(v >> (8 * b)));
      }
    }
    TemplateEvent in = Event(EventKind::kPioIn);
    in.device = kGenDeviceId;
    in.reg_off = fifo_off;
    in.buffer = "out";
    in.buf_offset = Expr::Const(out_cursor_);
    in.value = len_expr;  // the symbolic variable-length slot
    Emit(std::move(in));
    for (uint64_t i = 0; i < len; ++i) {
      case_.expected_out[out_cursor_ + i] = bytes[i];
    }
    out_cursor_ += len;
  }

  if (rng_.Chance(60)) {
    // Symbolic-length request push from the trustlet payload.
    const char* other = param[0] == 'a' ? "b" : "a";
    ExprRef plen_expr =
        Expr::Binary(ExprOp::kAdd,
                     Expr::Binary(ExprOp::kAnd, Expr::Input(other), Expr::Const(0xc)),
                     Expr::Const(4));
    uint64_t plen = ValueOf(plen_expr);  // ∈ {4, 8, 12, 16}
    TemplateEvent out = Event(EventKind::kPioOut);
    out.device = kGenDeviceId;
    out.reg_off = NextOff();
    out.buffer = "payload";
    out.buf_offset = Expr::Const(rng_.Range(0, case_.payload.size() - plen));
    out.value = plen_expr;
    Emit(std::move(out));
  }
}

// The crypto-queue shape: build a ring of 4-word descriptors in DMA memory —
// control words carry a parameter as a symbolic bitfield and dma_alloc
// addresses as data — ring the doorbell, wait for the completion IRQ, then
// poll the consumer index, which GenDevice's doorbell completion publishes
// (doorbell_sets), so the poll only succeeds after the "engine" finished.
void TemplateGen::DescriptorRingBlock() {
  uint64_t n = rng_.Range(1, 3);

  // Consumer index: starts at 0 in the reset register file, jumps to n when
  // the doorbell's completion fires.
  uint64_t tail_off = NextOff();
  case_.script.initial_regs[tail_off] = 0;
  case_.script.doorbell_sets[tail_off] = static_cast<uint32_t>(n);

  // Per-descriptor payload regions, then the ring itself.
  std::vector<std::string> srcs;
  std::vector<Region> src_regions;
  for (uint64_t i = 0; i < n; ++i) {
    std::string src = NewSym("dma");
    TemplateEvent alloc = Event(EventKind::kDmaAlloc);
    alloc.bind = src;
    alloc.value = Expr::Const(16);
    Emit(std::move(alloc));
    known_[src] = ModelAlloc(16);
    Region r;
    r.sym = src;
    r.bytes.assign(16, 0);
    r.init.assign(16, false);
    for (uint64_t w = 0; w < 4; ++w) {
      WriteRegionWord(&r, w * 4, Expr::Const(rng_.Range(0, 0xffff'ffff)));
    }
    srcs.push_back(src);
    src_regions.push_back(std::move(r));
  }

  std::string ring = NewSym("dma");
  TemplateEvent alloc = Event(EventKind::kDmaAlloc);
  alloc.bind = ring;
  alloc.value = Expr::Const(n * 16);
  Emit(std::move(alloc));
  known_[ring] = ModelAlloc(n * 16);

  Region rr;
  rr.sym = ring;
  rr.bytes.assign(n * 16, 0);
  rr.init.assign(n * 16, false);
  const char* param = rng_.Chance(50) ? "a" : "b";
  for (uint64_t i = 0; i < n; ++i) {
    // ctrl = valid | irq-on-last | (param << 8): the parameter stays symbolic
    // inside the descriptor control word, the crypto-driver op idiom.
    uint32_t flags = 0x1 | (i + 1 == n ? 0x2 : 0);
    ExprRef dctrl =
        Expr::Binary(ExprOp::kOr, Expr::Const(flags),
                     Expr::Binary(ExprOp::kShl, Expr::Input(param), Expr::Const(8)));
    WriteRegionWord(&rr, i * 16 + 0, dctrl);
    WriteRegionWord(&rr, i * 16 + 4, Expr::Input(srcs[i]));
    WriteRegionWord(&rr, i * 16 + 8, Expr::Const(16));
    WriteRegionWord(&rr, i * 16 + 12, Expr::Const(rng_.Range(0, 0xffff'ffff)));
  }

  // Doorbell -> completion IRQ -> ack -> IRQ-gated consumer-index poll.
  TemplateEvent bell = Event(EventKind::kRegWrite);
  bell.device = kGenDeviceId;
  bell.reg_off = GenDevice::kDoorbellOff;
  bell.value = Expr::Const(1);
  Emit(std::move(bell));
  TemplateEvent wait = Event(EventKind::kWaitIrq);
  wait.irq_line = kGenIrqLine;
  wait.timeout_us = 10'000;
  Emit(std::move(wait));
  TemplateEvent ack = Event(EventKind::kRegWrite);
  ack.device = kGenDeviceId;
  ack.reg_off = GenDevice::kIrqAckOff;
  ack.value = Expr::Const(1);
  Emit(std::move(ack));
  TemplateEvent poll = Event(EventKind::kPollReg);
  poll.device = kGenDeviceId;
  poll.reg_off = tail_off;
  poll.mask = 0xffff'ffff;
  poll.want = static_cast<uint32_t>(n);
  poll.poll_cmp = Cmp::kEq;
  poll.interval_us = 2;
  poll.timeout_us = 50'000;
  poll.recorded_iters = 0;
  if (rng_.Chance(50)) {
    std::string bind = NewSym("p");
    poll.bind = bind;
    AddKnown(bind, n);
  }
  Emit(std::move(poll));

  if (rng_.Chance(50)) {
    uint64_t i = rng_.Range(0, n - 1);
    CopyRegionToOut(src_regions[i], 0, 16);
  }
  for (Region& r : src_regions) {
    regions_.push_back(std::move(r));
  }
  regions_.push_back(std::move(rr));
}

// A compound operand expression (guaranteed non-folded: it references an
// input) written to a register, read back under a symbolic masked constraint.
void TemplateGen::ExprBlock() {
  uint64_t off = NextOff();
  ExprRef v = Expr::Binary(ExprOp::kAdd, Expr::Input(pool_[rng_.Range(0, pool_.size() - 1)]),
                           RandomExpr(static_cast<int>(rng_.Range(0, 3))));
  uint32_t cv = static_cast<uint32_t>(ValueOf(v));
  TemplateEvent w = Event(EventKind::kRegWrite);
  w.device = kGenDeviceId;
  w.reg_off = off;
  w.value = v;
  Emit(std::move(w));

  std::string bind = NewSym("r");
  TemplateEvent rd = Event(EventKind::kRegRead);
  rd.device = kGenDeviceId;
  rd.reg_off = off;
  rd.bind = bind;
  rd.state_changing = true;
  Constraint c;
  c.AddAtom(ConstraintAtom{Expr::Input(bind), Cmp::kEq,
                           Expr::Binary(ExprOp::kAnd, v, Expr::Const(0xffff'ffff))});
  rd.constraint = std::move(c);
  Emit(std::move(rd));
  AddKnown(bind, cv);
}

GeneratedCase TemplateGen::Generate() {
  case_ = GeneratedCase{};
  case_.seed = cfg_.seed;
  case_.tpl.name = "gen_" + std::to_string(cfg_.seed);
  case_.tpl.entry = kGenEntry;
  case_.tpl.primary_device = kGenDeviceId;
  case_.tpl.params = {ParamSpec{"a", false}, ParamSpec{"b", false}, ParamSpec{"out", true},
                      ParamSpec{"payload", true}};
  case_.out_len = 256;
  case_.expected_out.assign(case_.out_len, 0);
  case_.payload.resize(128);
  for (uint8_t& b : case_.payload) {
    b = static_cast<uint8_t>(rng_.Next());
  }

  known_.clear();
  pool_.clear();
  regions_.clear();
  next_off_ = 0x10;
  next_alloc_ = kTeePoolBase;
  out_cursor_ = 0;
  sym_counter_ = 0;
  for (const char* name : {"a", "b"}) {
    uint64_t v = rng_.Range(1, 0xffff);
    case_.scalars[name] = v;
    AddKnown(name, v);
    if (rng_.Chance(70)) {
      ConstraintAtom atom;
      atom.lhs = Expr::Input(name);
      switch (rng_.Range(0, 3)) {
        case 0:
          atom.cmp = Cmp::kEq;
          atom.rhs = Expr::Const(v);
          break;
        case 1:
          atom.cmp = Cmp::kLe;
          atom.rhs = Expr::Const(v + rng_.Range(0, 100));
          break;
        case 2:
          atom.cmp = Cmp::kGe;
          atom.rhs = Expr::Const(v - rng_.Range(0, v));
          break;
        default:
          atom.cmp = Cmp::kNe;
          atom.rhs = Expr::Const(v + 1);
          break;
      }
      case_.tpl.initial.AddAtom(std::move(atom));
    }
  }

  int blocks = static_cast<int>(rng_.Range(static_cast<uint64_t>(cfg_.min_blocks),
                                           static_cast<uint64_t>(cfg_.max_blocks)));
  for (int i = 0; i < blocks; ++i) {
    switch (rng_.Range(0, 11)) {
      case 0:
        RegBlock();
        break;
      case 1:
        ScriptedReadBlock();
        break;
      case 2:
        PollBlock();
        break;
      case 3:
        ShmRunBlock();
        break;
      case 4:
        DmaDescriptorBlock();
        break;
      case 5:
        PayloadCopyBlock();
        break;
      case 6:
        PioBlock();
        break;
      case 7:
        IrqBlock();
        break;
      case 8:
        MiscBlock();
        break;
      case 9:
        VarLenPioBlock();
        break;
      case 10:
        DescriptorRingBlock();
        break;
      default:
        ExprBlock();
        break;
    }
  }

  if (cfg_.force_deep_expr) {
    // A right-nested chain deeper than kMaxExprStack: CompileTemplate returns
    // kUnsupported and the replayer takes the interpreter-fallback path.
    ExprRef v = Expr::Input("a");
    for (int i = 0; i < 30; ++i) {
      v = Expr::Binary(ExprOp::kAdd, Expr::Const(1), v);
    }
    uint32_t cv = static_cast<uint32_t>(ValueOf(v));
    uint64_t off = NextOff();
    TemplateEvent w = Event(EventKind::kRegWrite);
    w.device = kGenDeviceId;
    w.reg_off = off;
    w.value = v;
    Emit(std::move(w));
    std::string bind = NewSym("r");
    TemplateEvent rd = Event(EventKind::kRegRead);
    rd.device = kGenDeviceId;
    rd.reg_off = off;
    rd.bind = bind;
    rd.state_changing = true;
    Constraint c;
    c.AddAtom(ConstraintAtom{Expr::Input(bind), Cmp::kEq, Expr::Const(cv)});
    rd.constraint = std::move(c);
    Emit(std::move(rd));
  }

  return std::move(case_);
}

GeneratedCase GenerateCase(const GenConfig& cfg) { return TemplateGen(cfg).Generate(); }

GeneratedCase GenerateCase(uint64_t seed) {
  GenConfig cfg;
  cfg.seed = seed;
  return GenerateCase(cfg);
}

}  // namespace dlt
