// Property-based conformance runner over generated templates (the tentpole of
// docs/conformance.md). For a GeneratedCase it asserts a pluggable invariant
// set — compiled ≡ interpreter on every normal-world observable, serializer
// round-trip + re-replay identity, TemplateStore selection/compile cache
// coherence, replay determinism across repeated invokes, and byte-identical
// behaviour under each seeded {mmio, dma, irq} fault plane. Failing cases are
// shrunk (event-list bisection + operand simplification) to a minimal template
// and written to a repro file that `driverletc check --repro <file>` replays.
#ifndef SRC_CHECK_CONFORMANCE_H_
#define SRC_CHECK_CONFORMANCE_H_

#include <string>
#include <vector>

#include "src/check/gen_device.h"
#include "src/check/template_gen.h"
#include "src/soc/machine.h"
#include "src/tee/secure_world.h"

namespace dlt {

// Signing key for generated packages (pre-parsed loads don't verify it, but
// the repro tool seals with it so sealed artifacts stay openable).
inline constexpr const char kGenSigningKey[] = "driverlet-developer-key-v1";

// Machine + GenDevice + SecureWorld wired like Rpi3Testbed's secure-IO path:
// GenDevice attached after the built-in DMA engine, both TZASC-assigned to the
// secure world and mapped into the TEE.
struct GenHarness {
  Machine machine;
  GenDevice dev;
  SecureWorld tee;
  uint16_t gen_id = 0;

  GenHarness();
};

struct ConformanceFailure {
  std::string invariant;
  std::string detail;
};

struct ConformanceOutcome {
  std::vector<ConformanceFailure> failures;
  int invariants_run = 0;
  // Clean compiled-run accounting (filled when the "baseline" invariant runs).
  uint64_t events_executed = 0;
  uint64_t end_us = 0;

  bool ok() const { return failures.empty(); }
};

// Invariant names, in the order RunConformance evaluates them. The
// self-relative invariants (parity first) precede "baseline" so a shrink
// anchors on an invariant that stays meaningful for event subsets.
std::vector<std::string> AllInvariants();
// AllInvariants minus "baseline": repro files don't carry expected output
// bytes, so re-executed repros check every self-relative invariant instead.
std::vector<std::string> ReproInvariants();

// Runs the named invariants (every name must come from AllInvariants) against
// one generated case, collecting all failures rather than stopping at the
// first.
ConformanceOutcome RunConformance(const GeneratedCase& g,
                                  const std::vector<std::string>& invariants);
ConformanceOutcome RunConformance(const GeneratedCase& g);  // all invariants

struct ShrinkResult {
  GeneratedCase reduced;
  std::string invariant;      // the invariant the minimal case still fails
  int steps = 0;              // candidate executions the shrinker tried
  size_t original_events = 0;
};

// Minimizes a failing case: ddmin-style event-list bisection, then operand
// simplification, each candidate required to (a) keep every referenced symbol
// bound and (b) still fail the same invariant. kInvalidArg when |g| passes.
Result<ShrinkResult> Shrink(const GeneratedCase& g,
                            const std::vector<std::string>& invariants);

// Repro files: a small text artifact carrying the template, the GenDevice
// script and the invoke inputs — everything needed to re-execute the failure.
struct Repro {
  GeneratedCase c;  // expected_out left empty (see ReproInvariants)
  std::string invariant;
};

std::string ReproToString(const GeneratedCase& g, const std::string& invariant);
Result<Repro> ParseRepro(std::string_view text);
Status WriteRepro(const std::string& path, const GeneratedCase& g,
                  const std::string& invariant);
Result<Repro> ReadRepro(const std::string& path);

// True when every symbol an event expression references is bound earlier
// (scalar param or a preceding bind) — the shrinker's candidate filter,
// exposed for tests.
bool SymbolClosureValid(const InteractionTemplate& tpl);

}  // namespace dlt

#endif  // SRC_CHECK_CONFORMANCE_H_
