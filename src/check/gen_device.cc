#include "src/check/gen_device.h"

namespace dlt {

GenDevice::GenDevice(SimClock* clock, InterruptController* irq, int line)
    : clock_(clock), irq_(irq), line_(line) {}

GenDevice::~GenDevice() { CancelPendingRaises(); }

void GenDevice::Configure(GenScript script) {
  script_ = std::move(script);
  SoftReset();
}

uint32_t GenDevice::MmioRead32(uint64_t offset) {
  auto q = script_.read_queues.find(offset);
  if (q != script_.read_queues.end()) {
    size_t& cur = cursors_[offset];
    if (cur < q->second.size()) {
      return q->second[cur++];
    }
  }
  auto r = regs_.find(offset);
  return r != regs_.end() ? r->second : 0;
}

void GenDevice::MmioWrite32(uint64_t offset, uint32_t value) {
  if (offset == kDoorbellOff) {
    pending_raises_.push_back(clock_->ScheduleIn(script_.irq_delay_us, [this] {
      for (const auto& [off, v] : script_.doorbell_sets) {
        regs_[off] = v;
      }
      irq_->Raise(line_);
    }));
    return;
  }
  if (offset == kIrqAckOff) {
    irq_->Clear(line_);
    return;
  }
  regs_[offset] = value;
}

void GenDevice::SoftReset() {
  CancelPendingRaises();
  irq_->Clear(line_);
  cursors_.clear();
  regs_ = script_.initial_regs;
}

void GenDevice::CancelPendingRaises() {
  for (SimClock::EventId id : pending_raises_) {
    clock_->Cancel(id);
  }
  pending_raises_.clear();
}

}  // namespace dlt
