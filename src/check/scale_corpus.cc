#include "src/check/scale_corpus.h"

#include <utility>

#include "src/check/template_gen.h"

namespace dlt {
namespace {

enum class Role { kEq, kRange, kMask, kResidual };

Role RoleOf(size_t p) {
  if (p == 1) {
    return Role::kResidual;
  }
  if (p % 7 == 2) {
    return Role::kRange;
  }
  if (p % 7 == 3) {
    return Role::kMask;
  }
  return Role::kEq;
}

constexpr uint64_t kXorC = 0x5a5a5a5aull;
constexpr uint64_t kFlagsMask = 0xffffff00ull;

// Residual targets live above 2^32 so no eq row's key can collide.
uint64_t ResidualSel(size_t k) { return (1ull << 32) + k; }
uint64_t MaskWant(size_t p) { return (static_cast<uint64_t>(p) + 1) << 8; }

Constraint RowConstraint(size_t k, size_t p) {
  Constraint c;
  switch (RoleOf(p)) {
    case Role::kEq:
      c.AddAtom(ConstraintAtom{Expr::Input("sel"), Cmp::kEq, Expr::Const(k)});
      break;
    case Role::kRange:
      c.AddAtom(ConstraintAtom{Expr::Input("lvl"), Cmp::kGe, Expr::Const(p * 16)});
      c.AddAtom(ConstraintAtom{Expr::Input("lvl"), Cmp::kLe, Expr::Const(p * 16 + 7)});
      break;
    case Role::kMask:
      c.AddAtom(ConstraintAtom{
          Expr::Binary(ExprOp::kAnd, Expr::Input("flags"), Expr::Const(kFlagsMask)), Cmp::kEq,
          Expr::Const(MaskWant(p))});
      break;
    case Role::kResidual:
      // Xor is outside the gate grammar on purpose: this row can only be
      // reached through the slot's residual list.
      c.AddAtom(ConstraintAtom{Expr::Binary(ExprOp::kXor, Expr::Input("sel"), Expr::Const(kXorC)),
                               Cmp::kEq, Expr::Const(ResidualSel(k) ^ kXorC)});
      break;
  }
  return c;
}

}  // namespace

std::string ScaleEntry(const ScaleCorpusConfig& cfg, size_t target) {
  return "replay_scale_" + std::to_string(target % cfg.entries);
}

ScaleCorpus BuildScaleCorpus(const ScaleCorpusConfig& cfg) {
  ScaleCorpus out;
  out.cfg = cfg;
  out.pkg.driverlet = kScaleDriverlet;

  std::vector<InteractionTemplate> bases;
  bases.reserve(cfg.base_bodies);
  for (size_t i = 0; i < cfg.base_bodies; ++i) {
    GenConfig gen;
    gen.seed = cfg.seed + i;
    gen.min_blocks = 1;
    gen.max_blocks = 1;
    GeneratedCase c = GenerateCase(gen);
    bases.push_back(std::move(c.tpl));
    out.base_scalars.push_back(std::move(c.scalars));
  }

  out.pkg.templates.reserve(cfg.templates);
  for (size_t k = 0; k < cfg.templates; ++k) {
    InteractionTemplate t = bases[k % bases.size()];
    t.name = "scale_" + std::to_string(k);
    t.entry = ScaleEntry(cfg, k);
    t.params.push_back(ParamSpec{"sel", false});
    t.params.push_back(ParamSpec{"lvl", false});
    t.params.push_back(ParamSpec{"flags", false});
    t.initial = RowConstraint(k, k / cfg.entries);
    out.pkg.templates.push_back(std::move(t));
  }
  return out;
}

Bindings ScaleInvokeScalars(const ScaleCorpus& corpus, size_t target) {
  Bindings b = corpus.base_scalars[target % corpus.base_scalars.size()];
  size_t p = target / corpus.cfg.entries;
  switch (RoleOf(p)) {
    case Role::kEq:
      b["sel"] = target;
      b["lvl"] = 0xffffffffull;
      b["flags"] = 1;
      break;
    case Role::kRange:
      b["sel"] = ~0ull;
      b["lvl"] = p * 16 + target % 8;
      b["flags"] = 1;
      break;
    case Role::kMask:
      b["sel"] = ~0ull;
      b["lvl"] = 0xffffffffull;
      b["flags"] = MaskWant(p) | 5;
      break;
    case Role::kResidual:
      b["sel"] = ResidualSel(target);
      b["lvl"] = 0xffffffffull;
      b["flags"] = 1;
      break;
  }
  return b;
}

}  // namespace dlt
