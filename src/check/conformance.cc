#include "src/check/conformance.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <optional>
#include <set>

#include "src/core/compiled_program.h"
#include "src/core/integrity.h"
#include "src/core/package.h"
#include "src/core/replayer.h"
#include "src/core/serialize_binary.h"
#include "src/core/serialize_text.h"
#include "src/core/template_store.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/obs/telemetry.h"

namespace dlt {

GenHarness::GenHarness()
    : dev(&machine.clock(), &machine.irq()), tee(&machine) {
  auto id = machine.AttachDevice(kGenDeviceBase, kGenDeviceSize, &dev);
  gen_id = id.ok() ? *id : 0;
  machine.AssignToSecureWorld(gen_id);
  machine.AssignToSecureWorld(kGenDmaDeviceId);
  tee.MapDevice(gen_id);
  tee.MapDevice(kGenDmaDeviceId);
}

namespace {

// Everything about one replay run the normal world can observe — the oracle
// surface every cross-engine/cross-run invariant compares.
struct Obs {
  Status load = Status::kOk;      // package load outcome (setup, not replay)
  Status status = Status::kOk;    // Invoke outcome
  std::vector<uint8_t> out;       // "out" buffer bytes after the run
  ReplayStats stats;              // zeroed when Invoke failed
  uint64_t total_events = 0;      // replayer cumulative (counts failed attempts)
  uint64_t total_resets = 0;
  uint64_t end_us = 0;            // virtual clock at return
  uint64_t trace_pushed = 0;      // telemetry ring events emitted
  uint64_t replay_events = 0;     // "replay.events" counter
  uint64_t injected = 0;          // faults the injector fired
  DivergenceReport report;
  MeasurementRecord meas;         // runtime integrity record of the last attempt
};

DriverletPackage PackageOf(const InteractionTemplate& tpl) {
  DriverletPackage pkg;
  pkg.driverlet = kGenDriverlet;
  pkg.templates.push_back(tpl);
  return pkg;
}

// One replay on a fresh harness. |tpl_override| substitutes the loaded
// template (round-trip re-replay) while the invoke inputs stay |g|'s.
Obs RunOnce(const GeneratedCase& g, ReplayEngine engine, const FaultPlan* plan,
            const InteractionTemplate* tpl_override = nullptr) {
  Obs o;
  GenHarness h;
  h.dev.Configure(g.script);
  Replayer rep(&h.tee, kGenSigningKey);
  o.load = rep.LoadPackage(PackageOf(tpl_override ? *tpl_override : g.tpl));
  rep.set_engine(engine);
  FaultInjector inj(&h.machine);
  if (plan != nullptr) {
    inj.Arm(*plan);
  }

  std::vector<uint8_t> out(g.out_len, 0);
  ReplayArgs args;
  args.scalars = g.scalars;
  args.buffers["out"] = BufferView{out.data(), out.size()};
  args.ro_buffers["payload"] = ConstBufferView(g.payload.data(), g.payload.size());

  Telemetry::Get().Enable();
  Telemetry::Get().Reset();
  auto r = rep.Invoke(g.tpl.entry, args);
  o.status = r.ok() ? Status::kOk : r.status();
  if (r.ok()) {
    o.stats = *r;
  }
  o.trace_pushed = Telemetry::Get().ring().pushed();
  o.replay_events = Telemetry::Get().metrics().counter("replay.events").value();
  Telemetry::Get().Disable();

  o.out = std::move(out);
  o.total_events = rep.total_events_executed();
  o.total_resets = rep.total_resets();
  o.end_us = h.machine.clock().now_us();
  o.injected = inj.injected_total();
  o.report = rep.last_report();
  o.meas = rep.last_measurement();
  return o;
}

std::string Num(uint64_t v) { return std::to_string(v); }

// First observable difference between two runs, or nullopt when none.
// |engine_agnostic| skips the fields that legitimately differ across engines
// (compiled flag, model cost, coalesced-op count); cross-run comparisons of
// the same engine check those too.
std::optional<std::string> DiffObs(const Obs& a, const Obs& b, bool engine_agnostic) {
  if (a.load != b.load) {
    return std::string("load: ") + StatusName(a.load) + " vs " + StatusName(b.load);
  }
  if (a.status != b.status) {
    return std::string("status: ") + StatusName(a.status) + " vs " + StatusName(b.status);
  }
  if (a.out != b.out) {
    size_t i = 0;
    size_t n = std::min(a.out.size(), b.out.size());
    while (i < n && a.out[i] == b.out[i]) ++i;
    return "out bytes differ at offset " + Num(i) + " (0x" +
           (i < n ? Num(a.out[i]) + " vs 0x" + Num(b.out[i]) : "len mismatch") + ")";
  }
  if (a.stats.template_name != b.stats.template_name) {
    return "template: '" + a.stats.template_name + "' vs '" + b.stats.template_name + "'";
  }
  if (a.stats.attempts != b.stats.attempts) {
    return "attempts: " + Num(a.stats.attempts) + " vs " + Num(b.stats.attempts);
  }
  if (a.stats.events_executed != b.stats.events_executed) {
    return "events_executed: " + Num(a.stats.events_executed) + " vs " +
           Num(b.stats.events_executed);
  }
  if (a.stats.resets != b.stats.resets) {
    return "resets: " + Num(a.stats.resets) + " vs " + Num(b.stats.resets);
  }
  // The integrity chain is part of the oracle surface: engines must fold the
  // same structural descriptors in the same order (docs/architecture.md).
  if (a.stats.measurement != b.stats.measurement) {
    return "stats.measurement: " + a.stats.measurement + " vs " + b.stats.measurement;
  }
  if (a.stats.events_measured != b.stats.events_measured) {
    return "events_measured: " + Num(a.stats.events_measured) + " vs " +
           Num(b.stats.events_measured);
  }
  if (a.meas.valid != b.meas.valid) {
    return std::string("measurement.valid: ") + (a.meas.valid ? "true" : "false") + " vs " +
           (b.meas.valid ? "true" : "false");
  }
  if (a.meas.valid) {
    if (a.meas.Hex() != b.meas.Hex()) {
      return "measurement: " + a.meas.Hex() + " vs " + b.meas.Hex();
    }
    if (a.meas.events_measured != b.meas.events_measured) {
      return "measurement.events: " + Num(a.meas.events_measured) + " vs " +
             Num(b.meas.events_measured);
    }
    if (a.meas.matches_golden != b.meas.matches_golden) {
      return std::string("measurement.matches_golden differs");
    }
  }
  if (!engine_agnostic) {
    if (a.stats.compiled != b.stats.compiled) {
      return std::string("compiled flag: ") + (a.stats.compiled ? "true" : "false") +
             " vs " + (b.stats.compiled ? "true" : "false");
    }
    if (a.stats.cpu_model_ns != b.stats.cpu_model_ns) {
      return "cpu_model_ns: " + Num(a.stats.cpu_model_ns) + " vs " + Num(b.stats.cpu_model_ns);
    }
    if (a.stats.bulk_ops != b.stats.bulk_ops) {
      return "bulk_ops: " + Num(a.stats.bulk_ops) + " vs " + Num(b.stats.bulk_ops);
    }
  }
  if (a.total_events != b.total_events) {
    return "total_events: " + Num(a.total_events) + " vs " + Num(b.total_events);
  }
  if (a.total_resets != b.total_resets) {
    return "total_resets: " + Num(a.total_resets) + " vs " + Num(b.total_resets);
  }
  if (a.end_us != b.end_us) {
    return "end_us: " + Num(a.end_us) + " vs " + Num(b.end_us);
  }
  if (a.trace_pushed != b.trace_pushed) {
    return "trace events: " + Num(a.trace_pushed) + " vs " + Num(b.trace_pushed);
  }
  if (a.replay_events != b.replay_events) {
    return "replay.events: " + Num(a.replay_events) + " vs " + Num(b.replay_events);
  }
  if (a.injected != b.injected) {
    return "faults injected: " + Num(a.injected) + " vs " + Num(b.injected);
  }
  const DivergenceReport& ra = a.report;
  const DivergenceReport& rb = b.report;
  if (ra.valid != rb.valid) {
    return std::string("report.valid: ") + (ra.valid ? "true" : "false") + " vs " +
           (rb.valid ? "true" : "false");
  }
  if (ra.valid) {
    if (ra.template_name != rb.template_name) return std::string("report.template differs");
    if (ra.event_index != rb.event_index) {
      return "report.event_index: " + Num(ra.event_index) + " vs " + Num(rb.event_index);
    }
    if (ra.event_desc != rb.event_desc) {
      return "report.event: '" + ra.event_desc + "' vs '" + rb.event_desc + "'";
    }
    if (ra.file != rb.file || ra.line != rb.line) return std::string("report.site differs");
    if (ra.observed != rb.observed) {
      return "report.observed: " + Num(ra.observed) + " vs " + Num(rb.observed);
    }
    if (ra.expected_constraint != rb.expected_constraint) {
      return std::string("report.expected differs");
    }
    if (ra.rewound != rb.rewound) {
      return "report.rewound: " + Num(ra.rewound.size()) + " vs " + Num(rb.rewound.size()) +
             " entries";
    }
  }
  return std::nullopt;
}

using InvariantFn =
    std::function<std::optional<std::string>(const GeneratedCase&, ConformanceOutcome*)>;

// compiled ≡ interpreter on every normal-world observable.
std::optional<std::string> CheckEngineParity(const GeneratedCase& g, ConformanceOutcome*) {
  Obs interp = RunOnce(g, ReplayEngine::kInterpreter, nullptr);
  Obs compiled = RunOnce(g, ReplayEngine::kCompiled, nullptr);
  return DiffObs(interp, compiled, /*engine_agnostic=*/true);
}

// Two fresh harnesses agree byte-for-byte; two invokes on one harness agree on
// everything but durations (the TEE's sub-µs overhead remainder legitimately
// carries across invokes).
std::optional<std::string> CheckDeterminism(const GeneratedCase& g, ConformanceOutcome*) {
  Obs first = RunOnce(g, ReplayEngine::kCompiled, nullptr);
  Obs second = RunOnce(g, ReplayEngine::kCompiled, nullptr);
  if (auto d = DiffObs(first, second, /*engine_agnostic=*/false)) {
    return "fresh-harness repeat: " + *d;
  }

  GenHarness h;
  h.dev.Configure(g.script);
  Replayer rep(&h.tee, kGenSigningKey);
  if (!Ok(rep.LoadPackage(PackageOf(g.tpl)))) return std::string("package load failed");
  Status st[2] = {Status::kOk, Status::kOk};
  std::vector<uint8_t> outs[2];
  ReplayStats stats[2];
  for (int round = 0; round < 2; ++round) {
    std::vector<uint8_t> out(g.out_len, 0);
    ReplayArgs args;
    args.scalars = g.scalars;
    args.buffers["out"] = BufferView{out.data(), out.size()};
    args.ro_buffers["payload"] = ConstBufferView(g.payload.data(), g.payload.size());
    auto r = rep.Invoke(g.tpl.entry, args);
    st[round] = r.ok() ? Status::kOk : r.status();
    if (r.ok()) stats[round] = *r;
    outs[round] = std::move(out);
  }
  if (st[0] != st[1]) {
    return std::string("same-harness repeat status: ") + StatusName(st[0]) + " vs " +
           StatusName(st[1]);
  }
  if (outs[0] != outs[1]) return std::string("same-harness repeat output bytes differ");
  if (stats[0].attempts != stats[1].attempts ||
      stats[0].events_executed != stats[1].events_executed ||
      stats[0].resets != stats[1].resets || stats[0].compiled != stats[1].compiled) {
    return std::string("same-harness repeat stats differ");
  }
  return std::nullopt;
}

// text/binary round-trips are fixpoints and the binary-round-tripped template
// replays identically to the original.
std::optional<std::string> CheckSerializeRoundtrip(const GeneratedCase& g,
                                                   ConformanceOutcome*) {
  std::vector<InteractionTemplate> one{g.tpl};
  std::string text1 = TemplatesToText(one);
  auto from_text = TemplatesFromText(text1);
  if (!from_text.ok()) {
    return std::string("text parse failed: ") + StatusName(from_text.status());
  }
  if (from_text->size() != 1) return std::string("text parse yielded != 1 template");
  if (TemplatesToText(*from_text) != text1) return std::string("text round-trip not a fixpoint");

  std::vector<uint8_t> bin1 = TemplatesToBinary(one);
  auto from_bin = TemplatesFromBinary(bin1.data(), bin1.size());
  if (!from_bin.ok()) {
    return std::string("binary parse failed: ") + StatusName(from_bin.status());
  }
  if (from_bin->size() != 1) return std::string("binary parse yielded != 1 template");
  if (TemplatesToBinary(*from_bin) != bin1) {
    return std::string("binary round-trip not a fixpoint");
  }

  Obs original = RunOnce(g, ReplayEngine::kCompiled, nullptr);
  Obs rereplay = RunOnce(g, ReplayEngine::kCompiled, nullptr, &(*from_bin)[0]);
  if (auto d = DiffObs(original, rereplay, /*engine_agnostic=*/false)) {
    return "round-tripped template replays differently: " + *d;
  }
  return std::nullopt;
}

// TemplateStore selection + compile caches agree with uncached selection and
// with the template's own initial constraint.
std::optional<std::string> CheckStoreCoherence(const GeneratedCase& g, ConformanceOutcome*) {
  TemplateStore store;
  if (!Ok(store.AddPackage(PackageOf(g.tpl)))) return std::string("AddPackage failed");

  auto first = store.SelectCompiled(kGenDriverlet, g.tpl.entry, g.scalars);
  if (!first.ok()) {
    return std::string("SelectCompiled (cold): ") + StatusName(first.status());
  }
  auto second = store.SelectCompiled(kGenDriverlet, g.tpl.entry, g.scalars);
  if (!second.ok()) {
    return std::string("SelectCompiled (warm): ") + StatusName(second.status());
  }
  if (first->tpl != second->tpl) return std::string("cold/warm selected different templates");
  if (first->program != second->program) {
    return std::string("cold/warm returned different compiled programs");
  }
  if (store.select_cache_misses() != 1 || store.select_cache_hits() != 1) {
    return "selection cache counters: misses=" + Num(store.select_cache_misses()) +
           " hits=" + Num(store.select_cache_hits()) + ", want 1/1";
  }
  if (store.compile_cache_misses() != 1) {
    return "compile cache misses: " + Num(store.compile_cache_misses()) + ", want 1";
  }

  auto plain = store.Select(kGenDriverlet, g.tpl.entry, g.scalars);
  if (!plain.ok()) return std::string("Select: ") + StatusName(plain.status());
  if (*plain != first->tpl) return std::string("Select and SelectCompiled disagree");

  auto src = first->tpl->initial.Eval(g.scalars);
  if (!src.ok() || !*src) return std::string("initial constraint rejects generated scalars");
  if (first->program != nullptr) {
    auto compiled = first->program->EvalInitial(g.scalars);
    if (!compiled.ok() || *compiled != *src) {
      return std::string("EvalInitial disagrees with initial.Eval");
    }
  } else {
    // A null cached program is only legal as a remembered compile failure.
    auto direct = CompileTemplate(first->tpl);
    if (direct.ok()) {
      return std::string("store cached interpreter fallback for a compilable template");
    }
    if (direct.status() != Status::kUnsupported) {
      return std::string("CompileTemplate failed with ") + StatusName(direct.status()) +
             ", want unsupported";
    }
  }
  return std::nullopt;
}

// The clean run succeeds first-attempt and produces the generator's expected
// output bytes.
std::optional<std::string> CheckBaseline(const GeneratedCase& g, ConformanceOutcome* outcome) {
  Obs o = RunOnce(g, ReplayEngine::kCompiled, nullptr);
  if (!Ok(o.load)) return std::string("package load: ") + StatusName(o.load);
  if (o.status != Status::kOk) return std::string("clean run: ") + StatusName(o.status);
  if (o.out != g.expected_out) {
    size_t i = 0;
    while (i < o.out.size() && i < g.expected_out.size() && o.out[i] == g.expected_out[i]) ++i;
    return "output mismatch vs generator model at offset " + Num(i);
  }
  if (o.stats.attempts != 1) return "clean run took " + Num(o.stats.attempts) + " attempts";
  if (o.stats.resets != 1) return "clean run resets: " + Num(o.stats.resets) + ", want 1";
  if (o.stats.events_executed == 0) return std::string("clean run executed no events");
  if (outcome != nullptr) {
    outcome->events_executed = o.stats.events_executed;
    outcome->end_us = o.end_us;
  }
  return std::nullopt;
}

// Runtime integrity measurement (ninth property, ROADMAP item 3): a complete
// run's hash chain equals the template's golden measurement on both engines; a
// failing run's chain is a strict prefix and must NOT claim the golden value.
std::optional<std::string> CheckMeasurement(const GeneratedCase& g, ConformanceOutcome*) {
  const std::string golden = GoldenMeasurementHex(g.tpl);
  Obs interp = RunOnce(g, ReplayEngine::kInterpreter, nullptr);
  Obs compiled = RunOnce(g, ReplayEngine::kCompiled, nullptr);
  if (!interp.meas.valid || !compiled.meas.valid) {
    return std::string("clean run left no measurement record");
  }
  if (interp.meas.Hex() != compiled.meas.Hex()) {
    return "engines measured different chains: " + interp.meas.Hex() + " vs " +
           compiled.meas.Hex();
  }
  if (compiled.status == Status::kOk) {
    if (!compiled.meas.matches_golden || compiled.meas.Hex() != golden) {
      return "successful run's measurement is not the golden hash (got " +
             compiled.meas.Hex() + ", want " + golden + ")";
    }
    if (compiled.stats.measurement != golden) {
      return std::string("ReplayStats.measurement disagrees with golden hash");
    }
  } else if (compiled.meas.matches_golden || compiled.meas.Hex() == golden) {
    return std::string("failed run still claims the golden measurement");
  }
  Obs again = RunOnce(g, ReplayEngine::kCompiled, nullptr);
  if (!again.meas.valid || again.meas.Hex() != compiled.meas.Hex()) {
    return std::string("measurement unstable across identical runs");
  }
  // Under seeded faults a *failing* run must never present the golden chain.
  FaultTargets targets;
  targets.device = kGenDeviceId;
  targets.irq_line = kGenIrqLine;
  targets.dma_via_engine = true;
  FaultPlan plan = MakePresetPlan(FaultPlane::kMmio, g.seed, targets);
  Obs faulted = RunOnce(g, ReplayEngine::kCompiled, &plan);
  if (faulted.status != Status::kOk && faulted.meas.valid &&
      (faulted.meas.matches_golden || faulted.meas.Hex() == golden)) {
    return std::string("faulted failing run still claims the golden measurement");
  }
  return std::nullopt;
}

std::optional<std::string> CheckFaultPlane(const GeneratedCase& g, FaultPlane plane) {
  FaultTargets targets;
  targets.device = kGenDeviceId;
  targets.irq_line = kGenIrqLine;
  targets.dma_via_engine = true;
  FaultPlan plan = MakePresetPlan(plane, g.seed, targets);
  Obs interp = RunOnce(g, ReplayEngine::kInterpreter, &plan);
  Obs compiled = RunOnce(g, ReplayEngine::kCompiled, &plan);
  if (auto d = DiffObs(interp, compiled, /*engine_agnostic=*/true)) {
    return std::string("under ") + FaultPlaneName(plane) + " faults: " + *d;
  }
  return std::nullopt;
}

struct NamedInvariant {
  const char* name;
  InvariantFn fn;
};

const std::vector<NamedInvariant>& Registry() {
  static const std::vector<NamedInvariant>* reg = new std::vector<NamedInvariant>{
      {"engine-parity", CheckEngineParity},
      {"determinism", CheckDeterminism},
      {"serialize-roundtrip", CheckSerializeRoundtrip},
      {"store-coherence", CheckStoreCoherence},
      {"baseline", CheckBaseline},
      {"fault-mmio",
       [](const GeneratedCase& g, ConformanceOutcome*) {
         return CheckFaultPlane(g, FaultPlane::kMmio);
       }},
      {"fault-dma",
       [](const GeneratedCase& g, ConformanceOutcome*) {
         return CheckFaultPlane(g, FaultPlane::kDma);
       }},
      {"fault-irq",
       [](const GeneratedCase& g, ConformanceOutcome*) {
         return CheckFaultPlane(g, FaultPlane::kIrq);
       }},
      {"measurement", CheckMeasurement},
  };
  return *reg;
}

}  // namespace

std::vector<std::string> AllInvariants() {
  std::vector<std::string> names;
  for (const auto& inv : Registry()) names.emplace_back(inv.name);
  return names;
}

std::vector<std::string> ReproInvariants() {
  std::vector<std::string> names;
  for (const auto& inv : Registry()) {
    if (std::string_view(inv.name) != "baseline") names.emplace_back(inv.name);
  }
  return names;
}

ConformanceOutcome RunConformance(const GeneratedCase& g,
                                  const std::vector<std::string>& invariants) {
  ConformanceOutcome outcome;
  for (const std::string& name : invariants) {
    const NamedInvariant* found = nullptr;
    for (const auto& inv : Registry()) {
      if (name == inv.name) {
        found = &inv;
        break;
      }
    }
    if (found == nullptr) {
      outcome.failures.push_back({name, "unknown invariant"});
      continue;
    }
    ++outcome.invariants_run;
    if (auto msg = found->fn(g, &outcome)) {
      outcome.failures.push_back({name, *msg});
    }
  }
  return outcome;
}

ConformanceOutcome RunConformance(const GeneratedCase& g) {
  return RunConformance(g, AllInvariants());
}

// ---------------------------------------------------------------------------
// Symbol closure
// ---------------------------------------------------------------------------

namespace {

bool ExprClosed(const ExprRef& e, const std::set<std::string>& bound) {
  if (e == nullptr) return true;
  std::set<std::string> inputs;
  e->CollectInputs(&inputs);
  for (const auto& s : inputs) {
    if (bound.count(s) == 0) return false;
  }
  return true;
}

bool ConstraintClosed(const Constraint& c, const std::set<std::string>& bound) {
  std::set<std::string> inputs;
  c.CollectInputs(&inputs);
  for (const auto& s : inputs) {
    if (bound.count(s) == 0) return false;
  }
  return true;
}

bool EventsClosed(const std::vector<TemplateEvent>& events, std::set<std::string>* bound) {
  for (const TemplateEvent& ev : events) {
    if (!ExprClosed(ev.addr, *bound) || !ExprClosed(ev.value, *bound) ||
        !ExprClosed(ev.buf_offset, *bound)) {
      return false;
    }
    if (!ev.body.empty()) {
      // A poll that succeeds immediately never runs its body, so body bindings
      // must not leak into the outer scope.
      std::set<std::string> body_bound = *bound;
      if (!EventsClosed(ev.body, &body_bound)) return false;
    }
    // The executor binds before evaluating the event constraint, so the
    // constraint may reference the event's own binding.
    if (!ev.bind.empty()) bound->insert(ev.bind);
    if (!ConstraintClosed(ev.constraint, *bound)) return false;
  }
  return true;
}

}  // namespace

bool SymbolClosureValid(const InteractionTemplate& tpl) {
  std::set<std::string> bound;
  for (const ParamSpec& p : tpl.params) {
    if (!p.is_buffer) bound.insert(p.name);
  }
  if (!ConstraintClosed(tpl.initial, bound)) return false;
  return EventsClosed(tpl.events, &bound);
}

// ---------------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------------

namespace {

// Expression fields of a TemplateEvent the simplification pass rewrites.
ExprRef* EventExprField(TemplateEvent* ev, int field) {
  switch (field) {
    case 0: return &ev->value;
    case 1: return &ev->addr;
    default: return &ev->buf_offset;
  }
}

// Smaller replacement candidates for |e|: its operand subtrees, then the
// trivial constants.
std::vector<ExprRef> SimplerExprs(const ExprRef& e) {
  std::vector<ExprRef> out;
  if (e == nullptr || e->is_const()) return out;
  if (e->lhs() != nullptr) out.push_back(e->lhs());
  if (e->rhs() != nullptr) out.push_back(e->rhs());
  out.push_back(Expr::Const(0));
  out.push_back(Expr::Const(1));
  return out;
}

}  // namespace

Result<ShrinkResult> Shrink(const GeneratedCase& g,
                            const std::vector<std::string>& invariants) {
  ConformanceOutcome base = RunConformance(g, invariants);
  if (base.ok()) return Status::kInvalidArg;

  // Anchor on a self-relative invariant when one failed: "baseline" compares
  // against the generator's expected bytes, which stop being meaningful the
  // moment events are removed.
  std::string anchor = base.failures[0].invariant;
  for (const auto& f : base.failures) {
    if (f.invariant != "baseline") {
      anchor = f.invariant;
      break;
    }
  }
  const std::vector<std::string> anchor_set{anchor};

  ShrinkResult result;
  result.invariant = anchor;
  result.original_events = g.tpl.events.size();

  constexpr int kMaxSteps = 600;
  GeneratedCase cur = g;
  int steps = 0;
  auto still_fails = [&](const GeneratedCase& cand) {
    if (steps >= kMaxSteps) return false;
    ++steps;
    if (!SymbolClosureValid(cand.tpl)) return false;
    return !RunConformance(cand, anchor_set).ok();
  };

  // Pass 1: event-list bisection. Remove halves, then quarters, ... then
  // single events, repeating until a full sweep removes nothing.
  bool progress = true;
  while (progress && steps < kMaxSteps) {
    progress = false;
    for (size_t chunk = std::max<size_t>(cur.tpl.events.size() / 2, 1);; chunk /= 2) {
      size_t i = 0;
      while (i < cur.tpl.events.size() && steps < kMaxSteps) {
        GeneratedCase cand = cur;
        auto& evs = cand.tpl.events;
        size_t end = std::min(i + chunk, evs.size());
        evs.erase(evs.begin() + static_cast<long>(i), evs.begin() + static_cast<long>(end));
        if (still_fails(cand)) {
          cur = std::move(cand);
          progress = true;  // retry the same index against the shorter list
        } else {
          i += chunk;
        }
      }
      if (chunk == 1) break;
    }
  }

  // Pass 2: operand simplification — shrink each event's expressions and
  // constraints toward constants while the anchor invariant keeps failing.
  for (size_t ei = 0; ei < cur.tpl.events.size() && steps < kMaxSteps; ++ei) {
    if (!cur.tpl.events[ei].constraint.empty()) {
      GeneratedCase cand = cur;
      cand.tpl.events[ei].constraint = Constraint();
      if (still_fails(cand)) cur = std::move(cand);
    }
    if (!cur.tpl.events[ei].body.empty()) {
      GeneratedCase cand = cur;
      cand.tpl.events[ei].body.clear();
      if (still_fails(cand)) cur = std::move(cand);
    }
    for (int field = 0; field < 3; ++field) {
      bool changed = true;
      while (changed && steps < kMaxSteps) {
        changed = false;
        ExprRef e = *EventExprField(&cur.tpl.events[ei], field);
        for (const ExprRef& simpler : SimplerExprs(e)) {
          GeneratedCase cand = cur;
          *EventExprField(&cand.tpl.events[ei], field) = simpler;
          if (still_fails(cand)) {
            cur = std::move(cand);
            changed = true;
            break;
          }
        }
      }
    }
    // Constraint atoms that survived wholesale removal: simplify their sides.
    size_t atom_count = cur.tpl.events[ei].constraint.atoms().size();
    for (size_t ai = 0; ai < atom_count && steps < kMaxSteps; ++ai) {
      for (int side = 0; side < 2; ++side) {
        bool changed = true;
        while (changed && steps < kMaxSteps) {
          changed = false;
          const ConstraintAtom& atom = cur.tpl.events[ei].constraint.atoms()[ai];
          ExprRef e = side == 0 ? atom.lhs : atom.rhs;
          for (const ExprRef& simpler : SimplerExprs(e)) {
            GeneratedCase cand = cur;
            Constraint rebuilt;
            const auto& atoms = cand.tpl.events[ei].constraint.atoms();
            for (size_t k = 0; k < atoms.size(); ++k) {
              ConstraintAtom a = atoms[k];
              if (k == ai) {
                (side == 0 ? a.lhs : a.rhs) = simpler;
              }
              rebuilt.AddAtom(std::move(a));
            }
            cand.tpl.events[ei].constraint = std::move(rebuilt);
            if (still_fails(cand)) {
              cur = std::move(cand);
              changed = true;
              break;
            }
          }
        }
      }
    }
  }

  result.reduced = std::move(cur);
  result.steps = steps;
  return result;
}

// ---------------------------------------------------------------------------
// Repro files
// ---------------------------------------------------------------------------

namespace {

constexpr char kReproHeader[] = "driverlet-repro v1";

std::string Hex(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

std::string HexBytes(const std::vector<uint8_t>& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string s;
  s.reserve(bytes.size() * 2);
  for (uint8_t b : bytes) {
    s.push_back(digits[b >> 4]);
    s.push_back(digits[b & 0xf]);
  }
  return s;
}

Result<uint64_t> ParseU64(std::string_view tok) {
  if (tok.empty()) return Status::kCorrupt;
  uint64_t v = 0;
  if (tok.size() > 2 && tok[0] == '0' && (tok[1] == 'x' || tok[1] == 'X')) {
    for (char c : tok.substr(2)) {
      int d;
      if (c >= '0' && c <= '9') d = c - '0';
      else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
      else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
      else return Status::kCorrupt;
      v = (v << 4) | static_cast<uint64_t>(d);
    }
    return v;
  }
  for (char c : tok) {
    if (c < '0' || c > '9') return Status::kCorrupt;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  return v;
}

Result<std::vector<uint8_t>> ParseHexBytes(std::string_view tok) {
  if (tok.size() % 2 != 0) return Status::kCorrupt;
  std::vector<uint8_t> out;
  out.reserve(tok.size() / 2);
  for (size_t i = 0; i < tok.size(); i += 2) {
    auto hi = ParseU64(std::string("0x") + tok[i]);
    auto lo = ParseU64(std::string("0x") + tok[i + 1]);
    if (!hi.ok() || !lo.ok()) return Status::kCorrupt;
    out.push_back(static_cast<uint8_t>((*hi << 4) | *lo));
  }
  return out;
}

std::vector<std::string_view> SplitWs(std::string_view line) {
  std::vector<std::string_view> toks;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    size_t start = i;
    while (i < line.size() && line[i] != ' ') ++i;
    if (i > start) toks.push_back(line.substr(start, i - start));
  }
  return toks;
}

}  // namespace

std::string ReproToString(const GeneratedCase& g, const std::string& invariant) {
  std::string s;
  s += kReproHeader;
  s += '\n';
  s += "seed " + std::to_string(g.seed) + "\n";
  s += "invariant " + invariant + "\n";
  s += "outlen " + std::to_string(g.out_len) + "\n";
  s += "irqdelay " + std::to_string(g.script.irq_delay_us) + "\n";
  for (const auto& [name, value] : g.scalars) {
    s += "scalar " + name + " " + std::to_string(value) + "\n";
  }
  if (!g.payload.empty()) {
    s += "payload " + HexBytes(g.payload) + "\n";
  }
  for (const auto& [off, value] : g.script.initial_regs) {
    s += "reg " + Hex(off) + " " + Hex(value) + "\n";
  }
  for (const auto& [off, queue] : g.script.read_queues) {
    s += "queue " + Hex(off);
    for (uint32_t v : queue) s += " " + Hex(v);
    s += "\n";
  }
  for (const auto& [off, value] : g.script.doorbell_sets) {
    s += "dbset " + Hex(off) + " " + Hex(value) + "\n";
  }
  s += "template\n";
  s += TemplatesToText({g.tpl});
  return s;
}

Result<Repro> ParseRepro(std::string_view text) {
  Repro repro;
  size_t pos = 0;
  bool saw_header = false;
  bool in_template = false;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;

    if (!saw_header) {
      if (line != kReproHeader) return Status::kCorrupt;
      saw_header = true;
      continue;
    }
    if (line == "template") {
      in_template = true;
      break;
    }
    if (line.empty()) continue;

    auto toks = SplitWs(line);
    if (toks.empty()) continue;
    std::string_view key = toks[0];
    if (key == "seed" && toks.size() == 2) {
      DLT_ASSIGN_OR_RETURN(repro.c.seed, ParseU64(toks[1]));
    } else if (key == "invariant" && toks.size() == 2) {
      repro.invariant = std::string(toks[1]);
    } else if (key == "outlen" && toks.size() == 2) {
      uint64_t v;
      DLT_ASSIGN_OR_RETURN(v, ParseU64(toks[1]));
      repro.c.out_len = static_cast<size_t>(v);
    } else if (key == "irqdelay" && toks.size() == 2) {
      DLT_ASSIGN_OR_RETURN(repro.c.script.irq_delay_us, ParseU64(toks[1]));
    } else if (key == "scalar" && toks.size() == 3) {
      uint64_t v;
      DLT_ASSIGN_OR_RETURN(v, ParseU64(toks[2]));
      repro.c.scalars[std::string(toks[1])] = v;
    } else if (key == "payload" && toks.size() == 2) {
      DLT_ASSIGN_OR_RETURN(repro.c.payload, ParseHexBytes(toks[1]));
    } else if (key == "reg" && toks.size() == 3) {
      uint64_t off, v;
      DLT_ASSIGN_OR_RETURN(off, ParseU64(toks[1]));
      DLT_ASSIGN_OR_RETURN(v, ParseU64(toks[2]));
      repro.c.script.initial_regs[off] = static_cast<uint32_t>(v);
    } else if (key == "dbset" && toks.size() == 3) {
      uint64_t off, v;
      DLT_ASSIGN_OR_RETURN(off, ParseU64(toks[1]));
      DLT_ASSIGN_OR_RETURN(v, ParseU64(toks[2]));
      repro.c.script.doorbell_sets[off] = static_cast<uint32_t>(v);
    } else if (key == "queue" && toks.size() >= 2) {
      uint64_t off;
      DLT_ASSIGN_OR_RETURN(off, ParseU64(toks[1]));
      std::vector<uint32_t> q;
      for (size_t i = 2; i < toks.size(); ++i) {
        uint64_t v;
        DLT_ASSIGN_OR_RETURN(v, ParseU64(toks[i]));
        q.push_back(static_cast<uint32_t>(v));
      }
      repro.c.script.read_queues[off] = std::move(q);
    } else {
      return Status::kCorrupt;
    }
  }
  if (!saw_header || !in_template) return Status::kCorrupt;

  auto templates = TemplatesFromText(text.substr(pos));
  if (!templates.ok()) return templates.status();
  if (templates->size() != 1) return Status::kCorrupt;
  repro.c.tpl = std::move((*templates)[0]);
  return repro;
}

Status WriteRepro(const std::string& path, const GeneratedCase& g,
                  const std::string& invariant) {
  std::string body = ReproToString(g, invariant);
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::kIoError;
  size_t written = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return written == body.size() ? Status::kOk : Status::kIoError;
}

Result<Repro> ReadRepro(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::kNotFound;
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  return ParseRepro(text);
}

}  // namespace dlt
