// Coverage-guided boundary fuzzer for the replay service (docs/fuzzing.md).
//
// The unit of fuzzing is a *boundary program*: a serialized list of actions a
// normal-world client can take against the TEE service boundary — session
// open/close interleavings, direct and queued invokes, ring push / doorbell /
// reap orderings, fault-plane arming, attestation requests, and mutated
// sealed-package bytes fed through RegisterDriverlet. Each run executes one
// program against a fresh deployment (Rpi3Testbed + ReplayService hosting the
// sealed package of every registered driverlet class — see
// RegisteredDriverletClasses() in src/workload/deploy_util.h) and asserts the
// boundary invariants that must hold for EVERY program, not just the recorded
// ones:
//
//   allowed-status     every API call returns a status from its contract
//                      (kBadState / kCorrupt never escape the boundary;
//                      kRegisterPackage alone may see kCorrupt and
//                      kPermissionDenied — rejecting tampered bytes and
//                      unmapped devices IS its contract)
//   register-atomic    a failed RegisterDriverlet leaves the template store
//                      exactly as it was: no partially parsed driverlet, no
//                      template-count drift, prior registrations intact
//   ring-order         reaped completion seqs are strictly increasing
//   ring-accounting    pushed >= drained >= reaped, all three monotonic
//   quarantine-sticky  a quarantined session stays quarantined until closed
//   integrity          fault-free programs never record a measurement
//                      mismatch (src/core/integrity.h)
//   attest             every quote verifies and round-trips byte-identically
//   determinism        a program added to the corpus replays to an identical
//                      observable trace
//
// The coverage signal is the process-wide EdgeCoverage map (src/obs/edge.h)
// plus bucketed telemetry counters: a mutant that lights a new (site, log2
// count) feature joins the corpus. Violations are shrunk with the same ddmin
// idiom as the conformance harness (src/check/conformance.h) and written as
// small text .repro files that `driverletc fuzz --repro <file>` re-executes.
#ifndef SRC_CHECK_FUZZ_H_
#define SRC_CHECK_FUZZ_H_

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/soc/status.h"

namespace dlt {

// One action at the service boundary. Operands are interpreted modulo the
// harness's small tables (4 session slots, the registered-class table, 4
// entry variants), so every uint64 triple is a valid program — mutation never
// has to repair anything.
enum class BoundaryOp : uint8_t {
  kOpen = 0,     // a: index into RegisteredDriverletClasses()
  kClose,        // a: session slot
  kInvoke,       // a: slot, b: entry variant, c: argument seed
  kSubmit,       // a: slot, b: entry variant, c: argument seed
  kProcess,      // a: max requests to drain
  kRingPush,     // a: slot, b: entry variant, c: argument seed
  kDoorbell,     // a: slot
  kRingPop,      // a: slot
  kAttest,       // a: slot, c: nonce seed
  kFaultArm,     // a: plane, b: target driverlet class, c: plan seed
  kFaultDisarm,  // no operands
  // Feeds deterministically mutated sealed-package bytes through
  // RegisterDriverlet under the reserved driverlet name "fzz" (no kOpen path
  // can reach it, so registration outcomes never perturb session behaviour).
  // a: mutation salt, b: wire framing (0 v1-text, 1 v1-binary, 2 v2),
  // c: mutation class (c%4: 0 intact seal, 1 post-seal bit flips,
  //    2 truncation, 3 payload mutated pre-seal and re-signed) + seed.
  kRegisterPackage,
};

struct BoundaryAction {
  BoundaryOp op = BoundaryOp::kOpen;
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;
};

struct BoundaryProgram {
  std::vector<BoundaryAction> actions;
};

// Text codec ("driverlet-boundary v1" header, one action per line) — the
// format of corpus entries under tests/corpus/ and the program section of
// repro files. ToString(Parse(s)) is a fixpoint.
std::string BoundaryProgramToString(const BoundaryProgram& p);
Result<BoundaryProgram> ParseBoundaryProgram(std::string_view text);

// Outcome of executing one boundary program on a fresh deployment.
struct BoundaryRunResult {
  std::string invariant;  // violated invariant name; empty when all held
  std::string detail;     // human-readable violation description
  std::string trace;      // canonical observable trace (determinism oracle)
  std::set<uint64_t> features;  // coverage features this run lit
  size_t actions_run = 0;

  bool ok() const { return invariant.empty(); }
};

// Executes |p| against a fresh testbed + service and checks every boundary
// invariant. Deterministic: equal programs produce equal results.
BoundaryRunResult RunBoundaryProgram(const BoundaryProgram& p);

// Built-in seed corpus: one regression entry per driverlet class exercising
// the open → invoke → ring cycle → attest → close lifecycle.
std::vector<BoundaryProgram> BuiltinBoundaryCorpus();

struct BoundaryShrinkResult {
  BoundaryProgram reduced;
  int steps = 0;
  size_t original_actions = 0;
};

// ddmin over the action list: removes chunks while |p| keeps violating
// |invariant|. kInvalidArg when |p| does not violate it.
Result<BoundaryShrinkResult> ShrinkBoundary(const BoundaryProgram& p,
                                            const std::string& invariant);

// Repro artifacts ("driverlet-boundary-repro v1"): invariant + detail + the
// embedded program text.
struct BoundaryRepro {
  BoundaryProgram program;
  std::string invariant;
  std::string detail;
};

std::string BoundaryReproToString(const BoundaryProgram& p, const std::string& invariant,
                                  const std::string& detail);
Result<BoundaryRepro> ParseBoundaryRepro(std::string_view text);
Status WriteBoundaryRepro(const std::string& path, const BoundaryProgram& p,
                          const std::string& invariant, const std::string& detail);
Result<BoundaryRepro> ReadBoundaryRepro(const std::string& path);

struct BoundaryFinding {
  std::string invariant;
  std::string detail;
  BoundaryProgram program;   // the mutant that tripped the invariant
  BoundaryProgram shrunk;    // ddmin-minimized reproducer
  int shrink_steps = 0;
  std::string repro_path;    // written artifact (empty when repro_dir unset)
};

struct BoundaryFuzzConfig {
  uint64_t seed = 1;
  // Budget: exactly |iterations| mutants when > 0 (deterministic, the bench
  // mode), else |seconds| of wall clock (the CLI mode).
  int iterations = 0;
  double seconds = 5.0;
  size_t max_actions = 48;        // programs are truncated to this length
  int max_findings = 4;           // stop fuzzing after this many findings
  // Arms the planted ring wrap-around reap bug (SetRingWrapQuirkForTest) for
  // the whole campaign — the regression guard that proves the fuzzer can
  // still find and shrink a real ordering violation.
  bool plant_ring_quirk = false;
  std::string repro_dir;          // write shrunk .repro files here if set
  std::vector<BoundaryProgram> extra_corpus;  // e.g. tests/corpus/ entries
};

struct BoundaryFuzzStats {
  int runs = 0;                   // mutants executed (corpus seeding excluded)
  size_t corpus_size = 0;
  size_t features = 0;            // distinct coverage features at the end
  // |features| after seeding and then after every 16 mutant runs — the
  // monotone coverage curve BENCH_fuzz.json reports.
  std::vector<size_t> coverage_curve;
  std::vector<BoundaryFinding> findings;
};

// The fuzz loop: seeds the corpus (built-ins + extra_corpus), then mutates,
// runs, keeps feature-novel programs (after a determinism re-run) and shrinks
// every violation.
BoundaryFuzzStats RunBoundaryFuzz(const BoundaryFuzzConfig& cfg);

}  // namespace dlt

#endif  // SRC_CHECK_FUZZ_H_
