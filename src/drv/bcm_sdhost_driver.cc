#include "src/drv/bcm_sdhost_driver.h"

#include "src/dev/mmc/mmc_controller.h"
#include "src/soc/dma_engine.h"
#include "src/soc/log.h"

namespace dlt {

namespace {
constexpr uint64_t kCmdTimeoutUs = 200'000;
constexpr uint64_t kIrqTimeoutUs = 1'000'000;
constexpr uint64_t kPollIntervalUs = 10;
constexpr uint32_t kPageBytes = 4096;
constexpr uint32_t kCbBytes = 32;
// The SoC DMA engine cannot move the last words of a read (paper §6.1.3); the
// driver drains the final 3 words through SDDATA.
constexpr uint32_t kReadTailBytes = 12;
}  // namespace

Status BcmSdhostDriver::SendCommand(const TValue& cmd_word, const TValue& arg, TValue* resp_out) {
  io_->RegWrite32(cfg_.mmc_device, kSdArg, arg, DLT_HERE);
  io_->RegWrite32(cfg_.mmc_device, kSdCmd, TValue(kSdCmdNewFlag) | cmd_word, DLT_HERE);
  // Wait for the controller to drop the NEW flag (command finished).
  Status s = io_->PollReg32(cfg_.mmc_device, kSdCmd, kSdCmdNewFlag, 0, /*negate=*/false,
                            kCmdTimeoutUs, kPollIntervalUs, DLT_HERE);
  if (!Ok(s)) {
    return s;
  }
  TValue cmd_after = io_->RegRead32(cfg_.mmc_device, kSdCmd, DLT_HERE);
  if (!io_->Branch(cmd_after & TValue(kSdCmdFailFlag), Cmp::kEq, TValue(0), DLT_HERE)) {
    return Status::kIoError;
  }
  TValue resp = io_->RegRead32(cfg_.mmc_device, kSdRsp0, DLT_HERE);
  if (resp_out != nullptr) {
    *resp_out = resp;
  }
  return Status::kOk;
}

Status BcmSdhostDriver::ConfigureForRequest(bool is_read, const TValue& blkcnt) {
  io_->RegWrite32(cfg_.mmc_device, kSdVdd, TValue(1), DLT_HERE);
  io_->RegWrite32(cfg_.mmc_device, kSdTout, TValue(0xf00000), DLT_HERE);
  io_->RegWrite32(cfg_.mmc_device, kSdCdiv, TValue(0x148), DLT_HERE);
  uint32_t irpt = kSdHcfgWideIntBus | (is_read ? kSdHcfgBlockIrptEn : kSdHcfgBusyIrptEn);
  io_->RegWrite32(cfg_.mmc_device, kSdHcfg, TValue(irpt), DLT_HERE);
  io_->RegWrite32(cfg_.mmc_device, kSdHbct, TValue(512), DLT_HERE);
  io_->RegWrite32(cfg_.mmc_device, kSdHblc, blkcnt, DLT_HERE);
  // The FSM must be idle with an empty FIFO before a new job (residue state
  // left by prior requests is a divergence source, paper §3.3 cause 1).
  TValue edm = io_->RegRead32(cfg_.mmc_device, kSdEdm, DLT_HERE);
  if (!io_->Branch(edm & TValue(0xf), Cmp::kEq, TValue(kSdEdmStateIdle), DLT_HERE)) {
    return Status::kBadState;
  }
  return Status::kOk;
}

Status BcmSdhostDriver::PlanDma(const TValue& total_bytes, bool shorten_last_by_12,
                                DmaPlan* plan) {
  TValue consumed(0);
  while (true) {
    TValue page = io_->DmaAlloc(TValue(kPageBytes), DLT_HERE);
    if (page.value() == 0) {
      return Status::kNoMemory;
    }
    plan->pages.push_back(page);
    if (io_->Branch(total_bytes - consumed, Cmp::kGt, TValue(kPageBytes), DLT_HERE)) {
      plan->lens.push_back(TValue(kPageBytes));
      consumed = consumed + TValue(kPageBytes);
      continue;
    }
    plan->lens.push_back(total_bytes - consumed);
    break;
  }
  if (shorten_last_by_12) {
    plan->lens.back() = plan->lens.back() - TValue(kReadTailBytes);
  }
  plan->cb_region =
      io_->DmaAlloc(TValue(static_cast<uint64_t>(plan->pages.size()) * kCbBytes), DLT_HERE);
  if (plan->cb_region.value() == 0) {
    return Status::kNoMemory;
  }
  return Status::kOk;
}

Status BcmSdhostDriver::RunDma(const DmaPlan& plan, bool to_device) {
  size_t n = plan.pages.size();
  for (size_t i = 0; i < n; ++i) {
    TValue cb = plan.cb_region + TValue(static_cast<uint64_t>(i) * kCbBytes);
    uint32_t ti = (i + 1 == n) ? kDmaTiIntEn : 0;
    if (to_device) {
      ti |= kDmaTiSrcInc | kDmaTiDestDreq;
      io_->ShmWrite32(cb + TValue(0), TValue(ti), DLT_HERE);
      io_->ShmWrite32(cb + TValue(4), plan.pages[i], DLT_HERE);          // source_ad
      io_->ShmWrite32(cb + TValue(8), TValue(cfg_.data_port), DLT_HERE);  // dest_ad
    } else {
      ti |= kDmaTiSrcDreq | kDmaTiDestInc;
      io_->ShmWrite32(cb + TValue(0), TValue(ti), DLT_HERE);
      io_->ShmWrite32(cb + TValue(4), TValue(cfg_.data_port), DLT_HERE);  // source_ad
      io_->ShmWrite32(cb + TValue(8), plan.pages[i], DLT_HERE);           // dest_ad
    }
    io_->ShmWrite32(cb + TValue(12), plan.lens[i], DLT_HERE);  // txfr_len
    TValue next = (i + 1 == n)
                      ? TValue(0)
                      : plan.cb_region + TValue(static_cast<uint64_t>(i + 1) * kCbBytes);
    io_->ShmWrite32(cb + TValue(20), next, DLT_HERE);  // nextconbk
  }
  uint64_t ch_base = static_cast<uint64_t>(cfg_.dma_channel) * 0x100;
  io_->RegWrite32(cfg_.dma_device, ch_base + kDmaConblkAd, plan.cb_region, DLT_HERE);
  io_->RegWrite32(cfg_.dma_device, ch_base + kDmaCs,
                  TValue(kDmaCsActive | kDmaCsEnd | kDmaCsInt), DLT_HERE);
  Status s = io_->WaitForIrq(cfg_.dma_irq, kIrqTimeoutUs, DLT_HERE);
  if (!Ok(s)) {
    return s;
  }
  TValue cs = io_->RegRead32(cfg_.dma_device, ch_base + kDmaCs, DLT_HERE);
  if (!io_->Branch(cs & TValue(kDmaCsEnd), Cmp::kEq, TValue(kDmaCsEnd), DLT_HERE)) {
    return Status::kIoError;
  }
  if (!io_->Branch(cs & TValue(kDmaCsError), Cmp::kEq, TValue(0), DLT_HERE)) {
    return Status::kIoError;
  }
  io_->RegWrite32(cfg_.dma_device, ch_base + kDmaCs, TValue(kDmaCsEnd | kDmaCsInt), DLT_HERE);
  return Status::kOk;
}

Status BcmSdhostDriver::Transfer(const TValue& rw, const TValue& blkcnt, const TValue& blkid,
                                 const TValue& flag, uint8_t* buf, size_t buf_len) {
  ++transfers_;
  // Input validation: these branches become the template's initial constraints.
  if (!io_->Branch(blkid & TValue(0x7), Cmp::kEq, TValue(0), DLT_HERE)) {
    return Status::kInvalidArg;  // the block layer guarantees 8-sector alignment
  }
  bool is_read = io_->Branch(rw, Cmp::kEq, TValue(kMmcRwRead), DLT_HERE);
  if (!is_read && !io_->Branch(rw, Cmp::kEq, TValue(kMmcRwWrite), DLT_HERE)) {
    return Status::kInvalidArg;
  }
  if (!io_->Branch(blkcnt, Cmp::kGt, TValue(0), DLT_HERE) ||
      !io_->Branch(blkcnt, Cmp::kLe, TValue(0x400), DLT_HERE)) {
    return Status::kInvalidArg;
  }
  if (!io_->Branch(blkid, Cmp::kLe, TValue(cfg_.max_sectors - 1), DLT_HERE)) {
    return Status::kOutOfRange;
  }
  TValue total = blkcnt * TValue(512);
  if (buf_len < total.value()) {
    return Status::kInvalidArg;
  }

  DLT_RETURN_IF_ERROR(ConfigureForRequest(is_read, blkcnt));

  bool direct = io_->Branch(flag & TValue(kMmcFlagDirect), Cmp::kEq, TValue(kMmcFlagDirect),
                            DLT_HERE);
  bool multi = !io_->Branch(blkcnt, Cmp::kEq, TValue(1), DLT_HERE);
  TValue arg = blkid & (~TValue(0x7));
  Status s = Status::kOk;

  if (is_read) {
    // CMD23 (SET_BLOCK_COUNT) is used on the read path but not the write path
    // (paper §6.1.3).
    TValue resp;
    s = SendCommand(TValue(23), blkcnt, &resp);
    if (!Ok(s)) {
      return RecoverFromError(DLT_HERE);
    }
    TValue cmd_word = (rw << TValue(6)) | TValue(multi ? 18 : 17);
    s = SendCommand(cmd_word, arg, &resp);
    if (!Ok(s) || !io_->Branch(resp & TValue(kSdStatusIllegalCmd), Cmp::kEq, TValue(0), DLT_HERE)) {
      return RecoverFromError(DLT_HERE);
    }
    s = io_->WaitForIrq(cfg_.mmc_irq, kIrqTimeoutUs, DLT_HERE);
    if (!Ok(s)) {
      return RecoverFromError(DLT_HERE);
    }
    TValue hsts = io_->RegRead32(cfg_.mmc_device, kSdHsts, DLT_HERE);
    if (!io_->Branch(hsts & TValue(kSdHstsErrorMask), Cmp::kEq, TValue(0), DLT_HERE) ||
        !io_->Branch(hsts & TValue(kSdHstsBlockIrpt), Cmp::kEq, TValue(kSdHstsBlockIrpt),
                     DLT_HERE)) {
      return RecoverFromError(DLT_HERE);
    }
    io_->RegWrite32(cfg_.mmc_device, kSdHsts, TValue(kSdHstsBlockIrpt | kSdHstsDataFlag),
                    DLT_HERE);

    if (direct) {
      // O_DIRECT: shift individual words through SDDATA (paper's path (1)).
      io_->PioIn(cfg_.mmc_device, kSdData, buf, TValue(0), total, DLT_HERE);
    } else {
      DmaPlan plan;
      DLT_RETURN_IF_ERROR(PlanDma(total, /*shorten_last_by_12=*/true, &plan));
      s = RunDma(plan, /*to_device=*/false);
      if (!Ok(s)) {
        return RecoverFromError(DLT_HERE);
      }
      // SoC quirk: the DMA engine left the last 3 words in the FIFO; wait for
      // them and drain via SDDATA.
      s = io_->PollReg32(cfg_.mmc_device, kSdEdm, kSdEdmFifoMask << kSdEdmFifoShift,
                         3 << kSdEdmFifoShift, /*negate=*/false, kCmdTimeoutUs, kPollIntervalUs,
                         DLT_HERE);
      if (!Ok(s)) {
        return RecoverFromError(DLT_HERE);
      }
      io_->PioIn(cfg_.mmc_device, kSdData, buf, total - TValue(kReadTailBytes),
                 TValue(kReadTailBytes), DLT_HERE);
      // Copy DMA pages out to the caller's buffer.
      TValue off(0);
      for (size_t i = 0; i < plan.pages.size(); ++i) {
        io_->CopyFromDma(buf, off, plan.pages[i], plan.lens[i], DLT_HERE);
        off = off + plan.lens[i];
      }
    }
    if (multi) {
      s = SendCommand(TValue(12), TValue(0), nullptr);
      if (!Ok(s)) {
        return RecoverFromError(DLT_HERE);
      }
    }
  } else {
    if (direct) {
      TValue cmd_word = (rw << TValue(6)) | TValue(multi ? 25 : 24);
      TValue resp;
      s = SendCommand(cmd_word, arg, &resp);
      if (!Ok(s)) {
        return RecoverFromError(DLT_HERE);
      }
      io_->PioOut(cfg_.mmc_device, kSdData, buf, TValue(0), total, DLT_HERE);
    } else {
      DmaPlan plan;
      DLT_RETURN_IF_ERROR(PlanDma(total, /*shorten_last_by_12=*/false, &plan));
      TValue off(0);
      for (size_t i = 0; i < plan.pages.size(); ++i) {
        io_->CopyToDma(plan.pages[i], buf, off, plan.lens[i], DLT_HERE);
        off = off + plan.lens[i];
      }
      // Push the data into the controller FIFO, then issue the write command.
      s = RunDma(plan, /*to_device=*/true);
      if (!Ok(s)) {
        return RecoverFromError(DLT_HERE);
      }
      TValue cmd_word = (rw << TValue(6)) | TValue(multi ? 25 : 24);
      TValue resp;
      s = SendCommand(cmd_word, arg, &resp);
      if (!Ok(s) ||
          !io_->Branch(resp & TValue(kSdStatusIllegalCmd), Cmp::kEq, TValue(0), DLT_HERE)) {
        return RecoverFromError(DLT_HERE);
      }
    }
    // Wait for the card to finish programming (busy release).
    s = io_->WaitForIrq(cfg_.mmc_irq, kIrqTimeoutUs, DLT_HERE);
    if (!Ok(s)) {
      return RecoverFromError(DLT_HERE);
    }
    TValue hsts = io_->RegRead32(cfg_.mmc_device, kSdHsts, DLT_HERE);
    if (!io_->Branch(hsts & TValue(kSdHstsErrorMask), Cmp::kEq, TValue(0), DLT_HERE) ||
        !io_->Branch(hsts & TValue(kSdHstsBusyIrpt), Cmp::kEq, TValue(kSdHstsBusyIrpt),
                     DLT_HERE)) {
      return RecoverFromError(DLT_HERE);
    }
    io_->RegWrite32(cfg_.mmc_device, kSdHsts, TValue(kSdHstsBusyIrpt), DLT_HERE);
    if (multi) {
      s = SendCommand(TValue(12), TValue(0), nullptr);
      if (!Ok(s)) {
        return RecoverFromError(DLT_HERE);
      }
    }
  }

  // Final sanity: the controller FSM must be back to idle with a drained FIFO.
  TValue edm = io_->RegRead32(cfg_.mmc_device, kSdEdm, DLT_HERE);
  if (!io_->Branch(edm & TValue(0xf), Cmp::kEq, TValue(kSdEdmStateIdle), DLT_HERE)) {
    return RecoverFromError(DLT_HERE);
  }
  io_->DmaReleaseAll(DLT_HERE);
  return Status::kOk;
}

Status BcmSdhostDriver::RecoverFromError(SourceLoc loc) {
  DLT_LOG(kInfo) << "mmc driver error recovery from " << loc.file << ":" << loc.line;
  // Error state machine: power-cycle the bus interface and clear stale status,
  // "so that the driver can recover from runtime errors" (paper §2.2).
  io_->RegWrite32(cfg_.mmc_device, kSdVdd, TValue(0), DLT_HERE);
  io_->DelayUs(100, DLT_HERE);
  io_->RegWrite32(cfg_.mmc_device, kSdVdd, TValue(1), DLT_HERE);
  io_->RegWrite32(cfg_.mmc_device, kSdHsts, TValue(0xffff), DLT_HERE);
  io_->DmaReleaseAll(DLT_HERE);
  return Status::kIoError;
}

Status BcmSdhostDriver::Probe() {
  io_->RegWrite32(cfg_.mmc_device, kSdVdd, TValue(1), DLT_HERE);
  io_->DelayUs(1000, DLT_HERE);
  io_->RegWrite32(cfg_.mmc_device, kSdCdiv, TValue(0x3e8), DLT_HERE);  // identification clock
  TValue resp;
  DLT_RETURN_IF_ERROR(SendCommand(TValue(0), TValue(0), nullptr));  // GO_IDLE
  DLT_RETURN_IF_ERROR(SendCommand(TValue(8), TValue(0x1aa), &resp));
  if ((resp.value() & 0xfff) != 0x1aa) {
    return Status::kIoError;
  }
  // ACMD41 loop until the card reports power-up.
  for (int i = 0; i < 10; ++i) {
    DLT_RETURN_IF_ERROR(SendCommand(TValue(55), TValue(0), nullptr));
    DLT_RETURN_IF_ERROR(SendCommand(TValue(41), TValue(0x40ff8000), &resp));
    if (resp.value() & 0x80000000) {
      break;
    }
    io_->DelayUs(1000, DLT_HERE);
  }
  if (!(resp.value() & 0x80000000)) {
    return Status::kTimeout;
  }
  DLT_RETURN_IF_ERROR(SendCommand(TValue(2), TValue(0), nullptr));  // ALL_SEND_CID
  DLT_RETURN_IF_ERROR(SendCommand(TValue(3), TValue(0), &resp));    // SEND_RELATIVE_ADDR
  uint32_t rca = static_cast<uint32_t>(resp.value()) & 0xffff0000;
  DLT_RETURN_IF_ERROR(SendCommand(TValue(7), TValue(rca), nullptr));    // SELECT
  DLT_RETURN_IF_ERROR(SendCommand(TValue(16), TValue(512), nullptr));   // SET_BLOCKLEN
  io_->RegWrite32(cfg_.mmc_device, kSdCdiv, TValue(0x148), DLT_HERE);   // full-speed clock
  return Status::kOk;
}

void BcmSdhostDriver::MaybeTune() {
  uint64_t now = io_->NowUs();
  if (now - last_tune_us_ < 1'000'000) {
    return;
  }
  last_tune_us_ = now;
  // Read bus statistics and retune the clock divisor (paper §2.2: the full
  // driver "tunes bus parameters periodically, by default every second").
  TValue edm = io_->RegRead32(cfg_.mmc_device, kSdEdm, DLT_HERE);
  uint32_t fifo = (edm.value32() >> kSdEdmFifoShift) & kSdEdmFifoMask;
  uint32_t cdiv = fifo > 512 ? 0x150 : 0x148;
  io_->RegWrite32(cfg_.mmc_device, kSdCdiv, TValue(cdiv), DLT_HERE);
}

Status BcmSdhostDriver::ReadBlocks(uint64_t blkid, uint32_t blkcnt, uint8_t* buf) {
  MaybeTune();
  io_->DelayUs(14, DLT_HERE);  // driver CPU time per request
  return Transfer(TValue(kMmcRwRead), TValue(blkcnt), TValue(blkid), TValue(0), buf,
                  static_cast<size_t>(blkcnt) * 512);
}

Status BcmSdhostDriver::WriteBlocks(uint64_t blkid, uint32_t blkcnt, const uint8_t* buf) {
  MaybeTune();
  io_->DelayUs(14, DLT_HERE);
  return Transfer(TValue(kMmcRwWrite), TValue(blkcnt), TValue(blkid), TValue(0),
                  const_cast<uint8_t*>(buf), static_cast<size_t>(blkcnt) * 512);
}

}  // namespace dlt
