#include "src/drv/touch_driver.h"

#include "src/dev/display/touch_controller.h"

namespace dlt {

Status TouchDriver::ReadEvent(uint8_t* evt_out, uint64_t timeout_us) {
  TValue ctrl = io_->RegRead32(cfg_.touch_device, kTouchCtrl, DLT_HERE);
  if (!io_->Branch(ctrl & TValue(kTouchCtrlEnable), Cmp::kEq, TValue(kTouchCtrlEnable),
                   DLT_HERE)) {
    return Status::kBadState;
  }
  // FIFO occupancy bookkeeping: a statistic input (varies with user timing),
  // never branched on.
  (void)io_->RegRead32(cfg_.touch_device, kTouchFifoLvl, DLT_HERE);

  DLT_RETURN_IF_ERROR(io_->WaitForIrq(cfg_.touch_irq, timeout_us, DLT_HERE));
  TValue status = io_->RegRead32(cfg_.touch_device, kTouchStatus, DLT_HERE);
  if (!io_->Branch(status & TValue(kTouchStatusPending), Cmp::kEq, TValue(kTouchStatusPending),
                   DLT_HERE)) {
    return Status::kIoError;
  }
  // The sample itself is IO data, not device state: deliver via the data plane.
  io_->PioIn(cfg_.touch_device, kTouchData, evt_out, TValue(0), TValue(4), DLT_HERE);
  io_->RegWrite32(cfg_.touch_device, kTouchStatus, TValue(kTouchStatusPending), DLT_HERE);
  return Status::kOk;
}

}  // namespace dlt
