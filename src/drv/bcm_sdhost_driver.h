// Gold MMC driver (bcm2835-sdhost style): the full-featured driver the record
// campaign exercises and the native baseline runs. Implements card init and
// enumeration, per-request controller configuration, CMD23 on the read path,
// DMA via the system engine's control-block chains (one 4 KB page per 8 sectors,
// paper Fig. 4), the SoC quirk of draining the last 3 words of a read via SDDATA
// (§6.1.3), an O_DIRECT PIO path, periodic bus tuning and error recovery.
//
// All device/env/program traffic goes through DriverIo; request parameters are
// TValues so the recorder's taint tracking and path conditions see everything.
#ifndef SRC_DRV_BCM_SDHOST_DRIVER_H_
#define SRC_DRV_BCM_SDHOST_DRIVER_H_

#include "src/core/driver_io.h"
#include "src/kern/block_layer.h"

namespace dlt {

// flag bit: O_DIRECT selects the PIO (non-DMA) data path.
inline constexpr uint64_t kMmcFlagDirect = 0x1;

// The paper's replay entry: replay_mmc(rw, blkcnt, blkid, flag, buf).
inline constexpr uint64_t kMmcRwRead = 0x1;
inline constexpr uint64_t kMmcRwWrite = 0x10;

class BcmSdhostDriver : public RawBlockDriver {
 public:
  struct Config {
    uint16_t mmc_device = 0;    // machine device id of the MMC controller
    uint16_t dma_device = 0;    // machine device id of the system DMA engine
    int mmc_irq = 0;
    int dma_channel = 15;       // the paper reserves DMA channel 15 (§6.1.2)
    int dma_irq = 0;            // irq line of that channel
    PhysAddr data_port = 0;     // bus address of SDDATA (DREQ target)
    uint64_t max_sectors = 0;   // medium capacity, from enumeration
    uint64_t sched_per_page_us = 35;  // kernel per-segment (4 KB) submission cost
  };

  BcmSdhostDriver(DriverIo* io, const Config& config) : io_(io), cfg_(config) {}

  // Full power-on initialization and card enumeration (native-only path; the
  // record campaign starts from the post-init clean state).
  Status Probe();

  // The recordable transfer entry. |buf| must hold blkcnt*512 bytes.
  Status Transfer(const TValue& rw, const TValue& blkcnt, const TValue& blkid, const TValue& flag,
                  uint8_t* buf, size_t buf_len);

  // RawBlockDriver (native block-layer plumbing). Runs periodic bus tuning.
  Status ReadBlocks(uint64_t blkid, uint32_t blkcnt, uint8_t* buf) override;
  Status WriteBlocks(uint64_t blkid, uint32_t blkcnt, const uint8_t* buf) override;
  uint32_t MaxBlocksPerRequest() const override { return 256; }
  uint64_t PerPageSchedulingUs() const override { return cfg_.sched_per_page_us; }

  // Periodic bus parameter tuning the full driver performs (~1 Hz, paper §2.2);
  // intentionally NOT part of the recordable entry.
  void MaybeTune();

  uint64_t transfers() const { return transfers_; }

 private:
  Status SendCommand(const TValue& cmd_word, const TValue& arg, TValue* resp_out);
  Status ConfigureForRequest(bool is_read, const TValue& blkcnt);
  // Builds the control-block chain; returns the CB region and per-page info.
  struct DmaPlan {
    std::vector<TValue> pages;
    std::vector<TValue> lens;  // bytes of IO data in each page
    TValue cb_region;
  };
  Status PlanDma(const TValue& total_bytes, bool shorten_last_by_12, DmaPlan* plan);
  Status RunDma(const DmaPlan& plan, bool to_device);
  Status RecoverFromError(SourceLoc loc);

  DriverIo* io_;
  Config cfg_;
  uint64_t last_tune_us_ = 0;
  uint64_t transfers_ = 0;
};

}  // namespace dlt

#endif  // SRC_DRV_BCM_SDHOST_DRIVER_H_
