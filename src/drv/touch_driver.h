// Gold touch-input driver: waits for a press sample and delivers the packed
// (x, y, pressed) word to the caller. Recordable entry: replay_touch(evt).
#ifndef SRC_DRV_TOUCH_DRIVER_H_
#define SRC_DRV_TOUCH_DRIVER_H_

#include "src/core/driver_io.h"

namespace dlt {

class TouchDriver {
 public:
  struct Config {
    uint16_t touch_device = 0;
    int touch_irq = 0;
  };

  TouchDriver(DriverIo* io, const Config& config) : io_(io), cfg_(config) {}

  // Blocks (up to |timeout_us|) for the next sample; writes the 4-byte packed
  // sample into |evt_out|.
  Status ReadEvent(uint8_t* evt_out, uint64_t timeout_us = 5'000'000);

 private:
  DriverIo* io_;
  Config cfg_;
};

}  // namespace dlt

#endif  // SRC_DRV_TOUCH_DRIVER_H_
