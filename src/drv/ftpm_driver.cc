#include "src/drv/ftpm_driver.h"

#include "src/dev/ftpm/ftpm_device.h"

namespace dlt {

Status FtpmDriver::Probe() {
  TValue ver = io_->RegRead32(cfg_.ftpm_device, kFtpmVer, DLT_HERE);
  if (!io_->Branch(ver, Cmp::kEq, TValue(kFtpmVersion), DLT_HERE)) {
    return Status::kIoError;
  }
  return Status::kOk;
}

Status FtpmDriver::Execute(const TValue& ord, const TValue& arg, const uint8_t* req,
                           uint8_t* rsp_out, uint64_t timeout_us) {
  TValue ctrl = io_->RegRead32(cfg_.ftpm_device, kFtpmCtrl, DLT_HERE);
  if (!io_->Branch(ctrl & TValue(kFtpmCtrlEnable), Cmp::kEq, TValue(kFtpmCtrlEnable), DLT_HERE)) {
    return Status::kBadState;
  }
  TValue status = io_->RegRead32(cfg_.ftpm_device, kFtpmStatus, DLT_HERE);
  if (!io_->Branch(status & TValue(kFtpmStatusBusy), Cmp::kEq, TValue(0), DLT_HERE)) {
    return Status::kBadState;
  }

  // Each ordinal is its own transition path; the request/response lengths are
  // symbolic functions of (ord, arg) — the branches below become the
  // template's initial constraints, and GetRandom's response length stays a
  // variable-length slot (the shape that distinguishes this class).
  TValue req_len(0);
  TValue rsp_len(0);
  bool has_payload = false;
  if (io_->Branch(ord, Cmp::kEq, TValue(kFtpmOrdGetRandom), DLT_HERE)) {
    if (!io_->Branch(arg, Cmp::kGt, TValue(0), DLT_HERE) ||
        !io_->Branch(arg, Cmp::kLe, TValue(kFtpmMaxRandom), DLT_HERE)) {
      return Status::kInvalidArg;
    }
    // The data FIFO is word-wide: lengths must be 4-byte multiples.
    if (!io_->Branch(arg & TValue(0x3), Cmp::kEq, TValue(0), DLT_HERE)) {
      return Status::kInvalidArg;
    }
    rsp_len = arg;
  } else if (io_->Branch(ord, Cmp::kEq, TValue(kFtpmOrdPcrExtend), DLT_HERE)) {
    if (!io_->Branch(arg, Cmp::kLt, TValue(kFtpmPcrCount), DLT_HERE)) {
      return Status::kInvalidArg;
    }
    req_len = TValue(kFtpmPcrBytes);
    rsp_len = TValue(4);
    has_payload = true;
  } else if (io_->Branch(ord, Cmp::kEq, TValue(kFtpmOrdPcrRead), DLT_HERE)) {
    if (!io_->Branch(arg, Cmp::kLt, TValue(kFtpmPcrCount), DLT_HERE)) {
      return Status::kInvalidArg;
    }
    rsp_len = TValue(kFtpmPcrBytes);
  } else if (io_->Branch(ord, Cmp::kEq, TValue(kFtpmOrdQuote), DLT_HERE)) {
    req_len = TValue(kFtpmNonceBytes);
    rsp_len = TValue(kFtpmNonceBytes + kFtpmPcrBytes);
    has_payload = true;
  } else {
    return Status::kInvalidArg;
  }

  io_->RegWrite32(cfg_.ftpm_device, kFtpmOrd, ord, DLT_HERE);
  io_->RegWrite32(cfg_.ftpm_device, kFtpmArg, arg, DLT_HERE);
  io_->RegWrite32(cfg_.ftpm_device, kFtpmReqLen, req_len, DLT_HERE);
  if (has_payload) {
    io_->PioOut(cfg_.ftpm_device, kFtpmData, req, TValue(0), req_len, DLT_HERE);
  }
  io_->RegWrite32(cfg_.ftpm_device, kFtpmGo, TValue(1), DLT_HERE);

  DLT_RETURN_IF_ERROR(io_->WaitForIrq(cfg_.ftpm_irq, timeout_us, DLT_HERE));

  status = io_->RegRead32(cfg_.ftpm_device, kFtpmStatus, DLT_HERE);
  if (!io_->Branch(status & TValue(kFtpmStatusError), Cmp::kEq, TValue(0), DLT_HERE)) {
    io_->RegWrite32(cfg_.ftpm_device, kFtpmStatus, TValue(kFtpmStatusError), DLT_HERE);
    return Status::kIoError;
  }
  if (!io_->Branch(status & TValue(kFtpmStatusReady), Cmp::kEq, TValue(kFtpmStatusReady),
                   DLT_HERE)) {
    return Status::kIoError;
  }
  // Response-length bookkeeping: a statistic input (the driver already knows
  // the length from the ordinal), never branched on.
  (void)io_->RegRead32(cfg_.ftpm_device, kFtpmRspLen, DLT_HERE);
  io_->PioIn(cfg_.ftpm_device, kFtpmData, rsp_out, TValue(0), rsp_len, DLT_HERE);
  io_->RegWrite32(cfg_.ftpm_device, kFtpmStatus, TValue(kFtpmStatusReady), DLT_HERE);
  return Status::kOk;
}

}  // namespace dlt
