// Gold camera driver over VCHIQ/MMAL: allocates and initializes the slot-based
// message queue, hands it to VC4 via MBOX_WRITE, performs the connect/open
// handshake, configures the camera component, and captures frames through the
// buffer-done + bulk-receive protocol (paper §6.3). Supports two capture modes:
//   serial    — one outstanding request, per-message IRQ waits; this is the mode
//               record campaigns use ("disabling irq coalescing, concurrent
//               jobs", §3.2) and hence what driverlets replay;
//   pipelined — the native streaming path: capture requests stay ahead of
//               completions and interrupts coalesce (§7.3.2 Camera).
#ifndef SRC_DRV_VCHIQ_CAMERA_DRIVER_H_
#define SRC_DRV_VCHIQ_CAMERA_DRIVER_H_

#include "src/core/driver_io.h"
#include "src/dev/vc4/vchiq_proto.h"

namespace dlt {

class VchiqCameraDriver {
 public:
  struct Config {
    uint16_t vchiq_device = 0;  // machine device id of the mailbox/VC4
    int bell_irq = 0;
    bool pipelined = false;  // native streaming mode
  };

  VchiqCameraDriver(DriverIo* io, const Config& config) : io_(io), cfg_(config) {}

  // The recordable entry: replay_camera(frame, resolution, buf, buf_size, img_size).
  // Captures |frame| frames at |resolution|p; each frame lands in |buf| (the
  // caller consumes between frames in a real deployment); the last frame's size
  // is stored into |img_size_out| (4 bytes).
  Status Capture(const TValue& frame, const TValue& resolution, uint8_t* buf, size_t buf_cap,
                 const TValue& buf_size, uint8_t* img_size_out);

  uint64_t captures() const { return captures_; }

 private:
  Status QueueInit();
  Status Handshake();
  Status ConfigureCamera(const TValue& resolution);
  // Appends a message to the slave region and rings BELL2.
  void SendMessage(VchiqMsgType type, const TValue* words, uint32_t nwords);
  void SendMmal(MmalMsgType type, const TValue& a, const TValue& b);
  // Waits (IRQ + poll on master_tx_pos) for the next VC4 message; returns the
  // payload base address expression. Serial mode only.
  Status WaitMessage(TValue* payload_addr, TValue* msgid);
  Status WaitMmalReply(MmalMsgType expect);

  DriverIo* io_;
  Config cfg_;
  TValue queue_;            // slot memory base (dma symbol)
  uint32_t slave_tx_ = 0;   // our write cursor into the slave region
  uint32_t master_rx_ = 0;  // how far we have parsed the master region
  uint64_t captures_ = 0;
};

}  // namespace dlt

#endif  // SRC_DRV_VCHIQ_CAMERA_DRIVER_H_
