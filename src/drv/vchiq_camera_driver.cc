#include "src/drv/vchiq_camera_driver.h"

#include "src/soc/log.h"

namespace dlt {

namespace {
constexpr uint64_t kBellTimeoutUs = 5'000'000;  // first frame pays sensor init (~2 s)
constexpr int kPipelineDepth = 3;

uint32_t Pad8(uint32_t n) { return (n + 7) & ~7u; }
}  // namespace

void VchiqCameraDriver::SendMessage(VchiqMsgType type, const TValue* words, uint32_t nwords) {
  uint32_t base = kVchiqSlaveBase + slave_tx_;
  io_->ShmWrite32(queue_ + TValue(base), TValue(static_cast<uint64_t>(type) << kMsgTypeShift),
                  DLT_HERE);
  io_->ShmWrite32(queue_ + TValue(base + 4), TValue(nwords * 4), DLT_HERE);
  for (uint32_t i = 0; i < nwords; ++i) {
    io_->ShmWrite32(queue_ + TValue(base + kMsgHdrBytes + i * 4), words[i], DLT_HERE);
  }
  slave_tx_ += kMsgHdrBytes + Pad8(nwords * 4);
  io_->ShmWrite32(queue_ + TValue(kSzSlaveTxPos), TValue(slave_tx_), DLT_HERE);
  io_->RegWrite32(cfg_.vchiq_device, kBell2, TValue(1), DLT_HERE);
}

void VchiqCameraDriver::SendMmal(MmalMsgType type, const TValue& a, const TValue& b) {
  TValue words[3] = {TValue(static_cast<uint64_t>(type)), a, b};
  SendMessage(VchiqMsgType::kData, words, 3);
}

Status VchiqCameraDriver::WaitMessage(TValue* payload_addr, TValue* msgid) {
  DLT_RETURN_IF_ERROR(io_->WaitForIrq(cfg_.bell_irq, kBellTimeoutUs, DLT_HERE));
  // Acknowledge the doorbell; the pending count is a statistic input.
  (void)io_->RegRead32(cfg_.vchiq_device, kBell0, DLT_HERE);
  // Slot-handler poll: wait for the VC4 write cursor to pass our read cursor.
  // This open-coded loop is what the recorder's loop analysis lifts (§4.2 III).
  TValue tx = io_->ShmRead32(queue_ + TValue(kSzMasterTxPos), DLT_HERE);
  int spins = 0;
  while (!io_->Branch(tx, Cmp::kGt, TValue(master_rx_), DLT_HERE)) {
    if (++spins > 20'000) {
      return Status::kTimeout;
    }
    io_->DelayUs(50, DLT_HERE);
    tx = io_->ShmRead32(queue_ + TValue(kSzMasterTxPos), DLT_HERE);
  }
  uint32_t base = kVchiqMasterBase + master_rx_;
  *msgid = io_->ShmRead32(queue_ + TValue(base), DLT_HERE);
  TValue size = io_->ShmRead32(queue_ + TValue(base + 4), DLT_HERE);
  *payload_addr = queue_ + TValue(base + kMsgHdrBytes);
  master_rx_ += kMsgHdrBytes + Pad8(static_cast<uint32_t>(size.value()));
  return Status::kOk;
}

Status VchiqCameraDriver::WaitMmalReply(MmalMsgType expect) {
  TValue payload;
  TValue msgid;
  DLT_RETURN_IF_ERROR(WaitMessage(&payload, &msgid));
  if (!io_->Branch(msgid >> TValue(kMsgTypeShift), Cmp::kEq,
                   TValue(static_cast<uint64_t>(VchiqMsgType::kData)), DLT_HERE)) {
    return Status::kIoError;
  }
  TValue w0 = io_->ShmRead32(payload, DLT_HERE);
  if (!io_->Branch(w0, Cmp::kEq, TValue(static_cast<uint64_t>(expect) | kMmalReplyFlag),
                   DLT_HERE)) {
    return Status::kIoError;
  }
  TValue status = io_->ShmRead32(payload + TValue(4), DLT_HERE);
  if (!io_->Branch(status, Cmp::kEq, TValue(0), DLT_HERE)) {
    return Status::kIoError;
  }
  return Status::kOk;
}

Status VchiqCameraDriver::QueueInit() {
  io_->ShmWrite32(queue_ + TValue(kSzMagic), TValue(kVchiqMagic), DLT_HERE);
  io_->ShmWrite32(queue_ + TValue(kSzVersion), TValue(kVchiqVersion), DLT_HERE);
  io_->ShmWrite32(queue_ + TValue(kSzSlotSize), TValue(kVchiqSlotSize), DLT_HERE);
  io_->ShmWrite32(queue_ + TValue(kSzMaxSlots), TValue(kVchiqMaxSlots), DLT_HERE);
  io_->ShmWrite32(queue_ + TValue(kSzMasterTxPos), TValue(0), DLT_HERE);
  io_->ShmWrite32(queue_ + TValue(kSzSlaveTxPos), TValue(0), DLT_HERE);
  // Hand the (16 KB-aligned) queue base to VC4 — the MBOX_WRITE taint sink of
  // paper Table 6.
  io_->RegWrite32(cfg_.vchiq_device, kMboxWrite,
                  queue_ & TValue(~static_cast<uint64_t>(kMboxQueueAlignMask)), DLT_HERE);
  return Status::kOk;
}

Status VchiqCameraDriver::Handshake() {
  SendMessage(VchiqMsgType::kConnect, nullptr, 0);
  TValue payload;
  TValue msgid;
  DLT_RETURN_IF_ERROR(WaitMessage(&payload, &msgid));
  if (!io_->Branch(msgid >> TValue(kMsgTypeShift), Cmp::kEq,
                   TValue(static_cast<uint64_t>(VchiqMsgType::kConnect)), DLT_HERE)) {
    return Status::kIoError;
  }
  SendMessage(VchiqMsgType::kOpen, nullptr, 0);
  DLT_RETURN_IF_ERROR(WaitMessage(&payload, &msgid));
  if (!io_->Branch(msgid >> TValue(kMsgTypeShift), Cmp::kEq,
                   TValue(static_cast<uint64_t>(VchiqMsgType::kOpenAck)), DLT_HERE)) {
    return Status::kIoError;
  }
  return Status::kOk;
}

Status VchiqCameraDriver::ConfigureCamera(const TValue& resolution) {
  SendMmal(MmalMsgType::kComponentCreate, TValue(kMmalCameraComponent), TValue(0));
  DLT_RETURN_IF_ERROR(WaitMmalReply(MmalMsgType::kComponentCreate));
  SendMmal(MmalMsgType::kComponentEnable, TValue(0), TValue(0));
  DLT_RETURN_IF_ERROR(WaitMmalReply(MmalMsgType::kComponentEnable));
  // The resolution taint sink (paper Table 6).
  SendMmal(MmalMsgType::kPortParamSet, TValue(kMmalParamResolution), resolution);
  DLT_RETURN_IF_ERROR(WaitMmalReply(MmalMsgType::kPortParamSet));
  SendMmal(MmalMsgType::kPortEnable, TValue(0), TValue(0));
  DLT_RETURN_IF_ERROR(WaitMmalReply(MmalMsgType::kPortEnable));
  return Status::kOk;
}

Status VchiqCameraDriver::Capture(const TValue& frame, const TValue& resolution, uint8_t* buf,
                                  size_t buf_cap, const TValue& buf_size, uint8_t* img_size_out) {
  ++captures_;
  slave_tx_ = 0;
  master_rx_ = 0;
  if (!io_->Branch(frame, Cmp::kGt, TValue(0), DLT_HERE)) {
    return Status::kInvalidArg;
  }
  if (buf_cap < buf_size.value()) {
    return Status::kInvalidArg;
  }
  queue_ = io_->DmaAlloc(TValue(kVchiqQueueBytes), DLT_HERE);
  if (!io_->Branch(queue_, Cmp::kNe, TValue(0), DLT_HERE)) {
    return Status::kNoMemory;
  }
  DLT_RETURN_IF_ERROR(QueueInit());
  DLT_RETURN_IF_ERROR(Handshake());
  // The frame landing buffer ("pg_list" in paper Table 6).
  TValue pg_list = io_->DmaAlloc(buf_size, DLT_HERE);
  if (!io_->Branch(pg_list, Cmp::kNe, TValue(0), DLT_HERE)) {
    return Status::kNoMemory;
  }
  DLT_RETURN_IF_ERROR(ConfigureCamera(resolution));

  if (cfg_.pipelined) {
    // ---- Native streaming path: keep captures ahead, coalesce interrupts ----
    uint64_t want = frame.value();
    uint64_t requested = 0;
    uint64_t done = 0;
    while (requested < want && requested < kPipelineDepth) {
      SendMmal(MmalMsgType::kCapture, TValue(requested), TValue(0));
      ++requested;
    }
    int idle_rounds = 0;
    while (done < want) {
      uint32_t tx =
          io_->ShmRead32(queue_ + TValue(kSzMasterTxPos), DLT_HERE).value32();
      if (tx <= master_rx_) {
        Status s = io_->WaitForIrq(cfg_.bell_irq, kBellTimeoutUs, DLT_HERE);
        (void)io_->RegRead32(cfg_.vchiq_device, kBell0, DLT_HERE);
        // The doorbell races VC4's lazy slot-zero sync: poll briefly for the
        // write cursor to move (same reason the serial slot handler polls).
        for (int spin = 0; spin < 100; ++spin) {
          tx = io_->ShmRead32(queue_ + TValue(kSzMasterTxPos), DLT_HERE).value32();
          if (tx > master_rx_) {
            break;
          }
          io_->DelayUs(50, DLT_HERE);
        }
        if (tx <= master_rx_) {
          if (!Ok(s) && ++idle_rounds > 3) {
            return Status::kTimeout;
          }
          continue;
        }
      }
      idle_rounds = 0;
      while (master_rx_ < tx) {
        uint32_t base = kVchiqMasterBase + master_rx_;
        uint32_t msgid = io_->ShmRead32(queue_ + TValue(base), DLT_HERE).value32();
        uint32_t size = io_->ShmRead32(queue_ + TValue(base + 4), DLT_HERE).value32();
        TValue payload = queue_ + TValue(base + kMsgHdrBytes);
        master_rx_ += kMsgHdrBytes + Pad8(size);
        auto type = static_cast<VchiqMsgType>(msgid >> kMsgTypeShift);
        if (type == VchiqMsgType::kData) {
          uint32_t w0 = io_->ShmRead32(payload, DLT_HERE).value32();
          if (w0 == (static_cast<uint32_t>(MmalMsgType::kBufferDone) | kMmalReplyFlag)) {
            TValue img = io_->ShmRead32(payload + TValue(4), DLT_HERE);
            if (img.value() > buf_size.value()) {
              return Status::kIoError;
            }
            io_->CopyFromDma(img_size_out, TValue(0), payload + TValue(4), TValue(4), DLT_HERE);
            TValue words[2] = {pg_list, img};
            SendMessage(VchiqMsgType::kBulkRx, words, 2);
          }
        } else if (type == VchiqMsgType::kBulkRxDone) {
          TValue actual = io_->ShmRead32(payload, DLT_HERE);
          TValue status = io_->ShmRead32(payload + TValue(4), DLT_HERE);
          if (status.value() != 0) {
            return Status::kIoError;
          }
          io_->CopyFromDma(buf, TValue(0), pg_list, actual, DLT_HERE);
          ++done;
          if (requested < want) {
            SendMmal(MmalMsgType::kCapture, TValue(requested), TValue(0));
            ++requested;
          }
        }
      }
    }
  } else {
    // ---- Serial path (recorded): one outstanding request, per-event IRQs ----
    int f = 0;
    while (io_->Branch(TValue(static_cast<uint64_t>(f)), Cmp::kLt, frame, DLT_HERE)) {
      SendMmal(MmalMsgType::kCapture, TValue(static_cast<uint64_t>(f)), TValue(0));
      TValue payload;
      TValue msgid;
      DLT_RETURN_IF_ERROR(WaitMessage(&payload, &msgid));
      if (!io_->Branch(msgid >> TValue(kMsgTypeShift), Cmp::kEq,
                       TValue(static_cast<uint64_t>(VchiqMsgType::kData)), DLT_HERE)) {
        return Status::kIoError;
      }
      TValue w0 = io_->ShmRead32(payload, DLT_HERE);
      if (!io_->Branch(
              w0, Cmp::kEq,
              TValue(static_cast<uint64_t>(MmalMsgType::kBufferDone) | kMmalReplyFlag),
              DLT_HERE)) {
        return Status::kIoError;
      }
      // img_size: assigned by VC4; must fit the provided buffer (Table 6).
      TValue img = io_->ShmRead32(payload + TValue(4), DLT_HERE);
      if (!io_->Branch(img, Cmp::kLe, buf_size, DLT_HERE)) {
        return Status::kIoError;
      }
      io_->CopyFromDma(img_size_out, TValue(0), payload + TValue(4), TValue(4), DLT_HERE);
      // Initiate the bulk receive: img_size is sent back to VC4 (Table 6).
      TValue words[2] = {pg_list, img};
      SendMessage(VchiqMsgType::kBulkRx, words, 2);
      DLT_RETURN_IF_ERROR(WaitMessage(&payload, &msgid));
      if (!io_->Branch(msgid >> TValue(kMsgTypeShift), Cmp::kEq,
                       TValue(static_cast<uint64_t>(VchiqMsgType::kBulkRxDone)), DLT_HERE)) {
        return Status::kIoError;
      }
      TValue actual = io_->ShmRead32(payload, DLT_HERE);
      // "VC4 passes another input value indicating successful transmission
      // size, which img_size must exactly match" (paper §6.3.3).
      if (!io_->Branch(actual, Cmp::kEq, img, DLT_HERE)) {
        return Status::kIoError;
      }
      TValue status = io_->ShmRead32(payload + TValue(4), DLT_HERE);
      if (!io_->Branch(status, Cmp::kEq, TValue(0), DLT_HERE)) {
        return Status::kIoError;
      }
      io_->CopyFromDma(buf, TValue(0), pg_list, img, DLT_HERE);
      ++f;
    }
  }
  io_->DmaReleaseAll(DLT_HERE);
  return Status::kOk;
}

}  // namespace dlt
