#include "src/drv/cryptoacc_driver.h"

#include <vector>

#include "src/dev/cryptoacc/cryptoacc_device.h"
#include "src/soc/log.h"

namespace dlt {

namespace {
constexpr uint64_t kPollIntervalUs = 5;
constexpr uint64_t kPollTimeoutUs = 100'000;
}  // namespace

Status CryptoaccDriver::Transform(const TValue& op, const TValue& key, const TValue& len,
                                  const uint8_t* buf, size_t buf_len, uint8_t* out,
                                  uint64_t timeout_us) {
  // Input validation — these branches become the template's initial
  // constraints (eq on the op path, range + mask on len).
  bool is_cipher = io_->Branch(op, Cmp::kLe, TValue(kCaOpDecrypt), DLT_HERE);
  if (!is_cipher && !io_->Branch(op, Cmp::kEq, TValue(kCaOpDigest), DLT_HERE)) {
    return Status::kInvalidArg;
  }
  if (!io_->Branch(len, Cmp::kGt, TValue(0), DLT_HERE) ||
      !io_->Branch(len, Cmp::kLe, TValue(kCryptoMaxJobBytes), DLT_HERE)) {
    return Status::kInvalidArg;
  }
  if (!io_->Branch(len & TValue(0xf), Cmp::kEq, TValue(0), DLT_HERE)) {
    return Status::kInvalidArg;  // engine blocks are 16 bytes
  }
  if (buf_len < len.value()) {
    return Status::kInvalidArg;
  }

  TValue ctrl = io_->RegRead32(cfg_.crypto_device, kCaCtrl, DLT_HERE);
  if (!io_->Branch(ctrl & TValue(kCaCtrlEnable), Cmp::kEq, TValue(kCaCtrlEnable), DLT_HERE)) {
    return Status::kBadState;
  }
  TValue status = io_->RegRead32(cfg_.crypto_device, kCaStatus, DLT_HERE);
  if (!io_->Branch(status & TValue(kCaStatusBusy), Cmp::kEq, TValue(0), DLT_HERE)) {
    return Status::kBadState;
  }

  // Build the per-descriptor source/destination plan. Ciphers chunk the job
  // into pages (the transition path fixes the chunk count; the last chunk's
  // length stays symbolic); digests hash one contiguous region with a single
  // descriptor.
  std::vector<TValue> srcs;
  std::vector<TValue> dsts;
  std::vector<TValue> lens;
  if (is_cipher) {
    TValue consumed(0);
    while (true) {
      TValue src = io_->DmaAlloc(TValue(kCryptoChunkBytes), DLT_HERE);
      TValue dst = io_->DmaAlloc(TValue(kCryptoChunkBytes), DLT_HERE);
      if (src.value() == 0 || dst.value() == 0) {
        return Status::kNoMemory;
      }
      srcs.push_back(src);
      dsts.push_back(dst);
      if (io_->Branch(len - consumed, Cmp::kGt, TValue(kCryptoChunkBytes), DLT_HERE)) {
        lens.push_back(TValue(kCryptoChunkBytes));
        consumed = consumed + TValue(kCryptoChunkBytes);
        continue;
      }
      lens.push_back(len - consumed);
      break;
    }
  } else {
    TValue src = io_->DmaAlloc(TValue(kCryptoMaxJobBytes), DLT_HERE);
    TValue dst = io_->DmaAlloc(TValue(kCaDigestBytes), DLT_HERE);
    if (src.value() == 0 || dst.value() == 0) {
      return Status::kNoMemory;
    }
    srcs.push_back(src);
    dsts.push_back(dst);
    lens.push_back(len);
  }
  size_t n = srcs.size();
  TValue ring = io_->DmaAlloc(TValue(static_cast<uint64_t>(n) * kCaDescBytes), DLT_HERE);
  if (ring.value() == 0) {
    return Status::kNoMemory;
  }

  // Stage the inputs and build the descriptor ring — a run of bulk shared
  // memory writes the compiled engine coalesces.
  TValue off(0);
  for (size_t i = 0; i < n; ++i) {
    io_->CopyToDma(srcs[i], buf, off, lens[i], DLT_HERE);
    off = off + lens[i];
  }
  for (size_t i = 0; i < n; ++i) {
    TValue d = ring + TValue(static_cast<uint64_t>(i) * kCaDescBytes);
    uint32_t flags = kCaDescValid | (i + 1 == n ? kCaDescIrq : 0);
    // The op is a symbolic operand of the control word: encrypt and decrypt
    // replay through the same template.
    TValue dctrl = TValue(flags) | (op << TValue(kCaOpShift));
    io_->ShmWrite32(d + TValue(0), dctrl, DLT_HERE);
    io_->ShmWrite32(d + TValue(4), srcs[i], DLT_HERE);
    io_->ShmWrite32(d + TValue(8), dsts[i], DLT_HERE);
    io_->ShmWrite32(d + TValue(12), lens[i], DLT_HERE);
    io_->ShmWrite32(d + TValue(16), key, DLT_HERE);
    io_->ShmWrite32(d + TValue(20), TValue(0), DLT_HERE);
  }

  io_->RegWrite32(cfg_.crypto_device, kCaRingBase, ring, DLT_HERE);
  io_->RegWrite32(cfg_.crypto_device, kCaRingSize, TValue(static_cast<uint64_t>(n)), DLT_HERE);
  io_->RegWrite32(cfg_.crypto_device, kCaKey, key, DLT_HERE);
  // Doorbell: publish the producer index.
  io_->RegWrite32(cfg_.crypto_device, kCaHead, TValue(static_cast<uint64_t>(n)), DLT_HERE);

  Status s = io_->WaitForIrq(cfg_.crypto_irq, timeout_us, DLT_HERE);
  if (!Ok(s)) {
    return RecoverFromError(DLT_HERE);
  }
  status = io_->RegRead32(cfg_.crypto_device, kCaStatus, DLT_HERE);
  if (!io_->Branch(status & TValue(kCaStatusError), Cmp::kEq, TValue(0), DLT_HERE)) {
    return RecoverFromError(DLT_HERE);
  }
  if (!io_->Branch(status & TValue(kCaStatusDone), Cmp::kEq, TValue(kCaStatusDone), DLT_HERE)) {
    return RecoverFromError(DLT_HERE);
  }
  // IRQ-gated poll: the consumer index must have caught up with the head.
  s = io_->PollReg32(cfg_.crypto_device, kCaTail, 0xffffffffu, static_cast<uint32_t>(n),
                     /*negate=*/false, kPollTimeoutUs, kPollIntervalUs, DLT_HERE);
  if (!Ok(s)) {
    return RecoverFromError(DLT_HERE);
  }
  io_->RegWrite32(cfg_.crypto_device, kCaStatus, TValue(kCaStatusDone), DLT_HERE);

  if (is_cipher) {
    TValue out_off(0);
    for (size_t i = 0; i < n; ++i) {
      io_->CopyFromDma(out, out_off, dsts[i], lens[i], DLT_HERE);
      out_off = out_off + lens[i];
    }
  } else {
    io_->CopyFromDma(out, TValue(0), dsts[0], TValue(kCaDigestBytes), DLT_HERE);
  }
  io_->DmaReleaseAll(DLT_HERE);
  return Status::kOk;
}

Status CryptoaccDriver::RecoverFromError(SourceLoc loc) {
  DLT_LOG(kInfo) << "cryptoacc driver error recovery from " << loc.file << ":" << loc.line;
  // Clear stale completion state and abandon the ring; the engine drops any
  // in-flight batch when the ring registers are rewritten on the next job.
  io_->RegWrite32(cfg_.crypto_device, kCaStatus, TValue(kCaStatusDone | kCaStatusError),
                  DLT_HERE);
  io_->RegWrite32(cfg_.crypto_device, kCaRingSize, TValue(0), DLT_HERE);
  io_->DmaReleaseAll(DLT_HERE);
  return Status::kIoError;
}

}  // namespace dlt
