// Gold display driver: renders a caller-provided XRGB bitmap to given panel
// coordinates — exactly the trusted-UI primitive the paper motivates
// ("rendering given bitmaps or vector paths to given screen coordinates",
// §2.1). The recordable entry is replay_display(x, y, w, h, buf).
#ifndef SRC_DRV_DSI_DISPLAY_DRIVER_H_
#define SRC_DRV_DSI_DISPLAY_DRIVER_H_

#include "src/core/driver_io.h"

namespace dlt {

class DsiDisplayDriver {
 public:
  struct Config {
    uint16_t display_device = 0;
    int vsync_irq = 0;
  };

  DsiDisplayDriver(DriverIo* io, const Config& config) : io_(io), cfg_(config) {}

  // Blits a w x h bitmap (tightly packed 32-bit XRGB) to panel position (x, y).
  Status Blit(const TValue& x, const TValue& y, const TValue& w, const TValue& h, uint8_t* buf,
              size_t buf_len);

  uint64_t blits() const { return blits_; }

 private:
  DriverIo* io_;
  Config cfg_;
  uint64_t blits_ = 0;
};

}  // namespace dlt

#endif  // SRC_DRV_DSI_DISPLAY_DRIVER_H_
