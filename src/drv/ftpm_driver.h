// Gold fTPM driver: a thin command/response pipe over the FtpmDevice mailbox,
// following the kernel's tpm_ftpm_tee shape — stage ordinal + argument +
// request payload, ring GO, wait for the completion interrupt, drain the
// variable-length response. Recordable entry:
//   replay_ftpm(ord, arg, req, rsp) — the request/response lengths are
// symbolic functions of (ord, arg), which is what makes this class's template
// shape different from the block/camera classes: variable-length PIO with no
// DMA descriptor chains.
#ifndef SRC_DRV_FTPM_DRIVER_H_
#define SRC_DRV_FTPM_DRIVER_H_

#include "src/core/driver_io.h"

namespace dlt {

class FtpmDriver {
 public:
  struct Config {
    uint16_t ftpm_device = 0;
    int ftpm_irq = 0;
  };

  FtpmDriver(DriverIo* io, const Config& config) : io_(io), cfg_(config) {}

  // Executes one TPM command. |req| supplies the request payload (its length
  // is derived from ord/arg inside the driver); the response is written to
  // |rsp_out|, which must be large enough for the ordinal's response.
  Status Execute(const TValue& ord, const TValue& arg, const uint8_t* req, uint8_t* rsp_out,
                 uint64_t timeout_us = 5'000'000);

  // Reads the interface version register and checks the magic (probe path).
  Status Probe();

 private:
  DriverIo* io_;
  Config cfg_;
};

}  // namespace dlt

#endif  // SRC_DRV_FTPM_DRIVER_H_
