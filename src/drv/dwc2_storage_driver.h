// Gold USB mass-storage driver over the DWC2 host controller: port management
// and device enumeration, BOT CBW/CSW descriptors in DMA memory, SCSI command
// selection (READ(10)/WRITE(10), the "2nd shortest" variants that encode the
// requested LBA range, paper §6.2.3), read-modify-write for sub-LBA writes, and
// the per-4KB transfer scheduling the native block layer pays for (§7.3.3).
#ifndef SRC_DRV_DWC2_STORAGE_DRIVER_H_
#define SRC_DRV_DWC2_STORAGE_DRIVER_H_

#include "src/core/driver_io.h"
#include "src/kern/block_layer.h"

namespace dlt {

class Dwc2StorageDriver : public RawBlockDriver {
 public:
  struct Config {
    uint16_t usb_device = 0;  // machine device id of the DWC2 controller
    int usb_irq = 0;
    int channel = 1;          // the paper reserves the 1st transmission channel (§6.2.2)
    uint64_t max_sectors = 0;
    uint64_t sched_per_page_us = 95;  // native per-4KB scheduling CPU cost
  };

  Dwc2StorageDriver(DriverIo* io, const Config& config) : io_(io), cfg_(config) {}

  // Port reset + enumeration + INQUIRY + READ CAPACITY (native-only init).
  Status Probe();

  // The recordable entry: replay_usb(rw, blkcnt, blkid, flag, buf).
  Status Transfer(const TValue& rw, const TValue& blkcnt, const TValue& blkid, const TValue& flag,
                  uint8_t* buf, size_t buf_len);

  // RawBlockDriver.
  Status ReadBlocks(uint64_t blkid, uint32_t blkcnt, uint8_t* buf) override;
  Status WriteBlocks(uint64_t blkid, uint32_t blkcnt, const uint8_t* buf) override;
  uint32_t MaxBlocksPerRequest() const override { return 256; }
  uint64_t PerPageSchedulingUs() const override { return cfg_.sched_per_page_us; }

  uint64_t transfers() const { return transfers_; }

 private:
  // One bulk transaction on the reserved channel; waits for and acknowledges
  // the completion interrupt chain (GINTSTS -> HAINT -> HCINT).
  Status BulkXfer(bool dir_in, const TValue& dma_addr, const TValue& len);
  // A whole data stage, split into 4 KB scatter-gather pages.
  Status BulkData(bool dir_in, const TValue& base, const TValue& len);
  Status ControlXfer(uint8_t bm_request_type, uint8_t b_request, uint16_t w_value,
                     uint16_t w_index, uint16_t w_length, uint8_t* data_in);
  // Sends a CBW; |tag| returns the (env-derived) command serial number.
  Status SendCbw(const TValue& scsi_op, const TValue& lba4k, const TValue& count4k,
                 const TValue& data_len, bool dir_in, TValue* tag_out);
  Status ReadCsw(const TValue& tag);

  DriverIo* io_;
  Config cfg_;
  uint64_t transfers_ = 0;
};

}  // namespace dlt

#endif  // SRC_DRV_DWC2_STORAGE_DRIVER_H_
