#include "src/drv/dsi_display_driver.h"

#include "src/dev/display/display_controller.h"
#include "src/soc/log.h"

namespace dlt {

namespace {
constexpr uint64_t kVsyncTimeoutUs = 200'000;
}  // namespace

Status DsiDisplayDriver::Blit(const TValue& x, const TValue& y, const TValue& w, const TValue& h,
                              uint8_t* buf, size_t buf_len) {
  ++blits_;
  // Geometry validation: these become the template's selection constraints.
  if (!io_->Branch(w, Cmp::kGt, TValue(0), DLT_HERE) ||
      !io_->Branch(h, Cmp::kGt, TValue(0), DLT_HERE)) {
    return Status::kInvalidArg;
  }
  if (!io_->Branch(x + w, Cmp::kLe, TValue(kPanelWidth), DLT_HERE) ||
      !io_->Branch(y + h, Cmp::kLe, TValue(kPanelHeight), DLT_HERE)) {
    return Status::kOutOfRange;
  }
  TValue bytes = w * h * TValue(4);
  if (buf_len < bytes.value()) {
    return Status::kInvalidArg;
  }

  // The controller must be enabled and not mid-scanout.
  TValue ctrl = io_->RegRead32(cfg_.display_device, kDispCtrl, DLT_HERE);
  if (!io_->Branch(ctrl & TValue(kDispCtrlEnable), Cmp::kEq, TValue(kDispCtrlEnable), DLT_HERE)) {
    return Status::kBadState;
  }
  TValue status = io_->RegRead32(cfg_.display_device, kDispStatus, DLT_HERE);
  if (!io_->Branch(status & TValue(kDispStatusBusy), Cmp::kEq, TValue(0), DLT_HERE)) {
    return Status::kBadState;
  }
  // Beam-position bookkeeping (tear avoidance in the full driver): a statistic
  // input, never branched on — not state-changing.
  (void)io_->RegRead32(cfg_.display_device, kDispScanline, DLT_HERE);

  TValue fb = io_->DmaAlloc(bytes, DLT_HERE);
  if (!io_->Branch(fb, Cmp::kNe, TValue(0), DLT_HERE)) {
    return Status::kNoMemory;
  }
  io_->CopyToDma(fb, buf, TValue(0), bytes, DLT_HERE);

  io_->RegWrite32(cfg_.display_device, kDispFbAddr, fb, DLT_HERE);
  io_->RegWrite32(cfg_.display_device, kDispStride, w * TValue(4), DLT_HERE);
  io_->RegWrite32(cfg_.display_device, kDispGeom, w | (h << TValue(16)), DLT_HERE);
  io_->RegWrite32(cfg_.display_device, kDispPos, x | (y << TValue(16)), DLT_HERE);
  io_->RegWrite32(cfg_.display_device, kDispCommit, TValue(1), DLT_HERE);

  Status s = io_->WaitForIrq(cfg_.vsync_irq, kVsyncTimeoutUs, DLT_HERE);
  if (!Ok(s)) {
    return s;
  }
  TValue done = io_->RegRead32(cfg_.display_device, kDispStatus, DLT_HERE);
  if (!io_->Branch(done & TValue(kDispStatusVsync), Cmp::kEq, TValue(kDispStatusVsync),
                   DLT_HERE)) {
    return Status::kIoError;
  }
  io_->RegWrite32(cfg_.display_device, kDispStatus, TValue(kDispStatusVsync), DLT_HERE);
  io_->DmaReleaseAll(DLT_HERE);
  return Status::kOk;
}

}  // namespace dlt
