#include "src/drv/dwc2_storage_driver.h"

#include "src/drv/bcm_sdhost_driver.h"

#include "src/dev/usb/dwc2_controller.h"
#include "src/dev/usb/usb_mass_storage.h"
#include "src/soc/log.h"

namespace dlt {

namespace {
constexpr uint64_t kIrqTimeoutUs = 1'000'000;
constexpr uint32_t kBulkInEp = 1;
constexpr uint32_t kBulkOutEp = 2;
constexpr uint32_t kEpTypeBulk = 2;
constexpr uint32_t kDevAddr = 1;

// Big-endian byte lane helpers over symbolic values (SCSI fields are BE).
TValue ByteLane(const TValue& v, int src_shift, int dst_shift) {
  return ((v >> TValue(static_cast<uint64_t>(src_shift))) & TValue(0xff))
         << TValue(static_cast<uint64_t>(dst_shift));
}
}  // namespace

Status Dwc2StorageDriver::BulkXfer(bool dir_in, const TValue& dma_addr, const TValue& len) {
  uint64_t ch_base = kHcBase + static_cast<uint64_t>(cfg_.channel) * kHcStride;
  // Frame-number bookkeeping the scheduler keeps: a statistic input that is not
  // state-changing (paper §6.2.3).
  (void)io_->RegRead32(cfg_.usb_device, kHfNum, DLT_HERE);

  io_->RegWrite32(cfg_.usb_device, ch_base + kHcDma, dma_addr, DLT_HERE);
  TValue pktcnt = (len + TValue(511)) >> TValue(9);
  TValue hctsiz = len | (pktcnt << TValue(kHcTsizPktCntShift));
  io_->RegWrite32(cfg_.usb_device, ch_base + kHcTsiz, hctsiz, DLT_HERE);
  io_->RegWrite32(cfg_.usb_device, ch_base + kHcIntMsk,
                  TValue(kHcIntXferCompl | kHcIntXactErr | kHcIntStall), DLT_HERE);
  uint32_t ep = dir_in ? kBulkInEp : kBulkOutEp;
  uint32_t hcchar = kHcCharEna | (kDevAddr << kHcCharDevAddrShift) |
                    (kEpTypeBulk << kHcCharEpTypeShift) | (ep << kHcCharEpNumShift) | 512;
  if (dir_in) {
    hcchar |= kHcCharEpDirIn;
  }
  io_->RegWrite32(cfg_.usb_device, ch_base + kHcChar, TValue(hcchar), DLT_HERE);

  Status s = io_->WaitForIrq(cfg_.usb_irq, kIrqTimeoutUs, DLT_HERE);
  if (!Ok(s)) {
    return s;
  }
  TValue gintsts = io_->RegRead32(cfg_.usb_device, kGIntSts, DLT_HERE);
  if (!io_->Branch(gintsts & TValue(kGIntStsHcInt), Cmp::kEq, TValue(kGIntStsHcInt), DLT_HERE)) {
    return Status::kIoError;
  }
  TValue haint = io_->RegRead32(cfg_.usb_device, kHaInt, DLT_HERE);
  uint32_t ch_bit = 1u << cfg_.channel;
  if (!io_->Branch(haint & TValue(ch_bit), Cmp::kEq, TValue(ch_bit), DLT_HERE)) {
    return Status::kIoError;
  }
  TValue hcint = io_->RegRead32(cfg_.usb_device, ch_base + kHcInt, DLT_HERE);
  if (!io_->Branch(hcint & TValue(kHcIntXactErr | kHcIntStall), Cmp::kEq, TValue(0), DLT_HERE)) {
    return Status::kIoError;
  }
  if (!io_->Branch(hcint & TValue(kHcIntXferCompl), Cmp::kEq, TValue(kHcIntXferCompl),
                   DLT_HERE)) {
    return Status::kIoError;
  }
  io_->RegWrite32(cfg_.usb_device, ch_base + kHcInt,
                  TValue(kHcIntXferCompl | kHcIntChHltd | kHcIntNak), DLT_HERE);
  return Status::kOk;
}

Status Dwc2StorageDriver::SendCbw(const TValue& scsi_op, const TValue& lba4k,
                                  const TValue& count4k, const TValue& data_len, bool dir_in,
                                  TValue* tag_out) {
  TValue cbw = io_->DmaAlloc(TValue(32), DLT_HERE);
  if (cbw.value() == 0) {
    return Status::kNoMemory;
  }
  // Monotonic command serial number, derived from timekeeping — the second
  // statistic (non-state-changing) input the paper observes for USB (§6.2.3).
  TValue tag = io_->GetTimestampUs(DLT_HERE) & TValue(0xffffff);
  *tag_out = tag;
  io_->ShmWrite32(cbw + TValue(0), TValue(kCbwSignature), DLT_HERE);
  io_->ShmWrite32(cbw + TValue(4), tag, DLT_HERE);
  io_->ShmWrite32(cbw + TValue(8), data_len, DLT_HERE);
  // byte12 flags | byte13 lun | byte14 cb_len | byte15 cb[0]=opcode.
  TValue w3 = TValue(static_cast<uint64_t>(dir_in ? 0x80 : 0x00) | (10u << 16)) |
              (scsi_op << TValue(24));
  io_->ShmWrite32(cbw + TValue(12), w3, DLT_HERE);
  // cb[1]=0, cb[2..5]=BE lba, cb[6]=0, cb[7..8]=BE count.
  TValue w4 = ByteLane(lba4k, 24, 8) | ByteLane(lba4k, 16, 16) | ByteLane(lba4k, 8, 24);
  io_->ShmWrite32(cbw + TValue(16), w4, DLT_HERE);
  TValue w5 = (lba4k & TValue(0xff)) | ByteLane(count4k, 8, 16) | ByteLane(count4k, 0, 24);
  io_->ShmWrite32(cbw + TValue(20), w5, DLT_HERE);
  io_->ShmWrite32(cbw + TValue(24), TValue(0), DLT_HERE);
  io_->ShmWrite32(cbw + TValue(28), TValue(0), DLT_HERE);
  return BulkXfer(/*dir_in=*/false, cbw, TValue(kCbwLength));
}

Status Dwc2StorageDriver::ReadCsw(const TValue& tag) {
  TValue csw = io_->DmaAlloc(TValue(16), DLT_HERE);
  if (csw.value() == 0) {
    return Status::kNoMemory;
  }
  DLT_RETURN_IF_ERROR(BulkXfer(/*dir_in=*/true, csw, TValue(kCswLength)));
  TValue sig = io_->ShmRead32(csw + TValue(0), DLT_HERE);
  if (!io_->Branch(sig, Cmp::kEq, TValue(kCswSignature), DLT_HERE)) {
    return Status::kIoError;
  }
  TValue echoed = io_->ShmRead32(csw + TValue(4), DLT_HERE);
  // Round-trip check: the device must echo our serial number.
  if (!io_->Branch(echoed, Cmp::kEq, tag, DLT_HERE)) {
    return Status::kIoError;
  }
  TValue status = io_->ShmRead32(csw + TValue(12), DLT_HERE);
  if (!io_->Branch(status & TValue(0xff), Cmp::kEq, TValue(0), DLT_HERE)) {
    return Status::kIoError;
  }
  return Status::kOk;
}

Status Dwc2StorageDriver::Transfer(const TValue& rw, const TValue& blkcnt, const TValue& blkid,
                                   const TValue& flag, uint8_t* buf, size_t buf_len) {
  ++transfers_;
  (void)flag;
  if (!io_->Branch(blkid & TValue(0x7), Cmp::kEq, TValue(0), DLT_HERE)) {
    return Status::kInvalidArg;
  }
  bool is_read = io_->Branch(rw, Cmp::kEq, TValue(kMmcRwRead), DLT_HERE);
  if (!is_read && !io_->Branch(rw, Cmp::kEq, TValue(kMmcRwWrite), DLT_HERE)) {
    return Status::kInvalidArg;
  }
  if (!io_->Branch(blkcnt, Cmp::kGt, TValue(0), DLT_HERE) ||
      !io_->Branch(blkcnt, Cmp::kLe, TValue(0x400), DLT_HERE)) {
    return Status::kInvalidArg;
  }
  if (!io_->Branch(blkid, Cmp::kLe, TValue(cfg_.max_sectors - 1), DLT_HERE)) {
    return Status::kOutOfRange;
  }
  TValue total = blkcnt * TValue(512);
  if (buf_len < total.value()) {
    return Status::kInvalidArg;
  }
  TValue lba4k = blkid >> TValue(3);
  TValue count4k = (blkcnt + TValue(7)) >> TValue(3);
  TValue lba_bytes = count4k * TValue(kUsbLogicalBlock);

  TValue data = io_->DmaAlloc(lba_bytes, DLT_HERE);
  if (data.value() == 0) {
    return Status::kNoMemory;
  }
  TValue tag;
  bool whole_lba = io_->Branch(blkcnt & TValue(0x7), Cmp::kEq, TValue(0), DLT_HERE);
  if (is_read) {
    DLT_RETURN_IF_ERROR(
        SendCbw(TValue(kScsiRead10), lba4k, count4k, lba_bytes, /*dir_in=*/true, &tag));
    DLT_RETURN_IF_ERROR(BulkData(/*dir_in=*/true, data, lba_bytes));
    DLT_RETURN_IF_ERROR(ReadCsw(tag));
    // Sub-LBA reads fetched whole LBAs; hand back only the requested range.
    io_->CopyFromDma(buf, TValue(0), data, whole_lba ? lba_bytes : total, DLT_HERE);
  } else {
    if (!whole_lba) {
      // Sub-LBA write: read back the whole LBA, update in memory, write back
      // (paper §6.2.3).
      DLT_RETURN_IF_ERROR(
          SendCbw(TValue(kScsiRead10), lba4k, count4k, lba_bytes, /*dir_in=*/true, &tag));
      DLT_RETURN_IF_ERROR(BulkData(/*dir_in=*/true, data, lba_bytes));
      DLT_RETURN_IF_ERROR(ReadCsw(tag));
    }
    io_->CopyToDma(data, buf, TValue(0), total, DLT_HERE);
    DLT_RETURN_IF_ERROR(
        SendCbw(TValue(kScsiWrite10), lba4k, count4k, lba_bytes, /*dir_in=*/false, &tag));
    DLT_RETURN_IF_ERROR(BulkData(/*dir_in=*/false, data, lba_bytes));
    DLT_RETURN_IF_ERROR(ReadCsw(tag));
  }
  io_->DmaReleaseAll(DLT_HERE);
  return Status::kOk;
}

Status Dwc2StorageDriver::BulkData(bool dir_in, const TValue& base, const TValue& len) {
  // The data stage moves in 4 KB scatter-gather pages, one bulk transaction per
  // page — the per-page handling whose scheduling cost the native block layer
  // pays (paper §7.3.3) and which ties template identity to the page count.
  TValue consumed(0);
  while (true) {
    if (io_->Branch(len - consumed, Cmp::kGt, TValue(4096), DLT_HERE)) {
      DLT_RETURN_IF_ERROR(BulkXfer(dir_in, base + consumed, TValue(4096)));
      consumed = consumed + TValue(4096);
      continue;
    }
    return BulkXfer(dir_in, base + consumed, len - consumed);
  }
}

Status Dwc2StorageDriver::ControlXfer(uint8_t bm_request_type, uint8_t b_request, uint16_t w_value,
                                      uint16_t w_index, uint16_t w_length, uint8_t* data_in) {
  uint64_t ch_base = kHcBase + static_cast<uint64_t>(cfg_.channel) * kHcStride;
  TValue setup = io_->DmaAlloc(TValue(64), DLT_HERE);
  if (setup.value() == 0) {
    return Status::kNoMemory;
  }
  uint32_t w0 = static_cast<uint32_t>(bm_request_type) | (static_cast<uint32_t>(b_request) << 8) |
                (static_cast<uint32_t>(w_value) << 16);
  uint32_t w1 = static_cast<uint32_t>(w_index) | (static_cast<uint32_t>(w_length) << 16);
  io_->ShmWrite32(setup + TValue(0), TValue(w0), DLT_HERE);
  io_->ShmWrite32(setup + TValue(4), TValue(w1), DLT_HERE);

  auto ep0_stage = [&](bool dir_in, const TValue& dma, uint32_t len, bool is_setup) -> Status {
    io_->RegWrite32(cfg_.usb_device, ch_base + kHcDma, dma, DLT_HERE);
    uint32_t tsiz = len;
    if (is_setup) {
      tsiz |= kHcTsizPidSetup << kHcTsizPidShift;
    }
    io_->RegWrite32(cfg_.usb_device, ch_base + kHcTsiz, TValue(tsiz), DLT_HERE);
    uint32_t hcchar = kHcCharEna | 64;  // EP0, control, MPS 64
    if (dir_in) {
      hcchar |= kHcCharEpDirIn;
    }
    io_->RegWrite32(cfg_.usb_device, ch_base + kHcChar, TValue(hcchar), DLT_HERE);
    DLT_RETURN_IF_ERROR(io_->WaitForIrq(cfg_.usb_irq, kIrqTimeoutUs, DLT_HERE));
    TValue hcint = io_->RegRead32(cfg_.usb_device, ch_base + kHcInt, DLT_HERE);
    if (!io_->Branch(hcint & TValue(kHcIntXferCompl), Cmp::kEq, TValue(kHcIntXferCompl),
                     DLT_HERE)) {
      return Status::kIoError;
    }
    io_->RegWrite32(cfg_.usb_device, ch_base + kHcInt, TValue(0xffffffff), DLT_HERE);
    return Status::kOk;
  };

  DLT_RETURN_IF_ERROR(ep0_stage(false, setup, 8, /*is_setup=*/true));
  if (w_length > 0 && (bm_request_type & 0x80)) {
    TValue data = io_->DmaAlloc(TValue(static_cast<uint64_t>(w_length) + 64), DLT_HERE);
    DLT_RETURN_IF_ERROR(ep0_stage(true, data, w_length, /*is_setup=*/false));
    if (data_in != nullptr) {
      io_->CopyFromDma(data_in, TValue(0), data, TValue(w_length), DLT_HERE);
    }
  }
  // Status stage (zero length, opposite direction).
  DLT_RETURN_IF_ERROR(ep0_stage(!(bm_request_type & 0x80) || w_length == 0, setup, 0, false));
  return Status::kOk;
}

Status Dwc2StorageDriver::Probe() {
  // Port power + reset, then wait for connect.
  TValue hprt = io_->RegRead32(cfg_.usb_device, kHPrt, DLT_HERE);
  if (!(hprt.value() & kHPrtConnSts)) {
    return Status::kNotFound;
  }
  io_->RegWrite32(cfg_.usb_device, kHPrt, TValue(kHPrtPwr | kHPrtRst), DLT_HERE);
  io_->DelayUs(50'000, DLT_HERE);
  io_->RegWrite32(cfg_.usb_device, kHPrt, TValue(kHPrtPwr), DLT_HERE);
  io_->RegWrite32(cfg_.usb_device, kGIntMsk, TValue(kGIntStsHcInt), DLT_HERE);

  uint8_t desc[18] = {};
  DLT_RETURN_IF_ERROR(ControlXfer(0x80, 0x06, 0x0100, 0, 18, desc));  // GET_DESCRIPTOR(device)
  if (desc[0] != 18 || desc[1] != 1) {
    return Status::kIoError;
  }
  DLT_RETURN_IF_ERROR(ControlXfer(0x00, 0x05, 1, 0, 0, nullptr));  // SET_ADDRESS(1)
  DLT_RETURN_IF_ERROR(ControlXfer(0x00, 0x09, 1, 0, 0, nullptr));  // SET_CONFIGURATION(1)
  io_->DmaReleaseAll(DLT_HERE);

  // SCSI bring-up: INQUIRY then READ CAPACITY(10).
  TValue tag;
  TValue inq = io_->DmaAlloc(TValue(64), DLT_HERE);
  DLT_RETURN_IF_ERROR(SendCbw(TValue(kScsiInquiry), TValue(0), TValue(0), TValue(36),
                              /*dir_in=*/true, &tag));
  DLT_RETURN_IF_ERROR(BulkXfer(/*dir_in=*/true, inq, TValue(36)));
  DLT_RETURN_IF_ERROR(ReadCsw(tag));

  TValue cap = io_->DmaAlloc(TValue(16), DLT_HERE);
  DLT_RETURN_IF_ERROR(SendCbw(TValue(kScsiReadCapacity10), TValue(0), TValue(0), TValue(8),
                              /*dir_in=*/true, &tag));
  DLT_RETURN_IF_ERROR(BulkXfer(/*dir_in=*/true, cap, TValue(8)));
  DLT_RETURN_IF_ERROR(ReadCsw(tag));
  uint32_t w0 = io_->ShmRead32(cap + TValue(0), DLT_HERE).value32();
  // Big-endian max LBA.
  uint32_t max_lba = ((w0 & 0xff) << 24) | ((w0 & 0xff00) << 8) | ((w0 >> 8) & 0xff00) |
                     ((w0 >> 24) & 0xff);
  cfg_.max_sectors = (static_cast<uint64_t>(max_lba) + 1) * kSectorsPerLba;
  io_->DmaReleaseAll(DLT_HERE);
  return Status::kOk;
}

Status Dwc2StorageDriver::ReadBlocks(uint64_t blkid, uint32_t blkcnt, uint8_t* buf) {
  io_->DelayUs(14, DLT_HERE);  // driver CPU time per request
  return Transfer(TValue(kMmcRwRead), TValue(blkcnt), TValue(blkid), TValue(0), buf,
                  static_cast<size_t>(blkcnt) * 512);
}

Status Dwc2StorageDriver::WriteBlocks(uint64_t blkid, uint32_t blkcnt, const uint8_t* buf) {
  io_->DelayUs(14, DLT_HERE);
  return Transfer(TValue(kMmcRwWrite), TValue(blkcnt), TValue(blkid), TValue(0),
                  const_cast<uint8_t*>(buf), static_cast<size_t>(blkcnt) * 512);
}

}  // namespace dlt
