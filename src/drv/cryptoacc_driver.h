// Gold crypto-accelerator driver: builds a descriptor ring in DMA memory
// (kernel crypto-queue idiom), rings the head-register doorbell, waits for the
// completion IRQ, then polls the consumer index before collecting results.
// Recordable entry:
//   replay_cryptoacc(op, key, len, buf, out)
// op 0/1 (encrypt/decrypt) share one transition path — the op lands in the
// descriptor control word as a symbolic operand — while digest is its own
// path. The template shape stresses the opposite extreme from the fTPM pipe:
// bulk descriptor writes, DMA chunking, and an IRQ-gated poll.
#ifndef SRC_DRV_CRYPTOACC_DRIVER_H_
#define SRC_DRV_CRYPTOACC_DRIVER_H_

#include "src/core/driver_io.h"

namespace dlt {

class CryptoaccDriver {
 public:
  struct Config {
    uint16_t crypto_device = 0;
    int crypto_irq = 0;
  };

  CryptoaccDriver(DriverIo* io, const Config& config) : io_(io), cfg_(config) {}

  // Runs one job. For op 0/1 (cipher) |out| receives |len| transformed bytes;
  // for op 2 (digest) |out| receives the 32-byte digest. |len| must be a
  // positive 16-byte multiple, at most kCryptoMaxJobBytes.
  Status Transform(const TValue& op, const TValue& key, const TValue& len, const uint8_t* buf,
                   size_t buf_len, uint8_t* out, uint64_t timeout_us = 5'000'000);

 private:
  Status RecoverFromError(SourceLoc loc);

  DriverIo* io_;
  Config cfg_;
};

inline constexpr uint64_t kCryptoChunkBytes = 4096;
inline constexpr uint64_t kCryptoMaxJobBytes = 16384;

}  // namespace dlt

#endif  // SRC_DRV_CRYPTOACC_DRIVER_H_
