#!/usr/bin/env python3
"""Check that relative markdown links resolve to files in the repo.

Usage: check_md_links.py <file-or-dir> [...]

Scans each given markdown file (directories are walked for *.md) for inline
links/images `[text](target)`. External (scheme://, mailto:) and pure-anchor
(#...) targets are skipped; everything else must exist relative to the file
containing the link. Exits 1 listing every broken link.
"""

import os
import re
import sys

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def collect(paths):
    files = []
    for p in paths:
        if os.path.isdir(p):
            for root, _, names in os.walk(p):
                files.extend(os.path.join(root, n) for n in sorted(names)
                             if n.endswith(".md"))
        else:
            files.append(p)
    return files


def check_file(path):
    broken = []
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if CODE_FENCE_RE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for target in LINK_RE.findall(line):
                if "://" in target or target.startswith(("mailto:", "#")):
                    continue
                rel = target.split("#", 1)[0]
                if not rel:
                    continue
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(path), rel))
                if not os.path.exists(resolved):
                    broken.append((lineno, target))
    return broken


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip())
        return 2
    total_files = 0
    failures = 0
    for path in collect(argv[1:]):
        total_files += 1
        for lineno, target in check_file(path):
            print(f"{path}:{lineno}: broken link -> {target}")
            failures += 1
    if failures:
        print(f"FAIL: {failures} broken link(s)")
        return 1
    print(f"OK: checked {total_files} markdown file(s), all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
