// driverletc: command-line driverlet toolchain.
//
//   driverletc record <mmc|usb|camera|ftpm|cryptoacc|display|touch> -o pkg.dlt [--binary]
//       Runs the device's record campaign on a simulated developer machine and
//       writes the sealed (compressed + signed) driverlet package. The first
//       five names come from the registered-class table
//       (RegisteredDriverletClasses() in src/workload/deploy_util.h).
//   driverletc inspect <pkg.dlt>
//       Verifies the signature and prints the template inventory + coverage.
//   driverletc verify <pkg.dlt>
//       Signature/integrity check only; exit status reports the verdict.
//   driverletc smoke <pkg.dlt>
//       Loads the package into a simulated deployment TEE and replays one
//       covered request per entry as a smoke test.
//   driverletc trace <pkg.dlt> -o trace.json
//       Smoke replay with telemetry armed; writes a Chrome trace-event JSON
//       file (open in chrome://tracing or https://ui.perfetto.dev) and prints
//       the metrics summary plus the replay cache counters. See
//       docs/observability.md.
//   driverletc compile <pkg.dlt> [--dump]
//       Lowers every template through the replay compiler and prints the
//       program shape (ops / bulk words / atoms / expr steps) with the static
//       cost model vs the interpreter; --dump adds the full op listing. See
//       docs/replay_compiler.md.
//   driverletc faultsweep [--seeds N] [--base-seed S] [--ops K] [-o matrix.json]
//       Runs the seeded fault-matrix campaign (fault planes x driverlets x
//       seeds) through the recovery policy ladder and prints per-cell recovery
//       rates. Deterministic: same seeds produce byte-identical JSON. See
//       docs/fault_injection.md.
//   driverletc check [--seeds N] [--base-seed S] [--out DIR]
//       Property-based conformance sweep: generates N seeded templates and
//       runs every conformance invariant (engine parity, determinism,
//       serializer round-trip, store coherence, fault-plane parity) against
//       each. Failures are shrunk to minimal templates and written as repro
//       files under DIR (default .). See docs/conformance.md.
//   driverletc check --repro <file>
//       Re-executes a shrunk repro file through the self-relative invariants.
//   driverletc fuzz [--seconds S] [--iters N] [--seed K] [--out DIR] [--no-plant]
//       Coverage-guided fuzz over serialized boundary programs against the
//       replay service (session lifecycle, queued and ring invokes, fault
//       arming, attestation). Violations are ddmin-shrunk and written as
//       .repro files under DIR; unless --no-plant, a short regression phase
//       then arms the planted ring wrap-around reap bug and fails the run if
//       the fuzzer can no longer find and shrink it. See docs/fuzzing.md.
//   driverletc fuzz --repro <file>
//       Re-executes a shrunk boundary repro file.
//   driverletc attest <pkg> [--nonce N] [--invokes K]
//       Loads the package into a deployment TEE, drives K invokes through a
//       session and prints + re-verifies the signed attestation quote over
//       the session's measurement chain. See docs/architecture.md.
//   driverletc fleet <pkg...> [--shards N] [--invokes K] [--no-steal]
//       Stands up a multi-shard replay fleet (one Machine + TEE per shard,
//       worker thread pool, work-stealing dispatch), registers every package
//       on every shard, opens one session per package per shard and drives K
//       invokes through the bounded queues; prints the per-shard dispatch
//       table and the wall-clock queue-wait distribution. See
//       docs/replay_fleet.md.
//   driverletc ring <pkg> [--count K] [--batch N[,N...]]
//       Drives K commands through the per-session invocation ring at each
//       commands-per-doorbell size and prints the world-switch amortization
//       table (switches/command, model time/command, in-batch queue wait).
//       See docs/replay_service.md.
//
// The signing key is fixed (kDeveloperKey) — this mirrors the single developer
// identity of the paper's threat model; a real deployment would provision keys.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "src/check/conformance.h"
#include "src/check/fuzz.h"
#include "src/core/compiled_program.h"
#include "src/core/executor.h"
#include "src/core/replayer.h"
#include "src/obs/chrome_trace.h"
#include "src/obs/telemetry.h"
#include "src/tee/replay_fleet.h"
#include "src/workload/deploy_util.h"
#include "src/workload/fault_campaign.h"
#include "src/workload/record_campaigns.h"
#include "src/workload/rpi3_testbed.h"

using namespace dlt;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: driverletc record <mmc|usb|camera|ftpm|cryptoacc|display|touch>"
               " -o <pkg> [--binary]\n"
               "       driverletc inspect <pkg>\n"
               "       driverletc verify <pkg>\n"
               "       driverletc smoke <pkg>\n"
               "       driverletc trace <pkg> -o <trace.json>\n"
               "       driverletc compile <pkg> [--dump]\n"
               "       driverletc faultsweep [--seeds N] [--base-seed S] [--ops K]"
               " [-o <matrix.json>]\n"
               "       driverletc check [--seeds N] [--base-seed S] [--out <dir>]\n"
               "       driverletc check --repro <file>\n"
               "       driverletc fuzz [--seconds S] [--iters N] [--seed K] [--out <dir>]"
               " [--no-plant]\n"
               "       driverletc fuzz --repro <file>\n"
               "       driverletc attest <pkg> [--nonce N] [--invokes K]\n"
               "       driverletc fleet <pkg...> [--shards N] [--invokes K] [--no-steal]\n"
               "       driverletc ring <pkg> [--count K] [--batch N[,N...]]\n");
  return 2;
}

Result<std::vector<uint8_t>> ReadFile(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::kNotFound;
  }
  std::vector<uint8_t> data((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
  return data;
}

int CmdRecord(int argc, char** argv) {
  const char* device = nullptr;
  const char* out = nullptr;
  PackageFormat format = PackageFormat::kText;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--binary") == 0) {
      format = PackageFormat::kBinary;
    } else if (device == nullptr) {
      device = argv[i];
    } else {
      return Usage();
    }
  }
  if (device == nullptr || out == nullptr) {
    return Usage();
  }
  std::printf("recording the %s campaign on a simulated developer machine...\n", device);
  Rpi3Testbed dev{TestbedOptions{}};
  // Registered classes come from the class table; display/touch are
  // recordable peripherals that are not part of the registered sweep list.
  const DriverletClassSpec* spec = FindDriverletClass(device);
  Result<RecordCampaign> campaign =
      spec != nullptr                       ? spec->record(&dev)
      : std::strcmp(device, "display") == 0 ? RecordDisplayCampaign(&dev)
      : std::strcmp(device, "touch") == 0   ? RecordTouchCampaign(&dev)
                                            : Result<RecordCampaign>(Status::kInvalidArg);
  if (!campaign.ok()) {
    std::fprintf(stderr, "campaign failed: %s\n", StatusName(campaign.status()));
    return 1;
  }
  PackageSizes sizes;
  std::vector<uint8_t> sealed = campaign->Seal(format, kDeveloperKey, &sizes);
  std::ofstream of(out, std::ios::binary);
  if (!of.write(reinterpret_cast<const char*>(sealed.data()),
                static_cast<std::streamsize>(sealed.size()))) {
    std::fprintf(stderr, "cannot write %s\n", out);
    return 1;
  }
  std::printf("%zu templates, coverage: %s\n", campaign->templates().size(),
              campaign->CoverageReport().c_str());
  std::printf("wrote %s: %zu bytes (%s, %zu uncompressed)\n", out, sizes.sealed,
              format == PackageFormat::kBinary ? "binary" : "text", sizes.serialized);
  return 0;
}

int CmdInspect(const char* path) {
  Result<std::vector<uint8_t>> data = ReadFile(path);
  if (!data.ok()) {
    std::fprintf(stderr, "cannot read %s\n", path);
    return 1;
  }
  Result<DriverletPackage> pkg = OpenPackage(data->data(), data->size(), kDeveloperKey);
  if (!pkg.ok()) {
    std::fprintf(stderr, "%s: signature/integrity check FAILED\n", path);
    return 1;
  }
  std::printf("driverlet \"%s\": %zu templates, signature OK\n", pkg->driverlet.c_str(),
              pkg->templates.size());
  std::printf("coverage: %s\n", CoverageReport(ComputeCoverage(pkg->templates)).c_str());
  for (const auto& t : pkg->templates) {
    EventBreakdown b = t.CountEvents();
    std::printf("  %-12s entry=%-16s %4d in / %4d out / %3d meta\n", t.name.c_str(),
                t.entry.c_str(), b.input, b.output, b.meta);
  }
  return 0;
}

int CmdVerify(const char* path) {
  Result<std::vector<uint8_t>> data = ReadFile(path);
  if (!data.ok()) {
    std::fprintf(stderr, "cannot read %s\n", path);
    return 1;
  }
  Result<DriverletPackage> pkg = OpenPackage(data->data(), data->size(), kDeveloperKey);
  std::printf("%s: %s\n", path, pkg.ok() ? "OK" : "FAILED");
  return pkg.ok() ? 0 : 1;
}

// Prints the store's selection-cache and compile-cache counters in the same
// one-line-per-cache shape as the telemetry metrics summary.
void PrintCacheCounters(const TemplateStore& store) {
  std::printf("replay caches:\n");
  std::printf("  select cache : %llu hits / %llu misses / %llu evictions"
              " (%llu candidates scanned)\n",
              static_cast<unsigned long long>(store.select_cache_hits()),
              static_cast<unsigned long long>(store.select_cache_misses()),
              static_cast<unsigned long long>(store.select_cache_evictions()),
              static_cast<unsigned long long>(store.candidates_scanned()));
  std::printf("  compile cache: %llu hits / %llu misses / %llu evictions\n",
              static_cast<unsigned long long>(store.compile_cache_hits()),
              static_cast<unsigned long long>(store.compile_cache_misses()),
              static_cast<unsigned long long>(store.compile_cache_evictions()));
}

// Loads |path| into a deployment TEE and replays one covered request for its
// first entry. Shared by `smoke` (correctness check) and `trace` (telemetry,
// which also wants the replayer's cache counters).
int ReplayOnce(const char* path, bool print_caches = false) {
  Result<std::vector<uint8_t>> data = ReadFile(path);
  if (!data.ok()) {
    std::fprintf(stderr, "cannot read %s\n", path);
    return 1;
  }
  TestbedOptions opts;
  opts.secure_io = true;
  opts.probe_drivers = false;
  Rpi3Testbed machine{opts};
  Replayer replayer(&machine.tee(), kDeveloperKey);
  if (!Ok(replayer.LoadPackage(data->data(), data->size()))) {
    std::fprintf(stderr, "package rejected by the TEE\n");
    return 1;
  }
  const std::string entry = replayer.templates().front()->entry;
  std::printf("replaying entry %s on a simulated deployment machine...\n", entry.c_str());

  ReplayArgs args;
  std::vector<uint8_t> buf;
  std::vector<uint8_t> aux;
  if (entry == kTouchEntry) {
    // Touch is the one entry the shared table cannot drive: its covered
    // invoke consumes an injected input event.
    machine.touch().InjectTouch(100, 100, 1'000);
    buf.assign(4, 0);
    args.buffers["evt"] = BufferView{buf.data(), buf.size()};
  } else if (!CoveredArgsFor(entry, 0, &buf, &aux, &args)) {
    std::fprintf(stderr, "unknown entry %s\n", entry.c_str());
    return 1;
  }
  Result<ReplayStats> r = replayer.Invoke(entry, args);
  if (!r.ok()) {
    std::fprintf(stderr, "replay failed: %s\n", StatusName(r.status()));
    const DivergenceReport& rep = replayer.last_report();
    if (rep.valid) {
      std::fprintf(stderr, "  diverged at #%zu %s (recorded %s:%d)\n", rep.event_index,
                   rep.event_desc.c_str(), rep.file.c_str(), rep.line);
    }
    return 1;
  }
  std::printf("OK: template %s, %zu events replayed (%s engine, %llu bulk ops)\n",
              r->template_name.c_str(), r->events_executed,
              r->compiled ? "compiled" : "interpreter",
              static_cast<unsigned long long>(r->bulk_ops));
  if (print_caches) {
    PrintCacheCounters(replayer.store());
  }
  return 0;
}

int CmdTrace(int argc, char** argv) {
  const char* pkg = nullptr;
  const char* out = nullptr;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (pkg == nullptr) {
      pkg = argv[i];
    } else {
      return Usage();
    }
  }
  if (pkg == nullptr || out == nullptr) {
    return Usage();
  }

  Telemetry& tel = Telemetry::Get();
  tel.Enable(1 << 18);
  tel.Reset();
  int rc = ReplayOnce(pkg, /*print_caches=*/true);
  if (rc != 0) {
    return rc;  // even a failed replay leaves a trace; but keep the exit honest
  }

  std::vector<TraceEvent> events = tel.ring().Snapshot();
  std::ofstream of(out, std::ios::binary);
  if (!of) {
    std::fprintf(stderr, "cannot write %s\n", out);
    return 1;
  }
  ExportChromeTrace(events, &tel.metrics(), of);
  of.close();
  std::printf("wrote %s: %zu trace events (%llu dropped)\n", out, events.size(),
              static_cast<unsigned long long>(tel.ring().dropped()));
  std::printf("open in chrome://tracing or https://ui.perfetto.dev\n\n%s",
              tel.metrics().Summary().c_str());
  return 0;
}

// Lowers every template in the package through the replay compiler and prints
// the resulting program shape next to the static cost model, so a developer
// can see what the deployment TEE will actually run (and which templates fall
// back to the interpreter, and why that is cheap to tolerate).
int CmdCompile(int argc, char** argv) {
  const char* path = nullptr;
  bool dump = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dump") == 0) {
      dump = true;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      return Usage();
    }
  }
  if (path == nullptr) {
    return Usage();
  }
  Result<std::vector<uint8_t>> data = ReadFile(path);
  if (!data.ok()) {
    std::fprintf(stderr, "cannot read %s\n", path);
    return 1;
  }
  Result<DriverletPackage> pkg = OpenPackage(data->data(), data->size(), kDeveloperKey);
  if (!pkg.ok()) {
    std::fprintf(stderr, "%s: signature/integrity check FAILED\n", path);
    return 1;
  }
  std::printf("driverlet \"%s\": lowering %zu templates\n", pkg->driverlet.c_str(),
              pkg->templates.size());
  size_t fallbacks = 0;
  for (const auto& t : pkg->templates) {
    Result<std::shared_ptr<const CompiledProgram>> prog = CompileTemplate(&t);
    if (!prog.ok()) {
      std::printf("  %-12s entry=%-16s UNSUPPORTED (%s) -> interpreter fallback\n",
                  t.name.c_str(), t.entry.c_str(), StatusName(prog.status()));
      ++fallbacks;
      continue;
    }
    const CompiledProgram& p = **prog;
    size_t bulk = 0;
    for (const auto& op : p.ops) {
      if (op.code == COp::kShmReadBulk || op.code == COp::kShmWriteBulk) {
        ++bulk;
      }
    }
    std::printf("  %-12s entry=%-16s %4zu ops (%zu bulk, %zu words) %3zu atoms"
                " %4zu steps  model %llu -> %llu ns\n",
                t.name.c_str(), t.entry.c_str(), p.ops.size(), bulk, p.words.size(),
                p.atoms.size(), p.steps.size(),
                static_cast<unsigned long long>(p.StaticInterpNs()),
                static_cast<unsigned long long>(p.StaticCompiledNs()));
    if (dump) {
      std::printf("%s", p.Disassemble().c_str());
    }
  }
  if (fallbacks > 0) {
    std::printf("%zu template(s) will run on the interpreter\n", fallbacks);
  }
  return 0;
}

// Sweeps fault planes x driverlets x seeds through the recovery ladder and
// reports per-cell recovery rates (same engine as bench/fault_matrix).
int CmdFaultSweep(int argc, char** argv) {
  SeedRange seeds;
  int ops = 6;
  const char* out = nullptr;
  for (int i = 2; i < argc; ++i) {
    if (IsSeedRangeFlag(argv[i]) && i + 1 < argc) {
      const char* flag = argv[i];
      ApplySeedRangeFlag(&seeds, flag, argv[++i]);
    } else if (std::strcmp(argv[i], "--ops") == 0 && i + 1 < argc) {
      ops = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      return Usage();
    }
  }
  if (!seeds.valid() || ops < 1) {
    return Usage();
  }

  FaultMatrixConfig cfg;
  cfg.seeds = seeds.List();
  cfg.ops_per_cell = ops;
  cfg.driverlets = RegisteredDriverletClassNames();

  std::printf("fault sweep: %d seeds x 3 planes x %zu driverlets, %d ops/cell\n",
              seeds.count, cfg.driverlets.size(), ops);
  FaultMatrix m = RunFaultMatrix(cfg);
  PrintFaultMatrix(m, stdout);

  if (out != nullptr) {
    std::string json = FaultMatrixToJson(m);
    std::ofstream of(out, std::ios::binary);
    if (!of.write(json.data(), static_cast<std::streamsize>(json.size()))) {
      std::fprintf(stderr, "cannot write %s\n", out);
      return 1;
    }
    std::printf("wrote %s\n", out);
  }
  return 0;
}

// Re-executes a shrunk repro file through the self-relative invariants (no
// baseline: repro files carry no expected output bytes).
int CmdCheckRepro(const char* path) {
  Result<Repro> repro = ReadRepro(path);
  if (!repro.ok()) {
    std::fprintf(stderr, "cannot parse %s: %s\n", path, StatusName(repro.status()));
    return 2;
  }
  std::printf("repro %s: seed %llu, %zu events, recorded invariant '%s'\n", path,
              static_cast<unsigned long long>(repro->c.seed), repro->c.tpl.events.size(),
              repro->invariant.c_str());
  ConformanceOutcome outcome = RunConformance(repro->c, ReproInvariants());
  if (outcome.ok()) {
    std::printf("PASS: all %d invariants hold (the underlying bug is fixed)\n",
                outcome.invariants_run);
    return 0;
  }
  for (const auto& f : outcome.failures) {
    std::printf("FAIL %-20s %s\n", f.invariant.c_str(), f.detail.c_str());
  }
  return 1;
}

// Seeded conformance sweep; shrinks failures and writes repro files.
int CmdCheck(int argc, char** argv) {
  SeedRange seeds;
  seeds.count = 25;
  const char* out_dir = ".";
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--repro") == 0 && i + 1 < argc) {
      return CmdCheckRepro(argv[++i]);
    } else if (IsSeedRangeFlag(argv[i]) && i + 1 < argc) {
      const char* flag = argv[i];
      ApplySeedRangeFlag(&seeds, flag, argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else {
      return Usage();
    }
  }
  if (!seeds.valid()) {
    return Usage();
  }
  const int num_seeds = seeds.count;

  const std::vector<std::string> invariants = AllInvariants();
  std::printf("conformance sweep: %d seeds from %llu, %zu invariants each\n", num_seeds,
              static_cast<unsigned long long>(seeds.base), invariants.size());
  int failures = 0;
  for (uint64_t seed : seeds.List()) {
    GeneratedCase g = GenerateCase(seed);
    ConformanceOutcome outcome = RunConformance(g, invariants);
    if (outcome.ok()) {
      continue;
    }
    ++failures;
    for (const auto& f : outcome.failures) {
      std::printf("seed %llu FAIL %-20s %s\n", static_cast<unsigned long long>(seed),
                  f.invariant.c_str(), f.detail.c_str());
    }
    Result<ShrinkResult> shrunk = Shrink(g, invariants);
    std::string repro_path =
        std::string(out_dir) + "/conformance_seed" + std::to_string(seed) + ".repro";
    if (shrunk.ok()) {
      std::printf("  shrunk %zu -> %zu events in %d steps (invariant %s)\n",
                  shrunk->original_events, shrunk->reduced.tpl.events.size(), shrunk->steps,
                  shrunk->invariant.c_str());
      if (Ok(WriteRepro(repro_path, shrunk->reduced, shrunk->invariant))) {
        std::printf("  wrote %s\n", repro_path.c_str());
      } else {
        std::fprintf(stderr, "  cannot write %s\n", repro_path.c_str());
      }
    } else if (Ok(WriteRepro(repro_path, g, outcome.failures[0].invariant))) {
      std::printf("  wrote %s (unshrunk)\n", repro_path.c_str());
    }
  }
  std::printf("%d/%d seeds conform\n", num_seeds - failures, num_seeds);
  return failures == 0 ? 0 : 1;
}

// One invoke's worth of covered arguments for a driverlet entry; buffers live
// in |buf|/|aux| and must outlive the completion. Returns false for entries
// the fleet driver cannot synthesize load for (touch needs injected events).
// Delegates to the shared registry-backed table in deploy_util.h.
bool FleetArgsFor(const std::string& entry, int round, std::vector<uint8_t>* buf,
                  std::vector<uint8_t>* aux, ReplayArgs* args) {
  return CoveredArgsFor(entry, round, buf, aux, args);
}

int CmdFleet(int argc, char** argv) {
  std::vector<const char*> paths;
  size_t shards = 4;
  int invokes = 64;
  bool stealing = true;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--invokes") == 0 && i + 1 < argc) {
      invokes = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--no-steal") == 0) {
      stealing = false;
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (paths.empty() || shards == 0 || invokes <= 0) {
    return Usage();
  }

  ReplayFleetConfig cfg;
  cfg.shards = shards;
  cfg.stealing = stealing;
  ReplayFleet fleet(kDeveloperKey, cfg);
  std::vector<std::pair<std::string, std::string>> loaded;  // driverlet, entry
  for (const char* path : paths) {
    Result<std::vector<uint8_t>> data = ReadFile(path);
    if (!data.ok()) {
      std::fprintf(stderr, "cannot read %s\n", path);
      return 1;
    }
    Result<std::string> name = fleet.RegisterDriverlet(data->data(), data->size());
    if (!name.ok()) {
      std::fprintf(stderr, "%s rejected: %s\n", path, StatusName(name.status()));
      return 1;
    }
    auto tpls = fleet.shard_service(0).store().templates(*name);
    loaded.emplace_back(*name, tpls.front()->entry);
  }
  std::printf("fleet: %zu shard(s), %zu worker(s), stealing %s\n", fleet.shard_count(),
              fleet.thread_count(), stealing ? "on" : "off");

  // One session per package per shard; skip entries we cannot drive.
  struct Client {
    FleetSessionId sid;
    std::string entry;
    std::vector<uint8_t> buf, aux;
  };
  std::vector<Client> clients;
  for (const auto& [driverlet, entry] : loaded) {
    ReplayArgs probe;
    std::vector<uint8_t> b, a;
    if (!FleetArgsFor(entry, 0, &b, &a, &probe)) {
      std::printf("  %s: no synthetic load for entry %s, skipping\n", driverlet.c_str(),
                  entry.c_str());
      continue;
    }
    for (size_t sh = 0; sh < fleet.shard_count(); ++sh) {
      Result<FleetSessionId> sid = fleet.OpenSessionOn(sh, driverlet);
      if (!sid.ok()) {
        std::fprintf(stderr, "session open failed on shard %zu: %s\n", sh,
                     StatusName(sid.status()));
        return 1;
      }
      clients.push_back(Client{*sid, entry, {}, {}});
    }
  }
  if (clients.empty()) {
    std::fprintf(stderr, "no drivable sessions\n");
    return 1;
  }

  fleet.Start();
  // Rounds of one outstanding invoke per session: submit across every
  // session, then collect, so all shards stay busy without deep backlogs.
  int submitted = 0;
  int failures = 0;
  std::vector<uint64_t> reqs(clients.size(), 0);
  for (int round = 0; submitted < invokes; ++round) {
    for (size_t c = 0; c < clients.size() && submitted < invokes; ++c) {
      ReplayArgs args;
      if (!FleetArgsFor(clients[c].entry, round, &clients[c].buf, &clients[c].aux,
                        &args)) {
        continue;
      }
      Result<uint64_t> req = fleet.Submit(clients[c].sid, clients[c].entry, args);
      if (!req.ok()) {
        ++failures;
        reqs[c] = 0;
        continue;
      }
      reqs[c] = *req;
      ++submitted;
    }
    for (size_t c = 0; c < clients.size(); ++c) {
      if (reqs[c] != 0 && !fleet.WaitCompletion(reqs[c]).ok()) {
        ++failures;
      }
      reqs[c] = 0;
    }
  }
  fleet.Stop();

  FleetStats st = fleet.stats();
  std::printf("\n%d invokes, %d failures\n", submitted, failures);
  std::printf("shard  executed  stolen  busy-rejects  sessions\n");
  for (size_t i = 0; i < st.shards.size(); ++i) {
    const ShardStats& ss = st.shards[i];
    std::printf("%5zu  %8llu  %6llu  %12llu  %8zu\n", i,
                static_cast<unsigned long long>(ss.executed),
                static_cast<unsigned long long>(ss.stolen),
                static_cast<unsigned long long>(ss.busy_rejects), ss.open_sessions);
  }
  const Histogram& qw = fleet.queue_wait_us();
  std::printf("queue wait (wall-clock us): p50 %llu, p99 %llu, max %llu\n",
              static_cast<unsigned long long>(qw.Percentile(50)),
              static_cast<unsigned long long>(qw.Percentile(99)),
              static_cast<unsigned long long>(qw.max()));
  return failures == 0 ? 0 : 1;
}

// Drives one driverlet through the per-session invocation ring at several
// commands-per-doorbell sizes and prints the switch-amortization table
// (docs/replay_service.md). Each batch size runs on a fresh testbed so the
// virtual-clock and world-switch deltas are directly comparable.
int CmdRing(int argc, char** argv) {
  const char* path = nullptr;
  size_t count = 64;
  std::vector<size_t> batches = {1, 8, 64};
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--count") == 0 && i + 1 < argc) {
      count = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--batch") == 0 && i + 1 < argc) {
      batches.clear();
      for (char* tok = std::strtok(argv[++i], ","); tok != nullptr;
           tok = std::strtok(nullptr, ",")) {
        size_t b = static_cast<size_t>(std::atoi(tok));
        if (b == 0) {
          return Usage();
        }
        batches.push_back(b);
      }
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      return Usage();
    }
  }
  if (path == nullptr || count == 0 || batches.empty()) {
    return Usage();
  }
  Result<std::vector<uint8_t>> data = ReadFile(path);
  if (!data.ok()) {
    std::fprintf(stderr, "cannot read %s\n", path);
    return 1;
  }
  Telemetry::Get().Enable();  // ring.* gauges + queue-wait histogram

  int failures = 0;
  bool header = false;
  for (size_t batch : batches) {
    TestbedOptions opts;
    opts.secure_io = true;
    opts.probe_drivers = false;
    Rpi3Testbed tb{opts};
    ReplayServiceConfig cfg;
    cfg.ring_depth = batch;  // exactly one doorbell's worth of slots
    ReplayService svc(&tb.tee(), kDeveloperKey, cfg);
    Result<std::string> name = svc.RegisterDriverlet(data->data(), data->size());
    if (!name.ok()) {
      std::fprintf(stderr, "%s rejected: %s\n", path, StatusName(name.status()));
      return 1;
    }
    std::string entry = svc.store().templates(*name).front()->entry;
    Result<SessionId> sid = svc.OpenSession(*name);
    if (!sid.ok()) {
      return 1;
    }
    if (!header) {
      std::printf("ring amortization: %s/%s, %zu commands per configuration\n\n",
                  name->c_str(), entry.c_str(), count);
      std::printf("batch  doorbells  switches/cmd   us/cmd      wait p50/p99 us\n");
      header = true;
    }
    Histogram& wait = Telemetry::Get().metrics().histogram("ring.queue_wait_us");
    wait.Reset();
    std::vector<std::vector<uint8_t>> bufs(batch), auxs(batch);
    uint64_t sw0 = tb.tee().world_switches();
    uint64_t t0 = tb.clock().now_us();
    uint64_t doorbells = 0;
    size_t done = 0;
    while (done < count) {
      size_t n = batch < count - done ? batch : count - done;
      for (size_t j = 0; j < n; ++j) {
        ReplayArgs args;
        if (!FleetArgsFor(entry, static_cast<int>(done + j), &bufs[j], &auxs[j], &args)) {
          std::fprintf(stderr, "no synthetic load for entry %s\n", entry.c_str());
          return 1;
        }
        if (!svc.RingPush(*sid, entry, std::move(args)).ok()) {
          ++failures;
        }
      }
      Result<size_t> ran = svc.RingDoorbell(*sid);
      if (!ran.ok() || *ran != n) {
        ++failures;
      }
      ++doorbells;
      for (size_t j = 0; j < n; ++j) {
        Result<RingCompletion> c = svc.RingPop(*sid);
        if (!c.ok() || !c->result.ok()) {
          ++failures;
        }
      }
      done += n;
    }
    uint64_t switches = tb.tee().world_switches() - sw0;
    double us_per_cmd = static_cast<double>(tb.clock().now_us() - t0) / count;
    std::printf("%5zu  %9llu  %12.4f   %-9.1f   %llu/%llu\n", batch,
                static_cast<unsigned long long>(doorbells),
                static_cast<double>(switches) / count, us_per_cmd,
                static_cast<unsigned long long>(wait.Percentile(50)),
                static_cast<unsigned long long>(wait.Percentile(99)));
  }
  if (failures != 0) {
    std::fprintf(stderr, "%d command failures\n", failures);
  }
  return failures == 0 ? 0 : 1;
}

// Re-executes a shrunk boundary repro file (exit 0 = the bug is fixed).
int CmdFuzzRepro(const char* path) {
  Result<BoundaryRepro> repro = ReadBoundaryRepro(path);
  if (!repro.ok()) {
    std::fprintf(stderr, "cannot parse %s: %s\n", path, StatusName(repro.status()));
    return 2;
  }
  std::printf("repro %s: %zu actions, recorded invariant '%s'\n", path,
              repro->program.actions.size(), repro->invariant.c_str());
  BoundaryRunResult r = RunBoundaryProgram(repro->program);
  if (r.ok()) {
    std::printf("PASS: every boundary invariant holds (the underlying bug is fixed)\n");
    return 0;
  }
  std::printf("FAIL %-18s %s\n", r.invariant.c_str(), r.detail.c_str());
  return 1;
}

void PrintFuzzStats(const BoundaryFuzzStats& st) {
  std::printf("%d mutants run, corpus %zu programs, %zu coverage features\n", st.runs,
              st.corpus_size, st.features);
  std::printf("coverage curve:");
  for (size_t v : st.coverage_curve) {
    std::printf(" %zu", v);
  }
  std::printf("\n");
  for (const BoundaryFinding& f : st.findings) {
    std::printf("FAIL %-18s %s\n", f.invariant.c_str(), f.detail.c_str());
    std::printf("  shrunk %zu -> %zu actions in %d steps\n", f.program.actions.size(),
                f.shrunk.actions.size(), f.shrink_steps);
    if (!f.repro_path.empty()) {
      std::printf("  wrote %s\n", f.repro_path.c_str());
    }
  }
}

// Coverage-guided boundary fuzz: a clean campaign over the real service, then
// (unless --no-plant) a short campaign with the planted ring wrap bug armed —
// the regression guard that the fuzzer can still find and shrink a violation.
int CmdFuzz(int argc, char** argv) {
  BoundaryFuzzConfig cfg;
  cfg.repro_dir = ".";
  bool plant = true;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--repro") == 0 && i + 1 < argc) {
      return CmdFuzzRepro(argv[++i]);
    } else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      cfg.seconds = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      cfg.iterations = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      cfg.seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      cfg.repro_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--no-plant") == 0) {
      plant = false;
    } else {
      return Usage();
    }
  }
  if (cfg.seconds <= 0 && cfg.iterations <= 0) {
    return Usage();
  }

  if (cfg.iterations > 0) {
    std::printf("boundary fuzz: %d mutants, seed %llu\n", cfg.iterations,
                static_cast<unsigned long long>(cfg.seed));
  } else {
    std::printf("boundary fuzz: %.1f s budget, seed %llu\n", cfg.seconds,
                static_cast<unsigned long long>(cfg.seed));
  }
  BoundaryFuzzStats clean = RunBoundaryFuzz(cfg);
  PrintFuzzStats(clean);
  int rc = clean.findings.empty() ? 0 : 1;
  if (rc == 0) {
    std::printf("no boundary violations\n");
  }

  if (plant) {
    std::printf("\nregression guard: planted ring wrap-around reap bug\n");
    BoundaryFuzzConfig pcfg;
    pcfg.seed = cfg.seed;
    pcfg.iterations = 8;
    pcfg.max_findings = 1;
    pcfg.plant_ring_quirk = true;
    pcfg.repro_dir = cfg.repro_dir;
    BoundaryFuzzStats planted = RunBoundaryFuzz(pcfg);
    bool found = false;
    for (const BoundaryFinding& f : planted.findings) {
      if (f.invariant != "ring-order") {
        continue;
      }
      found = true;
      std::printf("found: %s\n  shrunk %zu -> %zu actions in %d steps\n", f.detail.c_str(),
                  f.program.actions.size(), f.shrunk.actions.size(), f.shrink_steps);
      if (!f.repro_path.empty()) {
        std::printf("  wrote %s\n", f.repro_path.c_str());
      }
    }
    if (found) {
      std::printf("planted bug found and shrunk -- the fuzzer still has teeth\n");
    } else {
      std::fprintf(stderr, "planted bug NOT found -- the fuzzer lost its teeth\n");
      rc = 1;
    }
  }
  return rc;
}

// Loads a package into a deployment TEE, drives a few invokes, and prints +
// re-verifies the session's signed attestation quote.
int CmdAttest(int argc, char** argv) {
  const char* path = nullptr;
  const char* nonce = "driverletc-nonce";
  int invokes = 3;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--nonce") == 0 && i + 1 < argc) {
      nonce = argv[++i];
    } else if (std::strcmp(argv[i], "--invokes") == 0 && i + 1 < argc) {
      invokes = std::atoi(argv[++i]);
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      return Usage();
    }
  }
  if (path == nullptr || invokes < 0) {
    return Usage();
  }
  Result<std::vector<uint8_t>> data = ReadFile(path);
  if (!data.ok()) {
    std::fprintf(stderr, "cannot read %s\n", path);
    return 1;
  }
  Deployment d = MakeDeployment(*data);
  if (d.session == 0) {
    return 1;
  }
  const std::string entry = d.service->store().templates(d.driverlet).front()->entry;
  int failures = 0;
  std::vector<uint8_t> buf, aux;
  for (int i = 0; i < invokes; ++i) {
    ReplayArgs args;
    if (!FleetArgsFor(entry, i, &buf, &aux, &args)) {
      std::fprintf(stderr, "no synthetic load for entry %s\n", entry.c_str());
      return 1;
    }
    if (!d.service->Invoke(d.session, entry, args).ok()) {
      ++failures;
    }
  }
  Result<AttestationQuote> q = d.service->Attest(d.session, nonce);
  if (!q.ok()) {
    std::fprintf(stderr, "attest failed: %s\n", StatusName(q.status()));
    return 1;
  }
  std::printf("%s", SerializeQuote(*q).c_str());
  bool sig_ok = VerifyQuote(*q, kDeveloperKey);
  std::printf("signature %s under the developer key\n", sig_ok ? "VERIFIED" : "INVALID");
  return sig_ok && failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "faultsweep") == 0) {
    return CmdFaultSweep(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "check") == 0) {
    return CmdCheck(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "fuzz") == 0) {
    return CmdFuzz(argc, argv);
  }
  if (argc < 3) {
    return Usage();
  }
  if (std::strcmp(argv[1], "record") == 0) {
    return CmdRecord(argc, argv);
  }
  if (std::strcmp(argv[1], "inspect") == 0) {
    return CmdInspect(argv[2]);
  }
  if (std::strcmp(argv[1], "verify") == 0) {
    return CmdVerify(argv[2]);
  }
  if (std::strcmp(argv[1], "smoke") == 0) {
    return ReplayOnce(argv[2]);
  }
  if (std::strcmp(argv[1], "trace") == 0) {
    return CmdTrace(argc, argv);
  }
  if (std::strcmp(argv[1], "compile") == 0) {
    return CmdCompile(argc, argv);
  }
  if (std::strcmp(argv[1], "fleet") == 0) {
    return CmdFleet(argc, argv);
  }
  if (std::strcmp(argv[1], "ring") == 0) {
    return CmdRing(argc, argv);
  }
  if (std::strcmp(argv[1], "attest") == 0) {
    return CmdAttest(argc, argv);
  }
  return Usage();
}
