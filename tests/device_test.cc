// Device-model and gold-driver tests: MMC controller + SD card FSM, DWC2 +
// mass storage, VC4/VCHIQ camera — exercised natively (developer machine).
#include <gtest/gtest.h>

#include "src/workload/rpi3_testbed.h"
#include "src/workload/deploy_util.h"

namespace dlt {
namespace {

class NativeDeviceTest : public ::testing::Test {
 protected:
  NativeDeviceTest() : tb_(TestbedOptions{}) {}
  Rpi3Testbed tb_;
};

TEST_F(NativeDeviceTest, MmcProbeEnumeratesCard) {
  // Probe ran in the fixture; the card must be in transfer state with an RCA.
  EXPECT_EQ(SdCard::State::kTran, tb_.sd_card().state());
  EXPECT_NE(0, tb_.sd_card().rca());
}

TEST_F(NativeDeviceTest, MmcWriteReadDataIntegrity) {
  std::vector<uint8_t> data = PatternBuf(32 * 512, 0x99);
  ASSERT_EQ(Status::kOk, tb_.mmc_driver().WriteBlocks(512, 32, data.data()));
  std::vector<uint8_t> readback(32 * 512, 0);
  ASSERT_EQ(Status::kOk, tb_.mmc_driver().ReadBlocks(512, 32, readback.data()));
  EXPECT_EQ(data, readback);
  EXPECT_EQ(32u, tb_.sd_medium().sectors_written());
}

class MmcTransferSizeTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(MmcTransferSizeTest, RoundTripsAtEveryGranularity) {
  // Property sweep over transfer sizes, including non-recorded ones: the gold
  // driver itself must handle arbitrary counts.
  Rpi3Testbed tb{TestbedOptions{}};
  uint32_t count = GetParam();
  std::vector<uint8_t> data = PatternBuf(count * 512, count);
  ASSERT_EQ(Status::kOk, tb.mmc_driver().WriteBlocks(1024, count, data.data()));
  std::vector<uint8_t> readback(count * 512ull, 0);
  ASSERT_EQ(Status::kOk, tb.mmc_driver().ReadBlocks(1024, count, readback.data()));
  EXPECT_EQ(data, readback);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MmcTransferSizeTest,
                         ::testing::Values(1, 2, 3, 7, 8, 9, 16, 31, 32, 33, 64, 100, 128, 200,
                                           256));

TEST_F(NativeDeviceTest, MmcDirectPioPathWorks) {
  // O_DIRECT flag: "the full driver shifts individual words of data blocks
  // from/to SDDATA" (paper §6.1.3 path 1).
  std::vector<uint8_t> data = PatternBuf(8 * 512, 0x31);
  ASSERT_EQ(Status::kOk,
            tb_.mmc_driver().Transfer(TValue(kMmcRwWrite), TValue(8), TValue(2048),
                                      TValue(kMmcFlagDirect), data.data(), data.size()));
  std::vector<uint8_t> readback(8 * 512, 0);
  ASSERT_EQ(Status::kOk,
            tb_.mmc_driver().Transfer(TValue(kMmcRwRead), TValue(8), TValue(2048),
                                      TValue(kMmcFlagDirect), readback.data(), readback.size()));
  EXPECT_EQ(data, readback);
}

TEST_F(NativeDeviceTest, MmcMisalignedRejectedByDriver) {
  std::vector<uint8_t> data(512);
  EXPECT_EQ(Status::kInvalidArg, tb_.mmc_driver().ReadBlocks(3, 1, data.data()));
}

TEST_F(NativeDeviceTest, MmcCardStatusReflectsFsm) {
  SdCard& card = tb_.sd_card();
  uint32_t st = card.StatusWord();
  EXPECT_EQ(static_cast<uint32_t>(SdCard::State::kTran), (st >> kSdStateShift) & 0xf);
  EXPECT_TRUE(st & kSdStatusReadyForData);
}

TEST_F(NativeDeviceTest, MmcIllegalCommandFlagged) {
  SdCard::CmdResult r = tb_.sd_card().Command(39, 0);
  EXPECT_TRUE(r.accepted);
  EXPECT_TRUE(r.response & kSdStatusIllegalCmd);
}

TEST_F(NativeDeviceTest, MmcSoftResetClearsResidueState) {
  // Leave residue: start a read and abandon it.
  auto& mem = tb_.machine().mem();
  ASSERT_EQ(Status::kOk, mem.Write32(World::kNormal, kMmcBase + kSdHblc, 1));
  ASSERT_EQ(Status::kOk, mem.Write32(World::kNormal, kMmcBase + kSdArg, 0));
  ASSERT_EQ(Status::kOk, mem.Write32(World::kNormal, kMmcBase + kSdCmd, kSdCmdNewFlag | 17));
  tb_.clock().Advance(100'000);
  EXPECT_NE(0u, *mem.Read32(World::kNormal, kMmcBase + kSdEdm) & 0xfff0);
  tb_.mmc().SoftReset();
  uint32_t edm = *mem.Read32(World::kNormal, kMmcBase + kSdEdm);
  EXPECT_EQ(kSdEdmStateIdle, edm & 0xf);
  EXPECT_EQ(0u, (edm >> kSdEdmFifoShift) & kSdEdmFifoMask);
  EXPECT_EQ(SdCard::State::kTran, tb_.sd_card().state());
}

TEST_F(NativeDeviceTest, UsbProbeEnumeratesStick) {
  EXPECT_EQ(1, tb_.usb_storage().usb_address());
  EXPECT_EQ(1, tb_.usb_storage().configuration());
}

TEST_F(NativeDeviceTest, UsbWriteReadDataIntegrity) {
  std::vector<uint8_t> data = PatternBuf(64 * 512, 0x55);
  ASSERT_EQ(Status::kOk, tb_.usb_driver().WriteBlocks(256, 64, data.data()));
  std::vector<uint8_t> readback(64 * 512, 0);
  ASSERT_EQ(Status::kOk, tb_.usb_driver().ReadBlocks(256, 64, readback.data()));
  EXPECT_EQ(data, readback);
}

TEST_F(NativeDeviceTest, UsbSubLbaWritePreservesNeighbours) {
  std::vector<uint8_t> base = PatternBuf(8 * 512, 0x66);
  ASSERT_EQ(Status::kOk, tb_.usb_driver().WriteBlocks(64, 8, base.data()));
  std::vector<uint8_t> two = PatternBuf(2 * 512, 0x77);
  ASSERT_EQ(Status::kOk, tb_.usb_driver().WriteBlocks(64, 2, two.data()));
  std::vector<uint8_t> readback(8 * 512, 0);
  ASSERT_EQ(Status::kOk, tb_.usb_driver().ReadBlocks(64, 8, readback.data()));
  EXPECT_TRUE(std::equal(two.begin(), two.end(), readback.begin()));
  EXPECT_TRUE(std::equal(base.begin() + 1024, base.end(), readback.begin() + 1024));
}

TEST_F(NativeDeviceTest, UsbHfnumAdvancesWithTime) {
  auto& mem = tb_.machine().mem();
  uint32_t a = *mem.Read32(World::kNormal, kUsbBase + kHfNum);
  tb_.clock().Advance(1250);
  uint32_t b = *mem.Read32(World::kNormal, kUsbBase + kHfNum);
  EXPECT_NE(a, b);  // the time-derived statistic input (paper §6.2.3)
}

TEST_F(NativeDeviceTest, UsbDisconnectFailsTransfersWithXactErr) {
  tb_.usb_storage().set_connected(false);
  std::vector<uint8_t> data(512);
  EXPECT_NE(Status::kOk, tb_.usb_driver().ReadBlocks(0, 1, data.data()));
  tb_.usb_storage().set_connected(true);
}

TEST_F(NativeDeviceTest, CameraSerialCaptureProducesFrames) {
  std::vector<uint8_t> buf(Vc4Firmware::FrameBytes(1080) + 4096);
  std::vector<uint8_t> img_size(4);
  Status s = tb_.cam_driver().Capture(TValue(2), TValue(1080), buf.data(), buf.size(),
                                      TValue(buf.size()), img_size.data());
  ASSERT_EQ(Status::kOk, s);
  EXPECT_EQ(2u, tb_.vc4().frames_produced());
  uint32_t size = 0;
  std::memcpy(&size, img_size.data(), 4);
  EXPECT_EQ(Vc4Firmware::FrameBytes(1080), size);
  EXPECT_EQ(0xff, buf[0]);
  EXPECT_EQ(0xd8, buf[1]);
}

TEST_F(NativeDeviceTest, CameraPipelinedModeCoalescesIrqs) {
  // Native streaming: many frames, fewer doorbell interrupts per frame than
  // the serial path (paper §7.3.2: "the native driver processes coalesced IRQs").
  TestbedOptions serial_opts;
  Rpi3Testbed serial_tb{serial_opts};
  std::vector<uint8_t> buf(Vc4Firmware::FrameBytes(720) + 4096);
  std::vector<uint8_t> img_size(4);
  ASSERT_EQ(Status::kOk,
            serial_tb.cam_driver().Capture(TValue(10), TValue(720), buf.data(), buf.size(),
                                           TValue(buf.size()), img_size.data()));
  uint64_t serial_irqs = serial_tb.machine().irq().raise_count(kMailboxIrq);
  uint64_t serial_us = serial_tb.clock().now_us();

  TestbedOptions pipe_opts;
  pipe_opts.pipelined_camera = true;
  Rpi3Testbed pipe_tb{pipe_opts};
  ASSERT_EQ(Status::kOk,
            pipe_tb.cam_driver().Capture(TValue(10), TValue(720), buf.data(), buf.size(),
                                         TValue(buf.size()), img_size.data()));
  uint64_t pipe_irqs = pipe_tb.machine().irq().raise_count(kMailboxIrq);
  uint64_t pipe_us = pipe_tb.clock().now_us();

  EXPECT_EQ(10u, pipe_tb.vc4().frames_produced());
  EXPECT_LE(pipe_irqs, serial_irqs);
  EXPECT_LT(pipe_us, serial_us);  // pipelining beats serial wall-clock
}

TEST_F(NativeDeviceTest, CameraFramesDifferAcrossSequence) {
  std::vector<uint8_t> a = Vc4Firmware::MakeFrame(0, 720);
  std::vector<uint8_t> b = Vc4Firmware::MakeFrame(1, 720);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, Vc4Firmware::MakeFrame(0, 720));  // deterministic
}

TEST_F(NativeDeviceTest, Vc4SoftResetDropsSessionState) {
  std::vector<uint8_t> buf(Vc4Firmware::FrameBytes(720) + 4096);
  std::vector<uint8_t> img_size(4);
  ASSERT_EQ(Status::kOk, tb_.cam_driver().Capture(TValue(1), TValue(720), buf.data(), buf.size(),
                                                  TValue(buf.size()), img_size.data()));
  tb_.vc4().SoftReset();
  // After reset a capture without a new handshake cannot work; a full new
  // session (fresh queue + handshake) must.
  tb_.kern_io().ReleaseDma();
  ASSERT_EQ(Status::kOk, tb_.cam_driver().Capture(TValue(1), TValue(720), buf.data(), buf.size(),
                                                  TValue(buf.size()), img_size.data()));
}

TEST_F(NativeDeviceTest, BlockMediumSparseBacking) {
  BlockMedium medium(40'000'000);  // 40M sectors, no memory committed
  std::vector<uint8_t> sector(512, 0xab);
  ASSERT_EQ(Status::kOk, medium.WriteSector(39'999'999, sector.data()));
  std::vector<uint8_t> readback(512);
  ASSERT_EQ(Status::kOk, medium.ReadSector(39'999'999, readback.data()));
  EXPECT_EQ(sector, readback);
  ASSERT_EQ(Status::kOk, medium.ReadSector(12'345, readback.data()));
  EXPECT_EQ(std::vector<uint8_t>(512, 0), readback);
  EXPECT_EQ(Status::kOutOfRange, medium.ReadSector(40'000'000, readback.data()));
}

}  // namespace
}  // namespace dlt
