// End-to-end USB mass-storage driverlet tests (paper §6.2).
#include <gtest/gtest.h>

#include "src/core/replayer.h"
#include "src/workload/record_campaigns.h"
#include "src/workload/rpi3_testbed.h"
#include "src/workload/deploy_util.h"

namespace dlt {
namespace {

class UsbDriverletTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dev_machine_ = new Rpi3Testbed(TestbedOptions{});
    Result<RecordCampaign> campaign = RecordUsbCampaign(dev_machine_);
    ASSERT_TRUE(campaign.ok()) << StatusName(campaign.status());
    campaign_ = new RecordCampaign(std::move(*campaign));
    sealed_ = new std::vector<uint8_t>(campaign_->Seal(PackageFormat::kText, kDeveloperKey));
  }
  static void TearDownTestSuite() {
    delete campaign_;
    delete dev_machine_;
    delete sealed_;
  }

  void SetUp() override {
    TestbedOptions opts;
    opts.secure_io = true;
    opts.probe_drivers = false;
    deploy_ = std::make_unique<Rpi3Testbed>(opts);
    replayer_ = std::make_unique<Replayer>(&deploy_->tee(), kDeveloperKey);
    ASSERT_EQ(Status::kOk, replayer_->LoadPackage(sealed_->data(), sealed_->size()));
  }

  Result<ReplayStats> Replay(uint64_t rw, uint64_t blkcnt, uint64_t blkid, uint8_t* buf) {
    ReplayArgs args;
    args.scalars = {{"rw", rw}, {"blkcnt", blkcnt}, {"blkid", blkid}, {"flag", 0}};
    args.buffers["buf"] = BufferView{buf, static_cast<size_t>(blkcnt) * 512};
    return replayer_->Invoke(kUsbEntry, args);
  }

  static Rpi3Testbed* dev_machine_;
  static RecordCampaign* campaign_;
  static std::vector<uint8_t>* sealed_;
  std::unique_ptr<Rpi3Testbed> deploy_;
  std::unique_ptr<Replayer> replayer_;
};

Rpi3Testbed* UsbDriverletTest::dev_machine_ = nullptr;
RecordCampaign* UsbDriverletTest::campaign_ = nullptr;
std::vector<uint8_t>* UsbDriverletTest::sealed_ = nullptr;

TEST_F(UsbDriverletTest, CampaignProducesTenTemplates) {
  EXPECT_EQ(10u, campaign_->templates().size());
}

TEST_F(UsbDriverletTest, ReadAndWriteTemplatesHaveSimilarEventCounts) {
  // Paper §6.2.2: "the number of events are identical in a read template and
  // the corresponding write template" modulo descriptor values. Our write path
  // differs only by the sub-LBA RMW branch; whole-LBA templates match closely.
  auto find = [&](const std::string& name) -> const InteractionTemplate* {
    for (const auto& t : campaign_->templates()) {
      if (t.name == name) {
        return &t;
      }
    }
    return nullptr;
  };
  const InteractionTemplate* rd8 = find("RD_8");
  const InteractionTemplate* wr8 = find("WR_8");
  ASSERT_NE(nullptr, rd8);
  ASSERT_NE(nullptr, wr8);
  EXPECT_NEAR(rd8->CountEvents().total(), wr8->CountEvents().total(), 3);
}

TEST_F(UsbDriverletTest, WriteReadRoundTrip) {
  std::vector<uint8_t> data = PatternBuf(8 * 512, 0xdead);
  Result<ReplayStats> wr = Replay(kMmcRwWrite, 8, 800, data.data());
  ASSERT_TRUE(wr.ok()) << StatusName(wr.status());
  std::vector<uint8_t> readback(8 * 512, 0);
  Result<ReplayStats> rd = Replay(kMmcRwRead, 8, 800, readback.data());
  ASSERT_TRUE(rd.ok()) << StatusName(rd.status());
  EXPECT_EQ(data, readback);
}

TEST_F(UsbDriverletTest, SubLbaWriteUsesReadModifyWrite) {
  // Seed sectors 0..7 with a known pattern natively on the developer machine?
  // No — do it through the driverlet itself: write 8 sectors, then a 1-sector
  // driverlet write must preserve the other 7 (the RMW path, §6.2.3).
  std::vector<uint8_t> base = PatternBuf(8 * 512, 0x10);
  ASSERT_TRUE(Replay(kMmcRwWrite, 8, 1600, base.data()).ok());
  std::vector<uint8_t> one = PatternBuf(512, 0x22);
  Result<ReplayStats> wr1 = Replay(kMmcRwWrite, 1, 1600, one.data());
  ASSERT_TRUE(wr1.ok()) << StatusName(wr1.status());
  EXPECT_EQ("WR_1", wr1->template_name);
  std::vector<uint8_t> readback(8 * 512, 0);
  ASSERT_TRUE(Replay(kMmcRwRead, 8, 1600, readback.data()).ok());
  EXPECT_TRUE(std::equal(one.begin(), one.end(), readback.begin()));
  EXPECT_TRUE(std::equal(base.begin() + 512, base.end(), readback.begin() + 512));
}

TEST_F(UsbDriverletTest, CswTagRoundTripTolerated) {
  // The CBW serial number differs between record and replay (it derives from
  // timekeeping); the CSW echo check must still pass — non-state-changing
  // statistic inputs are tolerated in a principled way (paper §3, §6.2.3).
  std::vector<uint8_t> data = PatternBuf(512, 0x5a);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(Replay(kMmcRwWrite, 1, 2400, data.data()).ok()) << i;
  }
}

TEST_F(UsbDriverletTest, LargeTransfersCoverWholeStick) {
  std::vector<uint8_t> data = PatternBuf(256 * 512, 0x7);
  uint64_t far_lba = kUsbSectors - 256;
  Result<ReplayStats> wr = Replay(kMmcRwWrite, 256, far_lba, data.data());
  ASSERT_TRUE(wr.ok()) << StatusName(wr.status());
  EXPECT_EQ("WR_256", wr->template_name);
  std::vector<uint8_t> readback(256 * 512, 0);
  ASSERT_TRUE(Replay(kMmcRwRead, 256, far_lba, readback.data()).ok());
  EXPECT_EQ(data, readback);
}

TEST_F(UsbDriverletTest, TemplatesContainScsiCommandsInCbw) {
  // Static vetting of templates (paper §7.2 "statically vetting"): the CBW
  // descriptor writes must carry READ(10)/WRITE(10) opcodes in byte 15.
  bool saw_read10 = false;
  bool saw_write10 = false;
  for (const auto& t : campaign_->templates()) {
    for (const auto& e : t.events) {
      if (e.kind != EventKind::kShmWrite || e.value == nullptr || !e.value->is_const()) {
        continue;
      }
      uint32_t op = static_cast<uint32_t>(e.value->constant() >> 24);
      if (op == 0x28) {
        saw_read10 = true;
      }
      if (op == 0x2a) {
        saw_write10 = true;
      }
    }
  }
  EXPECT_TRUE(saw_read10);
  EXPECT_TRUE(saw_write10);
}

TEST_F(UsbDriverletTest, UncoveredCountRejected) {
  std::vector<uint8_t> data(48 * 512, 0);
  Result<ReplayStats> r = Replay(kMmcRwRead, 48, 0, data.data());
  EXPECT_EQ(Status::kNoTemplate, r.status());
}

}  // namespace
}  // namespace dlt
