// The paper's two MMC state-transition paths w.r.t. flags (§6.1.3): with
// O_DIRECT the full driver shifts individual words through SDDATA; otherwise it
// uses DMA. Both are recordable and replayable; templates recorded with one
// flag value do not cover the other.
#include <gtest/gtest.h>

#include "src/core/record_session.h"
#include "src/core/replayer.h"
#include "src/workload/record_campaigns.h"
#include "src/workload/rpi3_testbed.h"
#include "src/workload/deploy_util.h"

namespace dlt {
namespace {

Result<InteractionTemplate> RecordDirectRun(Rpi3Testbed* tb, const std::string& name, uint64_t rw,
                                            uint64_t blkcnt) {
  tb->ResetDevices();
  tb->kern_io().ReleaseDma();
  RecordSession sess(&tb->kern_io(), kMmcEntry, name, tb->mmc_id());
  TValue rw_v = sess.ScalarParam("rw", rw);
  TValue cnt_v = sess.ScalarParam("blkcnt", blkcnt);
  TValue id_v = sess.ScalarParam("blkid", 4096);
  TValue flag_v = sess.ScalarParam("flag", kMmcFlagDirect);
  std::vector<uint8_t> buf = PatternBuf(blkcnt * 512, 0xd1);
  sess.BufferParam("buf", buf.data(), buf.size());
  BcmSdhostDriver driver(&sess, tb->mmc_config());
  Status s = driver.Transfer(rw_v, cnt_v, id_v, flag_v, buf.data(), buf.size());
  if (!Ok(s)) {
    return s;
  }
  return sess.Finish();
}

TEST(DirectPathTest, DirectTemplatesUsePioNotDma) {
  Rpi3Testbed tb{TestbedOptions{}};
  Result<InteractionTemplate> t = RecordDirectRun(&tb, "RD_direct_8", kMmcRwRead, 8);
  ASSERT_TRUE(t.ok()) << StatusName(t.status());
  int pio = 0;
  int dma_allocs = 0;
  for (const auto& e : t->events) {
    if (e.kind == EventKind::kPioIn || e.kind == EventKind::kPioOut) {
      ++pio;
    }
    if (e.kind == EventKind::kDmaAlloc) {
      ++dma_allocs;
    }
  }
  EXPECT_GT(pio, 0);
  EXPECT_EQ(0, dma_allocs);  // path (1): no descriptor chains, pure SDDATA words
  // Selection constraint pins the flag.
  EXPECT_FALSE(*t->initial.Eval(Bindings{
      {"rw", kMmcRwRead}, {"blkcnt", 8}, {"blkid", 0}, {"flag", 0}}));
  EXPECT_TRUE(*t->initial.Eval(Bindings{
      {"rw", kMmcRwRead}, {"blkcnt", 8}, {"blkid", 0}, {"flag", kMmcFlagDirect}}));
}

TEST(DirectPathTest, BothPathsReplayAndRoundTrip) {
  // Record a 4-template mini-campaign: DMA and O_DIRECT variants of RD/WR_8.
  Rpi3Testbed dev{TestbedOptions{}};
  RecordCampaign campaign("mmc-dual");
  Result<InteractionTemplate> rd_dma = RecordMmcRun(&dev, "RD_8", kMmcRwRead, 8, 2048);
  Result<InteractionTemplate> wr_dma = RecordMmcRun(&dev, "WR_8", kMmcRwWrite, 8, 2048);
  Result<InteractionTemplate> rd_dir = RecordDirectRun(&dev, "RD_direct_8", kMmcRwRead, 8);
  Result<InteractionTemplate> wr_dir = RecordDirectRun(&dev, "WR_direct_8", kMmcRwWrite, 8);
  ASSERT_TRUE(rd_dma.ok() && wr_dma.ok() && rd_dir.ok() && wr_dir.ok());
  EXPECT_TRUE(campaign.AddTemplate(std::move(*rd_dma)));
  EXPECT_TRUE(campaign.AddTemplate(std::move(*wr_dma)));
  EXPECT_TRUE(campaign.AddTemplate(std::move(*rd_dir)));  // distinct transition path
  EXPECT_TRUE(campaign.AddTemplate(std::move(*wr_dir)));
  std::vector<uint8_t> pkg = campaign.Seal(PackageFormat::kText, kDeveloperKey);

  TestbedOptions opts;
  opts.secure_io = true;
  opts.probe_drivers = false;
  Rpi3Testbed deploy{opts};
  Replayer replayer(&deploy.tee(), kDeveloperKey);
  ASSERT_EQ(Status::kOk, replayer.LoadPackage(pkg.data(), pkg.size()));

  for (uint64_t flag : {uint64_t{0}, kMmcFlagDirect}) {
    std::vector<uint8_t> data = PatternBuf(8 * 512, 0xe0 + flag);
    ReplayArgs args;
    args.scalars = {{"rw", kMmcRwWrite}, {"blkcnt", 8}, {"blkid", 512 + flag * 64}, {"flag", flag}};
    args.buffers["buf"] = BufferView{data.data(), data.size()};
    Result<ReplayStats> wr = replayer.Invoke(kMmcEntry, args);
    ASSERT_TRUE(wr.ok()) << "flag=" << flag << ": " << StatusName(wr.status());
    EXPECT_EQ(flag == 0 ? "WR_8" : "WR_direct_8", wr->template_name);

    std::vector<uint8_t> readback(8 * 512, 0);
    args.scalars["rw"] = kMmcRwRead;
    args.buffers["buf"] = BufferView{readback.data(), readback.size()};
    Result<ReplayStats> rd = replayer.Invoke(kMmcEntry, args);
    ASSERT_TRUE(rd.ok()) << "flag=" << flag;
    EXPECT_EQ(flag == 0 ? "RD_8" : "RD_direct_8", rd->template_name);
    EXPECT_EQ(data, readback) << "flag=" << flag;
  }
}

TEST(DirectPathTest, InterleavedDriverletsOnDistinctDevices) {
  // A storage trustlet and a UI trustlet take turns; their replayers drive
  // different device instances with no cross interference.
  std::vector<uint8_t> mmc_pkg;
  std::vector<uint8_t> disp_pkg;
  {
    Rpi3Testbed dev{TestbedOptions{}};
    Result<RecordCampaign> m = RecordMmcCampaign(&dev);
    Result<RecordCampaign> d = RecordDisplayCampaign(&dev);
    ASSERT_TRUE(m.ok() && d.ok());
    mmc_pkg = m->Seal(PackageFormat::kText, kDeveloperKey);
    disp_pkg = d->Seal(PackageFormat::kText, kDeveloperKey);
  }
  TestbedOptions opts;
  opts.secure_io = true;
  opts.probe_drivers = false;
  Rpi3Testbed deploy{opts};
  Replayer mmc(&deploy.tee(), kDeveloperKey);
  Replayer disp(&deploy.tee(), kDeveloperKey);
  ASSERT_EQ(Status::kOk, mmc.LoadPackage(mmc_pkg.data(), mmc_pkg.size()));
  ASSERT_EQ(Status::kOk, disp.LoadPackage(disp_pkg.data(), disp_pkg.size()));

  std::vector<uint8_t> block = PatternBuf(512, 1);
  std::vector<uint8_t> bitmap(32 * 32 * 4, 0x99);
  for (int i = 0; i < 4; ++i) {
    ReplayArgs a;
    a.scalars = {{"rw", kMmcRwWrite}, {"blkcnt", 1}, {"blkid", static_cast<uint64_t>(i) * 8},
                 {"flag", 0}};
    a.buffers["buf"] = BufferView{block.data(), block.size()};
    ASSERT_TRUE(mmc.Invoke(kMmcEntry, a).ok()) << i;

    ReplayArgs b;
    b.scalars = {{"x", static_cast<uint64_t>(i) * 40}, {"y", 0}, {"w", 32}, {"h", 32}};
    b.buffers["buf"] = BufferView{bitmap.data(), bitmap.size()};
    ASSERT_TRUE(disp.Invoke(kDisplayEntry, b).ok()) << i;
  }
  std::vector<uint8_t> readback(512, 0);
  ReplayArgs a;
  a.scalars = {{"rw", kMmcRwRead}, {"blkcnt", 1}, {"blkid", 8}, {"flag", 0}};
  a.buffers["buf"] = BufferView{readback.data(), readback.size()};
  ASSERT_TRUE(mmc.Invoke(kMmcEntry, a).ok());
  EXPECT_EQ(block, readback);
  EXPECT_EQ(0x99999999u, deploy.display().PanelPixel(40, 0));
}

}  // namespace
}  // namespace dlt
