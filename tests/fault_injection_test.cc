// Fault injection (paper §7.2): unplug the storage medium amid a replay run,
// disconnect the camera sensor, and verify divergence detection, reset-based
// retry, bounded give-up, and the rewound report with recording sites.
#include <gtest/gtest.h>

#include "src/core/replayer.h"
#include "src/workload/record_campaigns.h"
#include "src/workload/rpi3_testbed.h"
#include "src/workload/deploy_util.h"

namespace dlt {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rpi3Testbed dev{TestbedOptions{}};
    Result<RecordCampaign> mmc = RecordMmcCampaign(&dev);
    ASSERT_TRUE(mmc.ok());
    mmc_pkg_ = new std::vector<uint8_t>(mmc->Seal(PackageFormat::kText, kDeveloperKey));
    Rpi3Testbed dev2{TestbedOptions{}};
    Result<RecordCampaign> cam = RecordCameraCampaign(&dev2);
    ASSERT_TRUE(cam.ok());
    cam_pkg_ = new std::vector<uint8_t>(cam->Seal(PackageFormat::kText, kDeveloperKey));
  }
  static void TearDownTestSuite() {
    delete mmc_pkg_;
    delete cam_pkg_;
  }

  void SetUp() override {
    TestbedOptions opts;
    opts.secure_io = true;
    opts.probe_drivers = false;
    deploy_ = std::make_unique<Rpi3Testbed>(opts);
  }

  static std::vector<uint8_t>* mmc_pkg_;
  static std::vector<uint8_t>* cam_pkg_;
  std::unique_ptr<Rpi3Testbed> deploy_;
};

std::vector<uint8_t>* FaultInjectionTest::mmc_pkg_ = nullptr;
std::vector<uint8_t>* FaultInjectionTest::cam_pkg_ = nullptr;

TEST_F(FaultInjectionTest, UnpluggedMediumDetectedWithReportAndSourceLines) {
  Replayer replayer(&deploy_->tee(), kDeveloperKey);
  ASSERT_EQ(Status::kOk, replayer.LoadPackage(mmc_pkg_->data(), mmc_pkg_->size()));

  // Unplug the card. The injected failure is persistent: the driverlet detects
  // the divergence, re-executes with reset, and eventually gives up.
  deploy_->sd_medium().set_present(false);
  std::vector<uint8_t> buf(256 * 512, 0);
  ReplayArgs args;
  args.scalars = {{"rw", kMmcRwRead}, {"blkcnt", 256}, {"blkid", 2048}, {"flag", 0}};
  args.buffers["buf"] = BufferView{buf.data(), buf.size()};
  Result<ReplayStats> r = replayer.Invoke(kMmcEntry, args);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(Status::kAborted, r.status());

  const DivergenceReport& report = replayer.last_report();
  EXPECT_TRUE(report.valid);
  EXPECT_EQ("RD_256", report.template_name);
  // The report names the recording site in the gold driver.
  EXPECT_NE(std::string::npos, report.file.find("bcm_sdhost_driver.cc"));
  EXPECT_GT(report.line, 0);
  // ... and the rewound event prefix, oldest first (paper §5).
  EXPECT_FALSE(report.rewound.empty());
  EXPECT_GE(replayer.total_resets(), 3u);  // reset before each of the attempts
}

TEST_F(FaultInjectionTest, TransientFaultRecoversByReset) {
  Replayer replayer(&deploy_->tee(), kDeveloperKey);
  ASSERT_EQ(Status::kOk, replayer.LoadPackage(mmc_pkg_->data(), mmc_pkg_->size()));

  // First execution diverges (card gone); before the retry the medium returns.
  // The soft reset recovers from the transient failure (paper §3.3 cause 2/3).
  deploy_->sd_medium().set_present(false);
  std::vector<uint8_t> buf(8 * 512, 0);
  ReplayArgs args;
  args.scalars = {{"rw", kMmcRwRead}, {"blkcnt", 8}, {"blkid", 64}, {"flag", 0}};
  args.buffers["buf"] = BufferView{buf.data(), buf.size()};

  // Use a one-shot hook: re-plug after the first divergence by running the
  // first attempt manually with max_attempts=1, then restoring the medium.
  replayer.set_max_attempts(1);
  Result<ReplayStats> first = replayer.Invoke(kMmcEntry, args);
  EXPECT_EQ(Status::kAborted, first.status());
  deploy_->sd_medium().set_present(true);
  replayer.set_max_attempts(3);
  Result<ReplayStats> second = replayer.Invoke(kMmcEntry, args);
  EXPECT_TRUE(second.ok()) << StatusName(second.status());
}

TEST_F(FaultInjectionTest, CameraSensorLossDivergesAndAborts) {
  Replayer replayer(&deploy_->tee(), kDeveloperKey);
  ASSERT_EQ(Status::kOk, replayer.LoadPackage(cam_pkg_->data(), cam_pkg_->size()));
  deploy_->vc4().set_sensor_connected(false);

  std::vector<uint8_t> buf(Vc4Firmware::FrameBytes(1440) + 4096);
  std::vector<uint8_t> img_size(4, 0);
  ReplayArgs args;
  args.scalars = {{"frame", 1}, {"resolution", 720}, {"buf_size", buf.size()}};
  args.buffers["buf"] = BufferView{buf.data(), buf.size()};
  args.buffers["img_size"] = BufferView{img_size.data(), img_size.size()};
  Result<ReplayStats> r = replayer.Invoke(kCameraEntry, args);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(Status::kAborted, r.status());
  EXPECT_TRUE(replayer.last_report().valid);
}

TEST_F(FaultInjectionTest, WriteFaultDoesNotCorruptOtherSectors) {
  Replayer replayer(&deploy_->tee(), kDeveloperKey);
  ASSERT_EQ(Status::kOk, replayer.LoadPackage(mmc_pkg_->data(), mmc_pkg_->size()));

  std::vector<uint8_t> data = PatternBuf(8 * 512, 0x42);
  ReplayArgs args;
  args.scalars = {{"rw", kMmcRwWrite}, {"blkcnt", 8}, {"blkid", 128}, {"flag", 0}};
  args.buffers["buf"] = BufferView{data.data(), data.size()};
  ASSERT_TRUE(replayer.Invoke(kMmcEntry, args).ok());

  deploy_->sd_medium().set_present(false);
  std::vector<uint8_t> other = PatternBuf(8 * 512, 0x43);
  args.scalars["blkid"] = 256;
  args.buffers["buf"] = BufferView{other.data(), other.size()};
  EXPECT_FALSE(replayer.Invoke(kMmcEntry, args).ok());
  deploy_->sd_medium().set_present(true);

  std::vector<uint8_t> readback(8 * 512, 0);
  args.scalars = {{"rw", kMmcRwRead}, {"blkcnt", 8}, {"blkid", 128}, {"flag", 0}};
  args.buffers["buf"] = BufferView{readback.data(), readback.size()};
  ASSERT_TRUE(replayer.Invoke(kMmcEntry, args).ok());
  EXPECT_EQ(data, readback);
}

}  // namespace
}  // namespace dlt
