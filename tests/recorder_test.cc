// Recorder-internals tests: raw event capture, taint sinks, path-condition
// attachment, state-changing classification, loop lifting, template merging,
// the differ, and coverage computation.
#include <gtest/gtest.h>

#include "src/core/differ.h"
#include "src/core/record_session.h"
#include "src/core/template_builder.h"
#include "src/workload/record_campaigns.h"
#include "src/workload/rpi3_testbed.h"

namespace dlt {
namespace {

// A tiny scripted "driver" against the testbed's MMC controller, to exercise
// the recorder in isolation from the real gold drivers.
class RecorderTest : public ::testing::Test {
 protected:
  RecorderTest() : tb_(TestbedOptions{.secure_io = false, .probe_drivers = false}) {}
  Rpi3Testbed tb_;
};

TEST_F(RecorderTest, TaintReachesSinkWithOperations) {
  RecordSession sess(&tb_.kern_io(), "entry", "t", tb_.mmc_id());
  TValue blkid = sess.ScalarParam("blkid", 42);
  sess.RegWrite32(tb_.mmc_id(), kSdArg, blkid & ~TValue(0x7), DLT_HERE);
  Result<InteractionTemplate> t = sess.Finish();
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(1u, t->events.size());
  const TemplateEvent& e = t->events[0];
  EXPECT_EQ(EventKind::kRegWrite, e.kind);
  // The accumulated taint operations (paper Table 4: SDARG = bid & (~0x7)).
  std::set<std::string> inputs;
  e.value->CollectInputs(&inputs);
  EXPECT_EQ(1u, inputs.count("blkid"));
  Bindings b{{"blkid", 96}};
  EXPECT_EQ(96u, *e.value->Eval(b));
  Bindings b2{{"blkid", 43}};
  EXPECT_EQ(40u, *e.value->Eval(b2));
}

TEST_F(RecorderTest, ParamPathConditionsBecomeInitialConstraints) {
  RecordSession sess(&tb_.kern_io(), "entry", "t", tb_.mmc_id());
  TValue blkcnt = sess.ScalarParam("blkcnt", 6);
  bool small = sess.Branch(blkcnt, Cmp::kLe, TValue(8), DLT_HERE);
  EXPECT_TRUE(small);
  Result<InteractionTemplate> t = sess.Finish();
  ASSERT_TRUE(t.ok());
  Bindings in{{"blkcnt", 7}};
  Bindings out{{"blkcnt", 9}};
  EXPECT_TRUE(*t->initial.Eval(in));
  EXPECT_FALSE(*t->initial.Eval(out));
}

TEST_F(RecorderTest, FalseBranchesRecordNegatedConditions) {
  RecordSession sess(&tb_.kern_io(), "entry", "t", tb_.mmc_id());
  TValue blkcnt = sess.ScalarParam("blkcnt", 20);
  EXPECT_FALSE(sess.Branch(blkcnt, Cmp::kLe, TValue(8), DLT_HERE));
  Result<InteractionTemplate> t = sess.Finish();
  ASSERT_TRUE(t.ok());
  EXPECT_FALSE(*t->initial.Eval(Bindings{{"blkcnt", 5}}));
  EXPECT_TRUE(*t->initial.Eval(Bindings{{"blkcnt", 30}}));
}

TEST_F(RecorderTest, DeviceInputBranchMarksStateChanging) {
  RecordSession sess(&tb_.kern_io(), "entry", "t", tb_.mmc_id());
  TValue hsts = sess.RegRead32(tb_.mmc_id(), kSdHsts, DLT_HERE);
  (void)sess.Branch(hsts & TValue(kSdHstsErrorMask), Cmp::kEq, TValue(0), DLT_HERE);
  // Another read never branched on: not state-changing (e.g. HFNUM-like).
  (void)sess.RegRead32(tb_.mmc_id(), kSdEdm, DLT_HERE);
  Result<InteractionTemplate> t = sess.Finish();
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(2u, t->events.size());
  EXPECT_TRUE(t->events[0].state_changing);
  EXPECT_FALSE(t->events[0].constraint.empty());
  EXPECT_FALSE(t->events[1].state_changing);
  EXPECT_TRUE(t->events[1].constraint.empty());
}

TEST_F(RecorderTest, DmaAllocIsAlwaysStateChanging) {
  RecordSession sess(&tb_.kern_io(), "entry", "t", tb_.mmc_id());
  (void)sess.DmaAlloc(TValue(4096), DLT_HERE);
  Result<InteractionTemplate> t = sess.Finish();
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(1u, t->events.size());
  EXPECT_EQ(EventKind::kDmaAlloc, t->events[0].kind);
  EXPECT_TRUE(t->events[0].state_changing);
}

TEST_F(RecorderTest, RecordingSitesArePreserved) {
  RecordSession sess(&tb_.kern_io(), "entry", "t", tb_.mmc_id());
  sess.RegWrite32(tb_.mmc_id(), kSdVdd, TValue(1), SourceLoc{"my_driver.cc", 123});
  Result<InteractionTemplate> t = sess.Finish();
  ASSERT_TRUE(t.ok());
  EXPECT_EQ("my_driver.cc", t->events[0].file);
  EXPECT_EQ(123, t->events[0].line);
}

TEST(LoopLiftTest, CollapsesRepeatedReadDelayPattern) {
  // Synthesize a raw log: 3 failing shm reads (value != want) + terminal.
  std::vector<TemplateEvent> events;
  for (int i = 0; i < 4; ++i) {
    TemplateEvent rd;
    rd.kind = EventKind::kShmRead;
    rd.addr = Expr::Binary(ExprOp::kAdd, Expr::Input("dma0"), Expr::Const(0x10));
    rd.bind = "din" + std::to_string(i);
    ConstraintAtom atom{Expr::Input(rd.bind), i == 3 ? Cmp::kGt : Cmp::kLe, Expr::Const(0)};
    rd.constraint.AddAtom(atom);
    rd.state_changing = true;
    events.push_back(rd);
    if (i != 3) {
      TemplateEvent d;
      d.kind = EventKind::kDelay;
      d.value = Expr::Const(50);
      events.push_back(d);
    }
  }
  TemplateEvent tail;
  tail.kind = EventKind::kRegWrite;
  tail.device = 9;
  tail.value = Expr::Const(1);
  events.push_back(tail);

  int lifted = LiftPollingLoops(&events);
  EXPECT_EQ(1, lifted);
  ASSERT_EQ(2u, events.size());
  const TemplateEvent& poll = events[0];
  EXPECT_EQ(EventKind::kPollShm, poll.kind);
  EXPECT_EQ(Cmp::kGt, poll.poll_cmp);
  EXPECT_EQ(0u, poll.want);
  EXPECT_EQ(50u, poll.interval_us);
  EXPECT_EQ(4u, poll.recorded_iters);
  EXPECT_EQ("din3", poll.bind);  // terminal value may feed later events
  EXPECT_EQ(EventKind::kRegWrite, events[1].kind);
}

TEST(LoopLiftTest, SingleSuccessfulReadIsNotCollapsed) {
  std::vector<TemplateEvent> events;
  TemplateEvent rd;
  rd.kind = EventKind::kShmRead;
  rd.addr = Expr::Input("dma0");
  rd.bind = "din0";
  rd.constraint.AddAtom(ConstraintAtom{Expr::Input("din0"), Cmp::kGt, Expr::Const(0)});
  events.push_back(rd);
  EXPECT_EQ(0, LiftPollingLoops(&events));
  EXPECT_EQ(1u, events.size());
}

TEST(LoopLiftTest, ConsecutiveChecksWithSamePolarityNotALoop) {
  std::vector<TemplateEvent> events;
  for (int i = 0; i < 3; ++i) {
    TemplateEvent rd;
    rd.kind = EventKind::kRegRead;
    rd.device = 1;
    rd.reg_off = 0x20;
    rd.bind = "din" + std::to_string(i);
    rd.constraint.AddAtom(ConstraintAtom{Expr::Input(rd.bind), Cmp::kEq, Expr::Const(1)});
    events.push_back(rd);
  }
  EXPECT_EQ(0, LiftPollingLoops(&events));
  EXPECT_EQ(3u, events.size());
}

TEST_F(RecorderTest, DifferDetectsStateTransitionDivergence) {
  // Two record runs with blkcnt on the same side of the 8-block boundary take
  // the same path; crossing the boundary changes DMA allocations (§4.2 I).
  Result<InteractionTemplate> t5 = RecordMmcRun(&tb_, "A", kMmcRwRead, 5, 2048);
  ASSERT_TRUE(t5.ok());
  RawRecording raw5;  // TransitionSignature needs raw events: re-record.
  {
    tb_.ResetDevices();
    tb_.kern_io().ReleaseDma();
    RecordSession s(&tb_.kern_io(), kMmcEntry, "A", tb_.mmc_id());
    TValue rw = s.ScalarParam("rw", kMmcRwRead);
    TValue cnt = s.ScalarParam("blkcnt", 5);
    TValue id = s.ScalarParam("blkid", 2048);
    TValue fl = s.ScalarParam("flag", 0);
    std::vector<uint8_t> buf(5 * 512);
    s.BufferParam("buf", buf.data(), buf.size());
    BcmSdhostDriver d(&s, tb_.mmc_config());
    ASSERT_EQ(Status::kOk, d.Transfer(rw, cnt, id, fl, buf.data(), buf.size()));
    raw5 = s.raw();
  }
  RawRecording raw7;
  {
    tb_.ResetDevices();
    tb_.kern_io().ReleaseDma();
    RecordSession s(&tb_.kern_io(), kMmcEntry, "B", tb_.mmc_id());
    TValue rw = s.ScalarParam("rw", kMmcRwRead);
    TValue cnt = s.ScalarParam("blkcnt", 7);
    TValue id = s.ScalarParam("blkid", 4096);
    TValue fl = s.ScalarParam("flag", 0);
    std::vector<uint8_t> buf(7 * 512);
    s.BufferParam("buf", buf.data(), buf.size());
    BcmSdhostDriver d(&s, tb_.mmc_config());
    ASSERT_EQ(Status::kOk, d.Transfer(rw, cnt, id, fl, buf.data(), buf.size()));
    raw7 = s.raw();
  }
  RawRecording raw12;
  {
    tb_.ResetDevices();
    tb_.kern_io().ReleaseDma();
    RecordSession s(&tb_.kern_io(), kMmcEntry, "C", tb_.mmc_id());
    TValue rw = s.ScalarParam("rw", kMmcRwRead);
    TValue cnt = s.ScalarParam("blkcnt", 12);
    TValue id = s.ScalarParam("blkid", 2048);
    TValue fl = s.ScalarParam("flag", 0);
    std::vector<uint8_t> buf(12 * 512);
    s.BufferParam("buf", buf.data(), buf.size());
    BcmSdhostDriver d(&s, tb_.mmc_config());
    ASSERT_EQ(Status::kOk, d.Transfer(rw, cnt, id, fl, buf.data(), buf.size()));
    raw12 = s.raw();
  }
  // Same region (5 vs 7 blocks, different addresses): same transition path.
  EXPECT_TRUE(SameTransitionPath(raw5, raw7));
  // Crossing the page boundary (12 blocks): divergent path.
  EXPECT_FALSE(SameTransitionPath(raw5, raw12));
}

TEST_F(RecorderTest, MergeableTemplatesAreDeduplicated) {
  RecordCampaign campaign("mmc");
  Result<InteractionTemplate> a = RecordMmcRun(&tb_, "RD_8", kMmcRwRead, 5, 2048);
  ASSERT_TRUE(a.ok());
  Result<InteractionTemplate> b = RecordMmcRun(&tb_, "RD_8b", kMmcRwRead, 7, 8192);
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(campaign.AddTemplate(std::move(*a)));
  EXPECT_FALSE(campaign.AddTemplate(std::move(*b)));  // same transition path
  EXPECT_EQ(1u, campaign.templates().size());
}

TEST_F(RecorderTest, FailedRecordRunDoesNotYieldTemplate) {
  tb_.ResetDevices();
  tb_.sd_medium().set_present(false);
  RecordSession s(&tb_.kern_io(), kMmcEntry, "bad", tb_.mmc_id());
  TValue rw = s.ScalarParam("rw", kMmcRwRead);
  TValue cnt = s.ScalarParam("blkcnt", 1);
  TValue id = s.ScalarParam("blkid", 0);
  TValue fl = s.ScalarParam("flag", 0);
  std::vector<uint8_t> buf(512);
  s.BufferParam("buf", buf.data(), buf.size());
  BcmSdhostDriver d(&s, tb_.mmc_config());
  EXPECT_NE(Status::kOk, d.Transfer(rw, cnt, id, fl, buf.data(), buf.size()));
  tb_.sd_medium().set_present(true);
}

TEST_F(RecorderTest, CoverageReportIsHumanReadable) {
  Result<RecordCampaign> campaign = RecordMmcCampaign(&tb_);
  ASSERT_TRUE(campaign.ok());
  std::string report = campaign->CoverageReport();
  // e.g. "blkcnt in [0x1, 0x8] U ..., blkid in [...], rw in {0x1} U {0x10}".
  EXPECT_NE(std::string::npos, report.find("blkcnt"));
  EXPECT_NE(std::string::npos, report.find("rw"));
  EXPECT_NE(std::string::npos, report.find("blkid"));
}

}  // namespace
}  // namespace dlt
