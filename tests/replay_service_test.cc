// ReplayService + TemplateStore tests: multi-package loading, session routing
// and per-session stats, admission policy, bounded FIFO queue semantics, and
// the buffer-view const-correctness at the service boundary.
#include <gtest/gtest.h>

#include "src/core/template_store.h"
#include "src/tee/replay_service.h"
#include "src/workload/record_campaigns.h"
#include "src/workload/rpi3_testbed.h"
#include "src/workload/deploy_util.h"

namespace dlt {
namespace {

std::vector<uint8_t> Record(Result<RecordCampaign> (*campaign)(Rpi3Testbed*)) {
  Rpi3Testbed dev{TestbedOptions{}};
  Result<RecordCampaign> c = campaign(&dev);
  return c.ok() ? c->Seal(PackageFormat::kText, kDeveloperKey) : std::vector<uint8_t>{};
}

class ReplayServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    mmc_ = new std::vector<uint8_t>(Record(RecordMmcCampaign));
    usb_ = new std::vector<uint8_t>(Record(RecordUsbCampaign));
    ASSERT_FALSE(mmc_->empty());
    ASSERT_FALSE(usb_->empty());
  }
  static void TearDownTestSuite() {
    delete mmc_;
    delete usb_;
  }

  void SetUp() override {
    TestbedOptions opts;
    opts.secure_io = true;
    opts.probe_drivers = false;
    tb_ = std::make_unique<Rpi3Testbed>(opts);
  }

  ReplayArgs BlockArgs(uint64_t rw, uint64_t blkcnt, std::vector<uint8_t>* buf) {
    buf->assign(blkcnt * 512, 0xa5);
    ReplayArgs args;
    args.scalars = {{"rw", rw}, {"blkcnt", blkcnt}, {"blkid", 2048}, {"flag", 0}};
    args.buffers["buf"] = BufferView{buf->data(), buf->size()};
    return args;
  }

  static std::vector<uint8_t>* mmc_;
  static std::vector<uint8_t>* usb_;
  std::unique_ptr<Rpi3Testbed> tb_;
};

std::vector<uint8_t>* ReplayServiceTest::mmc_ = nullptr;
std::vector<uint8_t>* ReplayServiceTest::usb_ = nullptr;

TEST_F(ReplayServiceTest, MultiPackageLoadNoOverwrite) {
  ReplayService svc(&tb_->tee(), kDeveloperKey);
  Result<std::string> mmc = svc.RegisterDriverlet(mmc_->data(), mmc_->size());
  ASSERT_TRUE(mmc.ok());
  EXPECT_EQ("mmc", *mmc);
  size_t mmc_count = svc.store().template_count();
  ASSERT_GT(mmc_count, 0u);

  Result<std::string> usb = svc.RegisterDriverlet(usb_->data(), usb_->size());
  ASSERT_TRUE(usb.ok());
  EXPECT_EQ("usb", *usb);
  // Loading a second package extends the population; the first survives.
  EXPECT_EQ(2u, svc.store().package_count());
  size_t both = svc.store().template_count();
  EXPECT_GT(both, mmc_count);
  EXPECT_TRUE(svc.store().HasDriverlet("mmc"));
  EXPECT_TRUE(svc.store().HasDriverlet("usb"));

  // Re-registering a driverlet replaces only its own templates.
  ASSERT_TRUE(svc.RegisterDriverlet(mmc_->data(), mmc_->size()).ok());
  EXPECT_EQ(2u, svc.store().package_count());
  EXPECT_EQ(both, svc.store().template_count());
  EXPECT_FALSE(svc.store().templates("usb").empty());
}

TEST_F(ReplayServiceTest, RoutesEntriesToTheRightPackage) {
  ReplayService svc(&tb_->tee(), kDeveloperKey);
  ASSERT_TRUE(svc.RegisterDriverlet(mmc_->data(), mmc_->size()).ok());
  ASSERT_TRUE(svc.RegisterDriverlet(usb_->data(), usb_->size()).ok());
  Result<SessionId> mmc = svc.OpenSession("mmc");
  Result<SessionId> usb = svc.OpenSession("usb");
  ASSERT_TRUE(mmc.ok());
  ASSERT_TRUE(usb.ok());

  std::vector<uint8_t> buf;
  EXPECT_TRUE(svc.Invoke(*mmc, kMmcEntry, BlockArgs(kMmcRwRead, 8, &buf)).ok());
  EXPECT_TRUE(svc.Invoke(*usb, kUsbEntry, BlockArgs(kMmcRwRead, 8, &buf)).ok());
  // Selection is scoped to the session's driverlet: an MMC session cannot
  // reach USB templates even though both live in the same store.
  Result<ReplayStats> cross = svc.Invoke(*mmc, kUsbEntry, BlockArgs(kMmcRwRead, 8, &buf));
  EXPECT_EQ(Status::kNoTemplate, cross.status());
}

TEST_F(ReplayServiceTest, ThreeSessionsKeepSeparateStats) {
  // One SecureWorld, one service, two packages, three concurrently open
  // sessions — the acceptance shape for the session refactor.
  ReplayService svc(&tb_->tee(), kDeveloperKey);
  ASSERT_TRUE(svc.RegisterDriverlet(mmc_->data(), mmc_->size()).ok());
  ASSERT_TRUE(svc.RegisterDriverlet(usb_->data(), usb_->size()).ok());
  Result<SessionId> a = svc.OpenSession("mmc");
  Result<SessionId> b = svc.OpenSession("mmc");
  Result<SessionId> c = svc.OpenSession("usb");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(3u, svc.open_sessions());
  EXPECT_NE(*a, *b);

  std::vector<uint8_t> buf;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(svc.Invoke(*a, kMmcEntry, BlockArgs(kMmcRwWrite, 1, &buf)).ok());
  }
  ASSERT_TRUE(svc.Invoke(*b, kMmcEntry, BlockArgs(kMmcRwRead, 8, &buf)).ok());
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(svc.Invoke(*c, kUsbEntry, BlockArgs(kMmcRwRead, 32, &buf)).ok());
  }

  Result<SessionStats> sa = svc.Stats(*a);
  Result<SessionStats> sb = svc.Stats(*b);
  Result<SessionStats> sc = svc.Stats(*c);
  ASSERT_TRUE(sa.ok() && sb.ok() && sc.ok());
  EXPECT_EQ(3u, sa->invokes);
  EXPECT_EQ(1u, sb->invokes);
  EXPECT_EQ(2u, sc->invokes);
  EXPECT_EQ("mmc", sa->driverlet);
  EXPECT_EQ("usb", sc->driverlet);
  EXPECT_EQ(3u, sa->per_template.at("WR_1"));
  EXPECT_EQ(1u, sb->per_template.at("RD_8"));
  EXPECT_EQ(0u, sa->failures);

  // Failures are charged to the offending session only.
  std::vector<uint8_t> tiny(512);
  ReplayArgs bad;
  bad.scalars = {{"rw", kMmcRwRead}};  // uncovered input
  bad.buffers["buf"] = BufferView{tiny.data(), tiny.size()};
  EXPECT_FALSE(svc.Invoke(*b, kMmcEntry, bad).ok());
  EXPECT_EQ(1u, svc.Stats(*b)->failures);
  EXPECT_EQ(0u, svc.Stats(*a)->failures);
  EXPECT_EQ(0u, svc.Stats(*c)->failures);
}

TEST_F(ReplayServiceTest, SessionLifecycleAndCapacity) {
  ReplayServiceConfig cfg;
  cfg.max_sessions = 2;
  ReplayService svc(&tb_->tee(), kDeveloperKey, cfg);
  ASSERT_TRUE(svc.RegisterDriverlet(mmc_->data(), mmc_->size()).ok());

  EXPECT_EQ(Status::kNotFound, svc.OpenSession("gpu").status());
  Result<SessionId> a = svc.OpenSession("mmc");
  Result<SessionId> b = svc.OpenSession("mmc");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(Status::kBusy, svc.OpenSession("mmc").status());

  EXPECT_EQ(Status::kOk, svc.CloseSession(*a));
  EXPECT_EQ(Status::kNotFound, svc.CloseSession(*a));  // already closed
  EXPECT_EQ(Status::kNotFound, svc.Stats(*a).status());
  EXPECT_TRUE(svc.OpenSession("mmc").ok());  // slot freed

  std::vector<uint8_t> buf;
  Result<ReplayStats> r = svc.Invoke(*a, kMmcEntry, BlockArgs(kMmcRwRead, 1, &buf));
  EXPECT_EQ(Status::kNotFound, r.status());  // closed session cannot invoke
}

TEST_F(ReplayServiceTest, AdmissionRejectsPackageForUnmappedDevices) {
  // Firmware did not assign devices to the TEE: registration must refuse the
  // package before any template becomes selectable.
  Rpi3Testbed open_machine{TestbedOptions{.secure_io = false, .probe_drivers = false}};
  ReplayService svc(&open_machine.tee(), kDeveloperKey);
  Result<std::string> r = svc.RegisterDriverlet(mmc_->data(), mmc_->size());
  EXPECT_EQ(Status::kPermissionDenied, r.status());
  EXPECT_EQ(0u, svc.registered_driverlets());
  EXPECT_EQ(0u, svc.store().template_count());
}

TEST_F(ReplayServiceTest, AdmissionRejectsTamperedPackage) {
  ReplayService svc(&tb_->tee(), kDeveloperKey);
  std::vector<uint8_t> bad = *mmc_;
  bad[bad.size() / 2] ^= 0x10;
  EXPECT_EQ(Status::kCorrupt, svc.RegisterDriverlet(bad.data(), bad.size()).status());
  EXPECT_FALSE(svc.IsRegistered("mmc"));
}

TEST_F(ReplayServiceTest, QueueIsFifoAndBounded) {
  ReplayServiceConfig cfg;
  cfg.queue_depth = 2;
  ReplayService svc(&tb_->tee(), kDeveloperKey, cfg);
  ASSERT_TRUE(svc.RegisterDriverlet(mmc_->data(), mmc_->size()).ok());
  Result<SessionId> sid = svc.OpenSession("mmc");
  ASSERT_TRUE(sid.ok());

  // Queued args borrow the submitter's buffers; keep them alive per request.
  std::vector<uint8_t> b1, b2, b3;
  Result<uint64_t> r1 = svc.Submit(*sid, kMmcEntry, BlockArgs(kMmcRwWrite, 1, &b1));
  Result<uint64_t> r2 = svc.Submit(*sid, kMmcEntry, BlockArgs(kMmcRwRead, 8, &b2));
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(2u, svc.queue_backlog());
  // Bounded: the third submission is refused with explicit backpressure.
  EXPECT_EQ(Status::kBusy, svc.Submit(*sid, kMmcEntry, BlockArgs(kMmcRwRead, 1, &b3)).status());

  // Completions are not available before processing.
  EXPECT_EQ(Status::kNotFound, svc.TakeCompletion(*r1).status());

  // FIFO: processing one request completes the oldest submission.
  EXPECT_EQ(1u, svc.ProcessQueued(1));
  EXPECT_TRUE(svc.TakeCompletion(*r1).ok());
  EXPECT_EQ(Status::kNotFound, svc.TakeCompletion(*r2).status());
  EXPECT_EQ(1u, svc.ProcessQueued());
  Result<ReplayStats> done = svc.TakeCompletion(*r2);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ("RD_8", done->template_name);
  // Each completion is taken exactly once.
  EXPECT_EQ(Status::kNotFound, svc.TakeCompletion(*r2).status());
  EXPECT_EQ(0u, svc.queue_backlog());
  EXPECT_EQ(2u, svc.Stats(*sid)->submitted);
}

TEST_F(ReplayServiceTest, RequestsOfClosedSessionCompleteAsNotFound) {
  ReplayService svc(&tb_->tee(), kDeveloperKey);
  ASSERT_TRUE(svc.RegisterDriverlet(mmc_->data(), mmc_->size()).ok());
  Result<SessionId> sid = svc.OpenSession("mmc");
  ASSERT_TRUE(sid.ok());
  std::vector<uint8_t> buf;
  Result<uint64_t> req = svc.Submit(*sid, kMmcEntry, BlockArgs(kMmcRwWrite, 1, &buf));
  ASSERT_TRUE(req.ok());
  ASSERT_EQ(Status::kOk, svc.CloseSession(*sid));
  EXPECT_EQ(1u, svc.ProcessQueued());
  EXPECT_EQ(Status::kNotFound, svc.TakeCompletion(*req).status());
}

TEST_F(ReplayServiceTest, ReadOnlyBufferViewIsEnforced) {
  // A write-path template only reads the caller's buffer, so a read-only view
  // suffices; a read-path template must be refused before it scribbles on it.
  ReplayService svc(&tb_->tee(), kDeveloperKey);
  ASSERT_TRUE(svc.RegisterDriverlet(mmc_->data(), mmc_->size()).ok());
  Result<SessionId> sid = svc.OpenSession("mmc");
  ASSERT_TRUE(sid.ok());

  std::vector<uint8_t> payload = PatternBuf(8 * 512, 7);
  ReplayArgs wr;
  wr.scalars = {{"rw", kMmcRwWrite}, {"blkcnt", 8}, {"blkid", 64}, {"flag", 0}};
  wr.ro_buffers["buf"] = ConstBufferView{payload.data(), payload.size()};
  EXPECT_TRUE(svc.Invoke(*sid, kMmcEntry, wr).ok());

  ReplayArgs rd;
  rd.scalars = {{"rw", kMmcRwRead}, {"blkcnt", 8}, {"blkid", 64}, {"flag", 0}};
  rd.ro_buffers["buf"] = ConstBufferView{payload.data(), payload.size()};
  Result<ReplayStats> r = svc.Invoke(*sid, kMmcEntry, rd);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(Status::kPermissionDenied, r.status());
}

TEST_F(ReplayServiceTest, QueueRefillsAfterBusyDrain) {
  // Backpressure is transient: a kBusy submitter can retry successfully as
  // soon as the worker drains a slot, and the refused request occupied nothing.
  ReplayServiceConfig cfg;
  cfg.queue_depth = 2;
  ReplayService svc(&tb_->tee(), kDeveloperKey, cfg);
  ASSERT_TRUE(svc.RegisterDriverlet(mmc_->data(), mmc_->size()).ok());
  Result<SessionId> sid = svc.OpenSession("mmc");
  ASSERT_TRUE(sid.ok());

  std::vector<uint8_t> b1, b2, b3, b4;
  Result<uint64_t> r1 = svc.Submit(*sid, kMmcEntry, BlockArgs(kMmcRwWrite, 1, &b1));
  Result<uint64_t> r2 = svc.Submit(*sid, kMmcEntry, BlockArgs(kMmcRwRead, 8, &b2));
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(Status::kBusy, svc.Submit(*sid, kMmcEntry, BlockArgs(kMmcRwRead, 1, &b3)).status());

  ASSERT_EQ(1u, svc.ProcessQueued(1));
  Result<uint64_t> r3 = svc.Submit(*sid, kMmcEntry, BlockArgs(kMmcRwRead, 1, &b3));
  ASSERT_TRUE(r3.ok()) << StatusName(r3.status());
  EXPECT_EQ(2u, svc.queue_backlog());
  EXPECT_EQ(Status::kBusy, svc.Submit(*sid, kMmcEntry, BlockArgs(kMmcRwRead, 1, &b4)).status());

  EXPECT_EQ(2u, svc.ProcessQueued());
  EXPECT_TRUE(svc.TakeCompletion(*r1).ok());
  EXPECT_TRUE(svc.TakeCompletion(*r2).ok());
  EXPECT_TRUE(svc.TakeCompletion(*r3).ok());
  // The kBusy rejections were never enqueued: no stray completions, and only
  // the accepted submissions were charged to the session.
  EXPECT_EQ(0u, svc.queue_backlog());
  EXPECT_EQ(3u, svc.Stats(*sid)->submitted);
}

TEST_F(ReplayServiceTest, ReRegisteringDriverletKeepsOpenSessionsWorking) {
  ReplayService svc(&tb_->tee(), kDeveloperKey);
  ASSERT_TRUE(svc.RegisterDriverlet(mmc_->data(), mmc_->size()).ok());
  Result<SessionId> sid = svc.OpenSession("mmc");
  ASSERT_TRUE(sid.ok());
  std::vector<uint8_t> buf;
  ASSERT_TRUE(svc.Invoke(*sid, kMmcEntry, BlockArgs(kMmcRwRead, 8, &buf)).ok());

  // A package update arrives while the session is live: the session must keep
  // its identity and stats, and route to the refreshed templates.
  ASSERT_TRUE(svc.RegisterDriverlet(mmc_->data(), mmc_->size()).ok());
  EXPECT_EQ(1u, svc.open_sessions());
  Result<ReplayStats> r = svc.Invoke(*sid, kMmcEntry, BlockArgs(kMmcRwRead, 8, &buf));
  ASSERT_TRUE(r.ok()) << StatusName(r.status());
  EXPECT_EQ(2u, svc.Stats(*sid)->invokes);
}

TEST_F(ReplayServiceTest, StatsAccumulateAcrossFailedInvokes) {
  ReplayService svc(&tb_->tee(), kDeveloperKey);
  ASSERT_TRUE(svc.RegisterDriverlet(mmc_->data(), mmc_->size()).ok());
  Result<SessionId> sid = svc.OpenSession("mmc");
  ASSERT_TRUE(sid.ok());

  std::vector<uint8_t> buf;
  ASSERT_TRUE(svc.Invoke(*sid, kMmcEntry, BlockArgs(kMmcRwWrite, 1, &buf)).ok());

  // Client error 1: uncovered input (no template admits blkcnt 0).
  ReplayArgs uncovered = BlockArgs(kMmcRwRead, 8, &buf);
  uncovered.scalars["blkcnt"] = 1000000;  // beyond any recorded coverage
  EXPECT_EQ(Status::kNoTemplate, svc.Invoke(*sid, kMmcEntry, uncovered).status());
  // Client error 2: read path refused a read-only buffer view.
  ReplayArgs ro = BlockArgs(kMmcRwRead, 8, &buf);
  ro.buffers.clear();
  ro.ro_buffers["buf"] = ConstBufferView{buf.data(), buf.size()};
  EXPECT_EQ(Status::kPermissionDenied, svc.Invoke(*sid, kMmcEntry, ro).status());
  // Device failure: medium unplugged mid-session.
  tb_->sd_medium().set_present(false);
  EXPECT_EQ(Status::kAborted,
            svc.Invoke(*sid, kMmcEntry, BlockArgs(kMmcRwRead, 8, &buf)).status());
  tb_->sd_medium().set_present(true);

  Result<SessionStats> st = svc.Stats(*sid);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(4u, st->invokes);  // failures still count as invokes
  EXPECT_EQ(3u, st->failures);
  // Only the device failure advanced the health streak.
  EXPECT_EQ(1u, st->consecutive_device_failures);
  EXPECT_FALSE(st->quarantined);
  // Successful-template accounting is untouched by the failures.
  EXPECT_EQ(1u, st->per_template.at("WR_1"));
  EXPECT_EQ(1u, st->per_template.size());

  // A success clears the streak.
  ASSERT_TRUE(svc.Invoke(*sid, kMmcEntry, BlockArgs(kMmcRwRead, 8, &buf)).ok());
  EXPECT_EQ(0u, svc.Stats(*sid)->consecutive_device_failures);
}

TEST_F(ReplayServiceTest, QuarantineFailsFastAndOnlyDeviceFailuresClimb) {
  ReplayServiceConfig cfg;
  cfg.quarantine_threshold = 2;
  ReplayService svc(&tb_->tee(), kDeveloperKey, cfg);
  ASSERT_TRUE(svc.RegisterDriverlet(mmc_->data(), mmc_->size()).ok());
  Result<SessionId> sid = svc.OpenSession("mmc");
  ASSERT_TRUE(sid.ok());

  std::vector<uint8_t> buf;
  tb_->sd_medium().set_present(false);
  EXPECT_EQ(Status::kAborted,
            svc.Invoke(*sid, kMmcEntry, BlockArgs(kMmcRwRead, 8, &buf)).status());

  // A client error between the two device failures must not clear the streak
  // (it says nothing about device health) — and must not quarantine either.
  ReplayArgs uncovered = BlockArgs(kMmcRwRead, 8, &buf);
  uncovered.scalars["blkcnt"] = 1000000;  // beyond any recorded coverage
  EXPECT_EQ(Status::kNoTemplate, svc.Invoke(*sid, kMmcEntry, uncovered).status());
  EXPECT_FALSE(svc.Stats(*sid)->quarantined);

  EXPECT_EQ(Status::kAborted,
            svc.Invoke(*sid, kMmcEntry, BlockArgs(kMmcRwRead, 8, &buf)).status());
  EXPECT_TRUE(svc.Stats(*sid)->quarantined);
  EXPECT_EQ(1u, svc.quarantined_sessions());

  // Rung 3 is terminal for the session: even with the device healthy again,
  // both paths fail fast with the dedicated status and no device access.
  tb_->sd_medium().set_present(true);
  uint64_t resets_before = svc.replayer("mmc")->total_resets();
  EXPECT_EQ(Status::kQuarantined,
            svc.Invoke(*sid, kMmcEntry, BlockArgs(kMmcRwRead, 8, &buf)).status());
  EXPECT_EQ(Status::kQuarantined,
            svc.Submit(*sid, kMmcEntry, BlockArgs(kMmcRwRead, 8, &buf)).status());
  EXPECT_EQ(resets_before, svc.replayer("mmc")->total_resets());
  EXPECT_EQ(0u, svc.queue_backlog());

  // The only way out is a fresh session, which starts with a clean slate.
  EXPECT_EQ(Status::kOk, svc.CloseSession(*sid));
  Result<SessionId> fresh = svc.OpenSession("mmc");
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(svc.Invoke(*fresh, kMmcEntry, BlockArgs(kMmcRwRead, 8, &buf)).ok());
  EXPECT_EQ(1u, svc.quarantined_sessions());  // cumulative, not live count
}

TEST_F(ReplayServiceTest, QuarantineThresholdZeroDisablesTheLadder) {
  ReplayServiceConfig cfg;
  cfg.quarantine_threshold = 0;
  ReplayService svc(&tb_->tee(), kDeveloperKey, cfg);
  ASSERT_TRUE(svc.RegisterDriverlet(mmc_->data(), mmc_->size()).ok());
  Result<SessionId> sid = svc.OpenSession("mmc");
  ASSERT_TRUE(sid.ok());

  std::vector<uint8_t> buf;
  tb_->sd_medium().set_present(false);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(Status::kAborted,
              svc.Invoke(*sid, kMmcEntry, BlockArgs(kMmcRwRead, 8, &buf)).status());
  }
  EXPECT_FALSE(svc.Stats(*sid)->quarantined);
  EXPECT_EQ(0u, svc.quarantined_sessions());
  tb_->sd_medium().set_present(true);
  EXPECT_TRUE(svc.Invoke(*sid, kMmcEntry, BlockArgs(kMmcRwRead, 8, &buf)).ok());
}

// ---- TemplateStore unit tests (no machine required) ----

InteractionTemplate SynthTemplate(const char* name, const char* entry,
                                  std::vector<std::string> params, ConstraintAtom atom) {
  InteractionTemplate t;
  t.name = name;
  t.entry = entry;
  for (std::string& p : params) {
    t.params.push_back(ParamSpec{std::move(p), /*is_buffer=*/false});
  }
  t.initial.AddAtom(std::move(atom));
  return t;
}

ConstraintAtom InputEq(const char* input, uint64_t v) {
  return ConstraintAtom{Expr::Input(input), Cmp::kEq, Expr::Const(v)};
}

TEST(TemplateStoreTest, CandidateMissingScalarParamIsSkippedNotFatal) {
  // Regression: two templates register the same entry with different param
  // sets. Selection used to abort with kInvalidArg as soon as the scan hit the
  // candidate whose param was absent from the args; it must skip it and keep
  // scanning instead.
  DriverletPackage pkg;
  pkg.driverlet = "synth";
  pkg.templates.push_back(SynthTemplate("NeedsXY", "replay_synth", {"x", "y"}, InputEq("y", 1)));
  pkg.templates.push_back(SynthTemplate("NeedsX", "replay_synth", {"x"}, InputEq("x", 2)));
  TemplateStore store;
  ASSERT_EQ(Status::kOk, store.AddPackage(pkg));

  // No "y" in the args: NeedsXY is skipped, NeedsX still matches.
  Result<const InteractionTemplate*> sel = store.Select("synth", "replay_synth", {{"x", 2}});
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ("NeedsX", (*sel)->name);

  // Both param sets satisfiable: the richer template matches on its constraint.
  sel = store.Select("synth", "replay_synth", {{"x", 7}, {"y", 1}});
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ("NeedsXY", (*sel)->name);

  // Nothing covers the input: uncovered, not an argument error.
  EXPECT_EQ(Status::kNoTemplate, store.Select("synth", "replay_synth", {{"x", 9}}).status());
}

TEST(TemplateStoreTest, SelectIsScopedByDriverletAndEntry) {
  DriverletPackage a;
  a.driverlet = "alpha";
  a.templates.push_back(SynthTemplate("A", "replay_shared", {"x"}, InputEq("x", 1)));
  DriverletPackage b;
  b.driverlet = "beta";
  b.templates.push_back(SynthTemplate("B", "replay_shared", {"x"}, InputEq("x", 1)));
  TemplateStore store;
  ASSERT_EQ(Status::kOk, store.AddPackage(a));
  ASSERT_EQ(Status::kOk, store.AddPackage(b));

  Result<const InteractionTemplate*> sel = store.Select("beta", "replay_shared", {{"x", 1}});
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ("B", (*sel)->name);
  // Driverlet-agnostic lookup falls back to load order.
  sel = store.Select("", "replay_shared", {{"x", 1}});
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ("A", (*sel)->name);
  EXPECT_EQ(Status::kNoTemplate, store.Select("alpha", "replay_none", {{"x", 1}}).status());
}

TEST(TemplateStoreTest, ReloadReplacesOnlyThatDriverlet) {
  DriverletPackage a;
  a.driverlet = "alpha";
  a.templates.push_back(SynthTemplate("Old", "replay_a", {"x"}, InputEq("x", 1)));
  DriverletPackage b;
  b.driverlet = "beta";
  b.templates.push_back(SynthTemplate("Keep", "replay_b", {"x"}, InputEq("x", 1)));
  TemplateStore store;
  ASSERT_EQ(Status::kOk, store.AddPackage(a));
  ASSERT_EQ(Status::kOk, store.AddPackage(b));

  DriverletPackage a2;
  a2.driverlet = "alpha";
  a2.templates.push_back(SynthTemplate("New", "replay_a2", {"x"}, InputEq("x", 1)));
  ASSERT_EQ(Status::kOk, store.AddPackage(a2));
  EXPECT_EQ(2u, store.package_count());
  // The old alpha entry is de-indexed; beta is untouched.
  EXPECT_EQ(Status::kNoTemplate, store.Select("alpha", "replay_a", {{"x", 1}}).status());
  EXPECT_TRUE(store.Select("alpha", "replay_a2", {{"x", 1}}).ok());
  EXPECT_TRUE(store.Select("beta", "replay_b", {{"x", 1}}).ok());
}

}  // namespace
}  // namespace dlt
