// Tier-1 conformance harness tests (docs/conformance.md): generator
// determinism and variety, GenDevice scripting semantics, a 50-seed fixed
// corpus through every invariant, repro round-trips, and the planted
// operand-folding miscompile being caught by the cross-engine oracle and
// shrunk to a tiny repro.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "src/check/conformance.h"
#include "src/core/compiled_program.h"
#include "src/core/serialize_text.h"

namespace dlt {
namespace {

// Arms the planted constant-folding miscompile for one scope; tests must not
// leak it into the rest of the suite.
class QuirkGuard {
 public:
  QuirkGuard() { SetCompiledFoldQuirkForTest(true); }
  ~QuirkGuard() { SetCompiledFoldQuirkForTest(false); }
};

std::string TplText(const InteractionTemplate& tpl) { return TemplatesToText({tpl}); }

// ---------------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------------

TEST(TemplateGenTest, RngStreamsAreSeedDeterministic) {
  GenRng a(42), b(42), c(43);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    any_diff |= va != c.Next();
  }
  EXPECT_TRUE(any_diff);
}

TEST(TemplateGenTest, SameSeedYieldsIdenticalCases) {
  GeneratedCase a = GenerateCase(7);
  GeneratedCase b = GenerateCase(7);
  EXPECT_EQ(TplText(a.tpl), TplText(b.tpl));
  EXPECT_EQ(a.scalars, b.scalars);
  EXPECT_EQ(a.payload, b.payload);
  EXPECT_EQ(a.expected_out, b.expected_out);
  EXPECT_EQ(a.out_len, b.out_len);
  EXPECT_EQ(a.script.initial_regs, b.script.initial_regs);
  EXPECT_EQ(a.script.read_queues, b.script.read_queues);
  EXPECT_EQ(a.script.irq_delay_us, b.script.irq_delay_us);

  GeneratedCase other = GenerateCase(8);
  EXPECT_NE(TplText(a.tpl), TplText(other.tpl));
}

TEST(TemplateGenTest, SeedSweepExercisesTheEventVocabulary) {
  std::set<EventKind> kinds;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    GeneratedCase g = GenerateCase(seed);
    EXPECT_FALSE(g.tpl.events.empty()) << "seed " << seed;
    EXPECT_TRUE(SymbolClosureValid(g.tpl)) << "seed " << seed;
    for (const TemplateEvent& e : g.tpl.events) kinds.insert(e.kind);
  }
  // The sweep must hit the interesting corners, not just register traffic.
  for (EventKind k : {EventKind::kRegWrite, EventKind::kRegRead, EventKind::kPollReg,
                      EventKind::kShmWrite, EventKind::kShmRead, EventKind::kDmaAlloc,
                      EventKind::kCopyToDma, EventKind::kCopyFromDma,
                      EventKind::kWaitIrq, EventKind::kPioOut}) {
    EXPECT_TRUE(kinds.count(k)) << "missing " << EventKindName(k);
  }
  EXPECT_GE(kinds.size(), 10u);
}

// ---------------------------------------------------------------------------
// GenDevice
// ---------------------------------------------------------------------------

TEST(GenDeviceTest, ScriptedQueuesPopThenFallBackAndRewindOnReset) {
  Machine m;
  GenDevice dev(&m.clock(), &m.irq());
  GenScript s;
  s.initial_regs[0x10] = 5;
  s.read_queues[0x10] = {7, 9};
  dev.Configure(s);

  EXPECT_EQ(dev.MmioRead32(0x10), 7u);
  EXPECT_EQ(dev.MmioRead32(0x10), 9u);
  EXPECT_EQ(dev.MmioRead32(0x10), 5u);  // queue exhausted -> register value
  dev.MmioWrite32(0x10, 0x1234);
  EXPECT_EQ(dev.MmioRead32(0x10), 0x1234u);

  dev.SoftReset();
  EXPECT_EQ(dev.MmioRead32(0x10), 7u);  // cursor rewound
  EXPECT_EQ(dev.MmioRead32(0x10), 9u);
  EXPECT_EQ(dev.MmioRead32(0x10), 5u);  // register file restored too
}

TEST(GenDeviceTest, DoorbellRaisesAfterDelayAckClearsResetCancels) {
  Machine m;
  GenDevice dev(&m.clock(), &m.irq());
  GenScript s;
  s.irq_delay_us = 40;
  dev.Configure(s);

  dev.MmioWrite32(GenDevice::kDoorbellOff, 1);
  EXPECT_FALSE(m.irq().Pending(dev.irq_line()));
  m.clock().Advance(40);
  EXPECT_TRUE(m.irq().Pending(dev.irq_line()));
  dev.MmioWrite32(GenDevice::kIrqAckOff, 1);
  EXPECT_FALSE(m.irq().Pending(dev.irq_line()));

  // An in-flight raise does not survive a soft reset.
  dev.MmioWrite32(GenDevice::kDoorbellOff, 1);
  dev.SoftReset();
  m.clock().Advance(100);
  EXPECT_FALSE(m.irq().Pending(dev.irq_line()));
}

TEST(GenDeviceTest, DoorbellSetsPublishCompletionStateAfterDelay) {
  // The descriptor-ring idiom: a consumer-index register stays at its reset
  // value until the doorbell's completion fires, then jumps to the scripted
  // value. SoftReset rewinds it, so every replay attempt re-earns completion.
  Machine m;
  GenDevice dev(&m.clock(), &m.irq());
  GenScript s;
  s.irq_delay_us = 40;
  s.initial_regs[0x20] = 0;
  s.doorbell_sets[0x20] = 3;
  dev.Configure(s);

  EXPECT_EQ(dev.MmioRead32(0x20), 0u);
  dev.MmioWrite32(GenDevice::kDoorbellOff, 1);
  m.clock().Advance(39);
  EXPECT_EQ(dev.MmioRead32(0x20), 0u);  // not complete yet
  m.clock().Advance(1);
  EXPECT_EQ(dev.MmioRead32(0x20), 3u);  // consumer index caught up
  EXPECT_TRUE(m.irq().Pending(dev.irq_line()));

  dev.SoftReset();
  EXPECT_EQ(dev.MmioRead32(0x20), 0u);  // completion state rewound
}

// ---------------------------------------------------------------------------
// Fixed-seed corpus: every invariant over 50 seeds
// ---------------------------------------------------------------------------

TEST(ConformanceTest, FixedSeedCorpusConforms) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ConformanceOutcome out = RunConformance(GenerateCase(seed));
    for (const ConformanceFailure& f : out.failures) {
      ADD_FAILURE() << f.invariant << ": " << f.detail;
    }
    EXPECT_EQ(out.invariants_run, static_cast<int>(AllInvariants().size()));
    EXPECT_GT(out.events_executed, 0u);
  }
}

TEST(ConformanceTest, NewShapesAppearInSweepAndConform) {
  // The fTPM-pipe shape (a kPioIn whose length is an expression over a scalar
  // parameter) and the crypto-queue shape (a doorbell-published consumer
  // index, i.e. a non-empty doorbell_sets script) must both occur within a
  // modest seed sweep — and the first case carrying each shape must pass every
  // invariant, so the new vocabulary is pinned rather than statistically
  // covered.
  bool saw_varlen_pio = false;
  bool saw_ring = false;
  for (uint64_t seed = 1; seed <= 120 && !(saw_varlen_pio && saw_ring); ++seed) {
    GeneratedCase g = GenerateCase(seed);
    bool varlen = false;
    for (const TemplateEvent& e : g.tpl.events) {
      if (e.kind == EventKind::kPioIn && e.value && !e.value->is_const()) {
        varlen = true;
      }
    }
    bool ring = !g.script.doorbell_sets.empty();
    if ((varlen && !saw_varlen_pio) || (ring && !saw_ring)) {
      SCOPED_TRACE("seed " + std::to_string(seed));
      ConformanceOutcome out = RunConformance(g);
      for (const ConformanceFailure& f : out.failures) {
        ADD_FAILURE() << f.invariant << ": " << f.detail;
      }
    }
    saw_varlen_pio |= varlen;
    saw_ring |= ring;
  }
  EXPECT_TRUE(saw_varlen_pio);
  EXPECT_TRUE(saw_ring);
}

TEST(ConformanceTest, DeepExpressionsFallBackToInterpreterAndStillConform) {
  GenConfig cfg;
  cfg.seed = 3;
  cfg.force_deep_expr = true;
  GeneratedCase g = GenerateCase(cfg);
  // The forced operand chain exceeds the compiled engine's expression stack,
  // so compilation must refuse rather than miscompile...
  auto compiled = CompileTemplate(&g.tpl);
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status(), Status::kUnsupported);
  // ...and the conformance invariants must hold on the fallback path.
  ConformanceOutcome out = RunConformance(g);
  for (const ConformanceFailure& f : out.failures) {
    ADD_FAILURE() << f.invariant << ": " << f.detail;
  }
}

// ---------------------------------------------------------------------------
// Shrinker support: symbol closure
// ---------------------------------------------------------------------------

TEST(ConformanceTest, SymbolClosureAcceptsBindThenUse) {
  InteractionTemplate t;
  t.params.push_back({"a", false});
  TemplateEvent read;
  read.kind = EventKind::kRegRead;
  read.device = kGenDeviceId;
  read.reg_off = 0x10;
  read.bind = "v";
  // Constraints may reference their own bind.
  read.constraint.AddAtom({Expr::Input("v"), Cmp::kEq, Expr::Const(7)});
  t.events.push_back(read);
  TemplateEvent write;
  write.kind = EventKind::kRegWrite;
  write.device = kGenDeviceId;
  write.reg_off = 0x14;
  write.value = Expr::Binary(ExprOp::kAdd, Expr::Input("v"), Expr::Input("a"));
  t.events.push_back(write);
  EXPECT_TRUE(SymbolClosureValid(t));
}

TEST(ConformanceTest, SymbolClosureRejectsDanglingReferences) {
  InteractionTemplate t;
  TemplateEvent write;
  write.kind = EventKind::kRegWrite;
  write.device = kGenDeviceId;
  write.reg_off = 0x10;
  write.value = Expr::Input("never_bound");
  t.events.push_back(write);
  EXPECT_FALSE(SymbolClosureValid(t));

  // A bind is not visible to the same event's own operand expressions.
  InteractionTemplate self;
  TemplateEvent read;
  read.kind = EventKind::kShmRead;
  read.addr = Expr::Input("v");
  read.bind = "v";
  self.events.push_back(read);
  EXPECT_FALSE(SymbolClosureValid(self));
}

// ---------------------------------------------------------------------------
// Repro files
// ---------------------------------------------------------------------------

TEST(ReproTest, RoundTripPreservesTheWholeCase) {
  GeneratedCase g = GenerateCase(11);
  std::string text = ReproToString(g, "engine-parity");
  auto parsed = ParseRepro(text);
  ASSERT_TRUE(parsed.ok()) << StatusName(parsed.status());
  const Repro& r = *parsed;
  EXPECT_EQ(r.invariant, "engine-parity");
  EXPECT_EQ(r.c.seed, g.seed);
  EXPECT_EQ(r.c.scalars, g.scalars);
  EXPECT_EQ(r.c.payload, g.payload);
  EXPECT_EQ(r.c.out_len, g.out_len);
  EXPECT_EQ(r.c.script.initial_regs, g.script.initial_regs);
  EXPECT_EQ(r.c.script.read_queues, g.script.read_queues);
  EXPECT_EQ(r.c.script.irq_delay_us, g.script.irq_delay_us);
  EXPECT_EQ(r.c.script.doorbell_sets, g.script.doorbell_sets);
  EXPECT_EQ(TplText(r.c.tpl), TplText(g.tpl));
  // Serialization is a fixpoint: re-render matches exactly.
  EXPECT_EQ(ReproToString(r.c, r.invariant), text);

  std::string path = ::testing::TempDir() + "/roundtrip.repro";
  ASSERT_TRUE(Ok(WriteRepro(path, g, "engine-parity")));
  auto reread = ReadRepro(path);
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(TplText(reread->c.tpl), TplText(g.tpl));
}

TEST(ReproTest, ParserRejectsGarbage) {
  EXPECT_FALSE(ParseRepro("not a repro").ok());
  EXPECT_FALSE(ParseRepro("driverlet-repro v1\nseed zzz\n").ok());
  EXPECT_FALSE(ReadRepro("/nonexistent/path.repro").ok());
}

// ---------------------------------------------------------------------------
// The planted miscompile: caught, shrunk, repro'd
// ---------------------------------------------------------------------------

TEST(ConformanceTest, ShrinkRefusesAPassingCase) {
  auto r = Shrink(GenerateCase(1), {"engine-parity"});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status(), Status::kInvalidArg);
}

TEST(ConformanceTest, FoldQuirkIsCaughtAndShrunkToATinyRepro) {
  QuirkGuard armed;
  // The cross-engine oracle must notice the planted +1 on folded constants
  // within a handful of seeds.
  GeneratedCase failing;
  bool found = false;
  for (uint64_t seed = 1; seed <= 30 && !found; ++seed) {
    GeneratedCase g = GenerateCase(seed);
    if (!RunConformance(g, {"engine-parity"}).ok()) {
      failing = g;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "miscompile not detected in 30 seeds";

  auto shrunk = Shrink(failing, {"engine-parity"});
  ASSERT_TRUE(shrunk.ok()) << StatusName(shrunk.status());
  EXPECT_EQ(shrunk->invariant, "engine-parity");
  EXPECT_LE(shrunk->reduced.tpl.events.size(), 5u);
  EXPECT_LT(shrunk->reduced.tpl.events.size(), shrunk->original_events);
  EXPECT_TRUE(SymbolClosureValid(shrunk->reduced.tpl));

  // The minimized case still fails while the quirk is armed, through the same
  // file format the CLI uses...
  std::string path = ::testing::TempDir() + "/fold_quirk.repro";
  ASSERT_TRUE(Ok(WriteRepro(path, shrunk->reduced, shrunk->invariant)));
  auto repro = ReadRepro(path);
  ASSERT_TRUE(repro.ok());
  EXPECT_FALSE(RunConformance(repro->c, ReproInvariants()).ok());

  // ...and conforms again once the miscompile is fixed.
  SetCompiledFoldQuirkForTest(false);
  ConformanceOutcome healthy = RunConformance(repro->c, ReproInvariants());
  for (const ConformanceFailure& f : healthy.failures) {
    ADD_FAILURE() << f.invariant << ": " << f.detail;
  }
}

// ---------------------------------------------------------------------------
// Checked-in regression corpus
// ---------------------------------------------------------------------------

TEST(ConformanceTest, CorpusReprosConform) {
  std::filesystem::path dir = std::filesystem::path(DLT_SOURCE_DIR) / "tests" / "corpus";
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  int seen = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".repro") continue;
    SCOPED_TRACE(entry.path().filename().string());
    ++seen;
    auto repro = ReadRepro(entry.path().string());
    ASSERT_TRUE(repro.ok()) << StatusName(repro.status());
    ConformanceOutcome out = RunConformance(repro->c, ReproInvariants());
    for (const ConformanceFailure& f : out.failures) {
      ADD_FAILURE() << f.invariant << ": " << f.detail;
    }
  }
  EXPECT_GE(seen, 1) << "regression corpus is empty";
}

}  // namespace
}  // namespace dlt
