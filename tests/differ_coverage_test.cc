// Direct unit coverage for the two record-side analyses that previously were
// only exercised indirectly through full campaigns: the differ's transition
// signatures / region validation (src/core/differ.cc) and the input-space
// coverage accounting (src/core/coverage.cc).
#include <gtest/gtest.h>

#include "src/core/coverage.h"
#include "src/core/differ.h"

namespace dlt {
namespace {

TemplateEvent Ev(EventKind kind) {
  TemplateEvent e;
  e.kind = kind;
  return e;
}

TemplateEvent RegWrite(uint16_t device, uint64_t off) {
  TemplateEvent e = Ev(EventKind::kRegWrite);
  e.device = device;
  e.reg_off = off;
  e.value = Expr::Const(1);
  return e;
}

// ---------------------------------------------------------------------------
// TransitionSignature / SameTransitionPath
// ---------------------------------------------------------------------------

TEST(DifferTest, SignatureRendersOutputsAllocsAndIrqWaits) {
  RawRecording raw;
  raw.events.push_back(RegWrite(3, 0x40));
  TemplateEvent alloc = Ev(EventKind::kDmaAlloc);
  alloc.bind = "dma0";
  alloc.value = Expr::Const(512);
  raw.events.push_back(alloc);
  TemplateEvent shm = Ev(EventKind::kShmWrite);
  shm.addr = Expr::Binary(ExprOp::kAdd, Expr::Input("dma0"), Expr::Const(8));
  shm.value = Expr::Const(7);
  raw.events.push_back(shm);
  TemplateEvent irq = Ev(EventKind::kWaitIrq);
  irq.irq_line = 56;
  raw.events.push_back(irq);

  std::string sig = TransitionSignature(raw);
  EXPECT_NE(sig.find("reg_write:3:0x40"), std::string::npos);
  EXPECT_NE(sig.find("dma_alloc:0x200"), std::string::npos);
  EXPECT_NE(sig.find("shm_write:(dma0 + 0x8)"), std::string::npos);
  EXPECT_NE(sig.find("irq:56"), std::string::npos);
}

TEST(DifferTest, PlainInputsAndDelaysDoNotIdentifyThePath) {
  RawRecording with_inputs;
  with_inputs.events.push_back(RegWrite(1, 0x10));
  TemplateEvent read = Ev(EventKind::kRegRead);
  read.device = 1;
  read.reg_off = 0x14;
  read.bind = "v0";
  with_inputs.events.push_back(read);
  with_inputs.events.push_back(Ev(EventKind::kDelay));

  RawRecording outputs_only;
  outputs_only.events.push_back(RegWrite(1, 0x10));

  EXPECT_EQ(TransitionSignature(with_inputs), TransitionSignature(outputs_only));
  EXPECT_TRUE(SameTransitionPath(with_inputs, outputs_only));
}

TEST(DifferTest, DifferentRegisterTargetsDiverge) {
  RawRecording a;
  a.events.push_back(RegWrite(1, 0x10));
  RawRecording b;
  b.events.push_back(RegWrite(1, 0x14));
  RawRecording c;
  c.events.push_back(RegWrite(2, 0x10));
  EXPECT_FALSE(SameTransitionPath(a, b));
  EXPECT_FALSE(SameTransitionPath(a, c));
}

TEST(DifferTest, SymbolicAddressShapeParticipatesInSignature) {
  auto make = [](ExprRef addr) {
    RawRecording r;
    TemplateEvent e = Ev(EventKind::kCopyToDma);
    e.addr = std::move(addr);
    e.buffer = "buf";
    e.buf_offset = Expr::Const(0);
    e.value = Expr::Const(64);
    r.events.push_back(e);
    return r;
  };
  RawRecording base = make(Expr::Input("dma0"));
  RawRecording offset = make(Expr::Binary(ExprOp::kAdd, Expr::Input("dma0"), Expr::Const(16)));
  EXPECT_FALSE(SameTransitionPath(base, offset));
  EXPECT_TRUE(SameTransitionPath(base, make(Expr::Input("dma0"))));
}

// ---------------------------------------------------------------------------
// ValidateTransitionRegion
// ---------------------------------------------------------------------------

// Probe modelling a driver with two paths split at blkcnt <= 8.
Result<std::string> TwoPathProbe(const Bindings& b) {
  auto it = b.find("blkcnt");
  if (it == b.end()) return Status::kInvalidArg;
  return std::string(it->second <= 8 ? "small" : "large");
}

TEST(DifferTest, RegionValidationAcceptsCleanSplit) {
  RegionValidation v = ValidateTransitionRegion(
      TwoPathProbe, {{"blkcnt", 4}}, {{{"blkcnt", 1}}, {{"blkcnt", 8}}},
      {{{"blkcnt", 9}}, {{"blkcnt", 64}}});
  EXPECT_TRUE(v.ok());
  EXPECT_EQ(v.in_region_total, 2);
  EXPECT_EQ(v.in_region_same, 2);
  EXPECT_EQ(v.out_region_total, 2);
  EXPECT_EQ(v.out_region_diverged, 2);
  EXPECT_TRUE(v.violations.empty());
}

TEST(DifferTest, RegionValidationFlagsBoundaryViolations) {
  // Claimed region reaches one past the real constraint boundary: the probe at
  // blkcnt=9 rides the other path, and an out-region probe at 8 rides ours.
  RegionValidation v = ValidateTransitionRegion(TwoPathProbe, {{"blkcnt", 4}},
                                                {{{"blkcnt", 9}}}, {{{"blkcnt", 8}}});
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.in_region_same, 0);
  EXPECT_EQ(v.out_region_diverged, 0);
  ASSERT_EQ(v.violations.size(), 2u);
  EXPECT_NE(v.violations[0].find("different path"), std::string::npos);
  EXPECT_NE(v.violations[1].find("reproduced the path"), std::string::npos);
}

TEST(DifferTest, RegionValidationCountsRejectedOutProbesAsDiverged) {
  RegionValidation v = ValidateTransitionRegion(TwoPathProbe, {{"blkcnt", 4}}, {},
                                                {{{"wrong_param", 1}}});
  EXPECT_TRUE(v.ok());
  EXPECT_EQ(v.out_region_diverged, 1);
}

TEST(DifferTest, RegionValidationFailedReferenceRun) {
  RegionValidation v =
      ValidateTransitionRegion(TwoPathProbe, {{"wrong_param", 1}}, {{{"blkcnt", 1}}}, {});
  EXPECT_FALSE(v.ok());
  ASSERT_EQ(v.violations.size(), 1u);
  EXPECT_NE(v.violations[0].find("reference run failed"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ComputeCoverage / Covers
// ---------------------------------------------------------------------------

InteractionTemplate Tpl(std::vector<ConstraintAtom> atoms) {
  InteractionTemplate t;
  t.name = "t";
  t.entry = "e";
  t.params.push_back({"blkcnt", false});
  for (auto& a : atoms) t.initial.AddAtom(std::move(a));
  return t;
}

ConstraintAtom Atom(const char* param, Cmp cmp, uint64_t v) {
  return ConstraintAtom{Expr::Input(param), cmp, Expr::Const(v)};
}

TEST(CoverageTest, TableDrivenSingleAtomRanges) {
  struct Case {
    Cmp cmp;
    uint64_t bound;
    uint64_t inside;
    uint64_t outside;
  };
  const Case cases[] = {
      {Cmp::kEq, 8, 8, 9},   {Cmp::kLe, 8, 8, 9},    {Cmp::kLt, 8, 7, 8},
      {Cmp::kGe, 8, 8, 7},   {Cmp::kGt, 8, 9, 8},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(static_cast<int>(c.cmp));
    Coverage cov = ComputeCoverage({Tpl({Atom("blkcnt", c.cmp, c.bound)})});
    EXPECT_TRUE(Covers(cov, "blkcnt", c.inside));
    EXPECT_FALSE(Covers(cov, "blkcnt", c.outside));
  }
}

TEST(CoverageTest, ConjunctionIntersectsAndTemplatesUnion) {
  // One template covers [4, 8], a second covers exactly 32.
  Coverage cov = ComputeCoverage({
      Tpl({Atom("blkcnt", Cmp::kGe, 4), Atom("blkcnt", Cmp::kLe, 8)}),
      Tpl({Atom("blkcnt", Cmp::kEq, 32)}),
  });
  EXPECT_FALSE(Covers(cov, "blkcnt", 3));
  EXPECT_TRUE(Covers(cov, "blkcnt", 4));
  EXPECT_TRUE(Covers(cov, "blkcnt", 8));
  EXPECT_FALSE(Covers(cov, "blkcnt", 9));
  EXPECT_TRUE(Covers(cov, "blkcnt", 32));
  EXPECT_FALSE(Covers(cov, "blkcnt", 33));
}

TEST(CoverageTest, AdjacentRangesMerge) {
  Coverage cov = ComputeCoverage({
      Tpl({Atom("blkcnt", Cmp::kGe, 1), Atom("blkcnt", Cmp::kLe, 4)}),
      Tpl({Atom("blkcnt", Cmp::kGe, 5), Atom("blkcnt", Cmp::kLe, 8)}),
  });
  const ParamCoverage& pc = cov.at("blkcnt");
  ASSERT_EQ(pc.ranges.size(), 1u);
  EXPECT_EQ(pc.ranges[0].lo, 1u);
  EXPECT_EQ(pc.ranges[0].hi, 8u);
}

TEST(CoverageTest, UnconstrainedParamAcceptsEverything) {
  InteractionTemplate t;
  t.name = "any";
  t.entry = "e";
  t.params.push_back({"flag", false});
  Coverage cov = ComputeCoverage({t});
  EXPECT_TRUE(Covers(cov, "flag", 0));
  EXPECT_TRUE(Covers(cov, "flag", UINT64_MAX));
  // A param no template mentions at all is fully covered by definition.
  EXPECT_TRUE(Covers(cov, "never_mentioned", 123));
}

TEST(CoverageTest, NeAtomShrinksNothing) {
  // Non-interval atoms conservatively leave the region unshrunk rather than
  // inventing holes the selection logic does not actually enforce.
  Coverage cov = ComputeCoverage({Tpl({Atom("blkcnt", Cmp::kNe, 8)})});
  EXPECT_TRUE(Covers(cov, "blkcnt", 8));
}

TEST(CoverageTest, ReportListsRangesPerParam) {
  Coverage cov = ComputeCoverage({
      Tpl({Atom("blkcnt", Cmp::kGe, 1), Atom("blkcnt", Cmp::kLe, 8)}),
  });
  std::string report = CoverageReport(cov);
  EXPECT_NE(report.find("blkcnt"), std::string::npos);
  EXPECT_NE(report.find("0x1"), std::string::npos);
  EXPECT_NE(report.find("0x8"), std::string::npos);
}

}  // namespace
}  // namespace dlt
