// Observability subsystem tests: trace-ring wrap-around, counter/histogram
// accuracy, Chrome trace JSON well-formedness, and end-to-end assertions that
// a real MMC replay emits the documented event sequence (selection -> replay
// events -> completion) and that a forced divergence records soft resets.
#include <gtest/gtest.h>

#include <cctype>

#include "src/core/replayer.h"
#include "src/obs/chrome_trace.h"
#include "src/obs/telemetry.h"
#include "src/workload/record_campaigns.h"
#include "src/workload/rpi3_testbed.h"
#include "src/workload/deploy_util.h"

namespace dlt {
namespace {

// ---- minimal JSON syntax checker (no external deps) ----

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view s) : s_(s) {}

  bool Valid() {
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) {
      return false;
    }
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) {
        return false;
      }
      SkipWs();
      if (Peek() != ':') {
        return false;
      }
      ++pos_;
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool String() {
    if (Peek() != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (c == '\\') {
        pos_ += 2;
        continue;
      }
      if (c == '"') {
        ++pos_;
        return true;
      }
      ++pos_;
    }
    return false;
  }
  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') {
      ++pos_;
    }
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) {
      return false;
    }
    pos_ += lit.size();
    return true;
  }
  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view s_;
  size_t pos_ = 0;
};

// ---- unit tests ----

TEST(TraceRingTest, WrapAroundKeepsNewestEvents) {
  TraceRing ring(8);
  ASSERT_EQ(8u, ring.capacity());
  for (uint64_t i = 0; i < 20; ++i) {
    TraceEvent e;
    e.ts_us = i;
    e.kind = TraceKind::kIrqRaise;
    ring.Push(e);
  }
  EXPECT_EQ(20u, ring.pushed());
  EXPECT_EQ(12u, ring.dropped());
  EXPECT_EQ(8u, ring.size());
  std::vector<TraceEvent> snap = ring.Snapshot();
  ASSERT_EQ(8u, snap.size());
  for (size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(12 + i, snap[i].ts_us) << "oldest-first order after wrap";
  }
  ring.Clear();
  EXPECT_EQ(0u, ring.size());
  EXPECT_TRUE(ring.Snapshot().empty());
}

TEST(TraceRingTest, CapacityRoundsUpToPowerOfTwo) {
  TraceRing ring(100);
  EXPECT_EQ(128u, ring.capacity());
}

TEST(MetricsTest, CounterAccuracy) {
  MetricsRegistry reg;
  Counter& c = reg.counter("test.counter");
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(42u, c.value());
  // Same name resolves to the same counter.
  EXPECT_EQ(&c, &reg.counter("test.counter"));
  reg.Reset();
  EXPECT_EQ(0u, c.value());  // cached pointer survives Reset
}

TEST(MetricsTest, GaugeLevelAndWatermark) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("test.queue_depth");
  g.Add(3);
  g.Add(2);
  g.Sub(4);
  EXPECT_EQ(1, g.value());
  EXPECT_EQ(5, g.max());  // watermark survives the drain
  g.Set(2);
  EXPECT_EQ(2, g.value());
  EXPECT_EQ(5, g.max());  // Set below the watermark does not lower it
  // Same name resolves to the same gauge; Reset zeroes value and watermark.
  EXPECT_EQ(&g, &reg.gauge("test.queue_depth"));
  reg.Reset();
  EXPECT_EQ(0, g.value());
  EXPECT_EQ(0, g.max());

  // Registration order is preserved for exporters.
  reg.gauge("test.sessions").Set(7);
  std::vector<std::string> names;
  reg.ForEachGauge([&](const std::string& n, const Gauge&) { names.push_back(n); });
  EXPECT_EQ((std::vector<std::string>{"test.queue_depth", "test.sessions"}), names);
  EXPECT_NE(std::string::npos, reg.Summary().find("test.sessions"));
}

TEST(MetricsTest, HistogramAccuracy) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("test.hist");
  for (uint64_t v = 1; v <= 100; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(100u, h.count());
  EXPECT_EQ(5050u, h.sum());
  EXPECT_EQ(1u, h.min());
  EXPECT_EQ(100u, h.max());
  EXPECT_DOUBLE_EQ(50.5, h.mean());
  // Sample #50 (value 50) falls in bucket [32, 64): upper bound 63.
  EXPECT_EQ(63u, h.Percentile(50));
  // Sample #99 (value 99) falls in bucket [64, 128): upper bound 127.
  EXPECT_EQ(127u, h.Percentile(99));
  h.Reset();
  EXPECT_EQ(0u, h.count());
  EXPECT_EQ(0u, h.min());
  EXPECT_EQ(0u, h.max());
}

TEST(MetricsTest, HistogramZeroBucket) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("zeros");
  h.Record(0);
  h.Record(0);
  EXPECT_EQ(2u, h.count());
  EXPECT_EQ(0u, h.Percentile(50));
}

TEST(ChromeTraceTest, ExportIsWellFormedJson) {
  std::vector<TraceEvent> events;
  TraceEvent sel;
  sel.kind = TraceKind::kTemplateSelected;
  sel.ts_us = 10;
  sel.set_name("WR_8");
  events.push_back(sel);
  TraceEvent span;
  span.kind = TraceKind::kReplayEvent;
  span.ts_us = 12;
  span.dur_us = 7;
  span.arg0 = 3;
  span.set_name("reg_write");
  events.push_back(span);
  TraceEvent nasty;  // name needing escaping
  nasty.kind = TraceKind::kSoftReset;
  nasty.ts_us = 20;
  nasty.set_name("quote\"back\\slash\n");
  events.push_back(nasty);

  MetricsRegistry reg;
  reg.counter("replay.template_hit").Inc();
  reg.histogram("replay.invoke_us").Record(123);

  std::string json = ChromeTraceJson(events, &reg);
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(std::string::npos, json.find("\"traceEvents\""));
  EXPECT_NE(std::string::npos, json.find("\"WR_8\""));
  EXPECT_NE(std::string::npos, json.find("\"ph\":\"X\""));
  EXPECT_NE(std::string::npos, json.find("\"dur\":7"));
  EXPECT_NE(std::string::npos, json.find("\"replay.template_hit\":1"));
}

TEST(ChromeTraceTest, EmptyTraceIsStillValid) {
  std::string json = ChromeTraceJson({}, nullptr);
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
}

// ---- end-to-end: telemetry during a real MMC replay ----

class ObsEndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Record with telemetry disarmed so per-test traces start clean.
    Rpi3Testbed dev{TestbedOptions{}};
    Result<RecordCampaign> campaign = RecordMmcCampaign(&dev);
    ASSERT_TRUE(campaign.ok()) << StatusName(campaign.status());
    sealed_ = new std::vector<uint8_t>(campaign->Seal(PackageFormat::kText, kDeveloperKey));
  }
  static void TearDownTestSuite() {
    delete sealed_;
    sealed_ = nullptr;
  }

  void SetUp() override {
    TestbedOptions opts;
    opts.secure_io = true;
    opts.probe_drivers = false;
    deploy_ = std::make_unique<Rpi3Testbed>(opts);
    replayer_ = std::make_unique<Replayer>(&deploy_->tee(), kDeveloperKey);
    ASSERT_EQ(Status::kOk, replayer_->LoadPackage(sealed_->data(), sealed_->size()));
    Telemetry::Get().Enable();
    Telemetry::Get().Reset();
  }
  void TearDown() override {
    Telemetry::Get().Disable();
    Telemetry::Get().Reset();
  }

  Result<ReplayStats> Replay(uint64_t rw, uint64_t blkcnt, uint64_t blkid, uint8_t* buf) {
    ReplayArgs args;
    args.scalars = {{"rw", rw}, {"blkcnt", blkcnt}, {"blkid", blkid}, {"flag", 0}};
    args.buffers["buf"] = BufferView{buf, static_cast<size_t>(blkcnt) * 512};
    return replayer_->Invoke(kMmcEntry, args);
  }

  static std::vector<uint8_t>* sealed_;
  std::unique_ptr<Rpi3Testbed> deploy_;
  std::unique_ptr<Replayer> replayer_;
};

std::vector<uint8_t>* ObsEndToEndTest::sealed_ = nullptr;

TEST_F(ObsEndToEndTest, ReplayEmitsSelectionThenEventsThenCompletion) {
  std::vector<uint8_t> buf = PatternBuf(8 * 512, 0x42);
  Result<ReplayStats> r = Replay(kMmcRwWrite, 8, 4096, buf.data());
  ASSERT_TRUE(r.ok()) << StatusName(r.status());

  std::vector<TraceEvent> trace = Telemetry::Get().ring().Snapshot();
  ASSERT_FALSE(trace.empty());

  ptrdiff_t selected = -1;
  ptrdiff_t first_replay_event = -1;
  ptrdiff_t invoke = -1;
  size_t replay_events = 0;
  for (size_t i = 0; i < trace.size(); ++i) {
    const TraceEvent& e = trace[i];
    if (e.kind == TraceKind::kTemplateSelected && selected < 0) {
      selected = static_cast<ptrdiff_t>(i);
      EXPECT_STREQ("WR_8", e.name);
    }
    if (e.kind == TraceKind::kReplayEvent) {
      if (first_replay_event < 0) {
        first_replay_event = static_cast<ptrdiff_t>(i);
      }
      ++replay_events;
    }
    if (e.kind == TraceKind::kReplayInvoke) {
      invoke = static_cast<ptrdiff_t>(i);
      EXPECT_STREQ("WR_8", e.name);
      EXPECT_EQ(r->events_executed, e.arg0);
    }
  }
  // The documented sequence: selection, then per-event slices, then the
  // enclosing invoke span (emitted at completion).
  ASSERT_GE(selected, 0);
  ASSERT_GE(first_replay_event, 0);
  ASSERT_GE(invoke, 0);
  EXPECT_LT(selected, first_replay_event);
  EXPECT_LT(first_replay_event, invoke);
  EXPECT_EQ(r->events_executed, replay_events);

  MetricsRegistry& m = Telemetry::Get().metrics();
  EXPECT_EQ(1u, m.counter("replay.template_hit").value());
  EXPECT_EQ(0u, m.counter("replay.template_miss").value());
  EXPECT_EQ(1u, m.counter("replay.soft_resets").value());
  EXPECT_EQ(replay_events, m.counter("replay.events").value());
  EXPECT_EQ(1u, m.histogram("replay.invoke_us").count());
  EXPECT_GT(m.counter("dma.bytes").value(), 0u) << "8-block write moves data by DMA";
}

TEST_F(ObsEndToEndTest, UncoveredInputCountsTemplateMiss) {
  std::vector<uint8_t> buf(512, 0);
  Result<ReplayStats> r = Replay(kMmcRwWrite, 0, 4096, buf.data());  // blkcnt 0: uncovered
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(Status::kNoTemplate, r.status());
  EXPECT_EQ(1u, Telemetry::Get().metrics().counter("replay.template_miss").value());
}

TEST_F(ObsEndToEndTest, ForcedDivergenceRecordsSoftResetAndDivergenceEvents) {
  deploy_->sd_medium().set_present(false);  // unplug: persistent divergence
  std::vector<uint8_t> buf(8 * 512, 0);
  Result<ReplayStats> r = Replay(kMmcRwRead, 8, 2048, buf.data());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(Status::kAborted, r.status());

  std::vector<TraceEvent> trace = Telemetry::Get().ring().Snapshot();
  size_t divergences = 0;
  size_t retry_resets = 0;
  for (const TraceEvent& e : trace) {
    if (e.kind == TraceKind::kDivergence) {
      ++divergences;
      EXPECT_STREQ("RD_8", e.name);
    }
    if (e.kind == TraceKind::kSoftReset && std::string_view(e.name) == "divergence_retry") {
      ++retry_resets;
    }
  }
  int attempts = replayer_->max_attempts();
  EXPECT_EQ(static_cast<size_t>(attempts), divergences);
  EXPECT_EQ(static_cast<size_t>(attempts - 1), retry_resets);

  MetricsRegistry& m = Telemetry::Get().metrics();
  EXPECT_EQ(static_cast<uint64_t>(attempts), m.counter("replay.divergences").value());
  EXPECT_EQ(static_cast<uint64_t>(attempts), m.counter("replay.constraint_failures.RD_8").value());
  EXPECT_EQ(1u, m.counter("replay.aborts").value());
  EXPECT_EQ(static_cast<uint64_t>(attempts), m.counter("replay.soft_resets").value());
}

TEST_F(ObsEndToEndTest, ExportedReplayTraceIsWellFormed) {
  std::vector<uint8_t> buf = PatternBuf(8 * 512, 0x77);
  ASSERT_TRUE(Replay(kMmcRwWrite, 8, 8192, buf.data()).ok());
  std::string json =
      ChromeTraceJson(Telemetry::Get().ring().Snapshot(), &Telemetry::Get().metrics());
  EXPECT_TRUE(JsonChecker(json).Valid());
  EXPECT_NE(std::string::npos, json.find("template_selected"));
  EXPECT_NE(std::string::npos, json.find("\"ph\":\"X\""));
}

TEST_F(ObsEndToEndTest, DisabledTelemetryEmitsNothing) {
  Telemetry::Get().Disable();
  Telemetry::Get().Reset();
  std::vector<uint8_t> buf = PatternBuf(8 * 512, 0x11);
  ASSERT_TRUE(Replay(kMmcRwWrite, 8, 4096, buf.data()).ok());
  EXPECT_EQ(0u, Telemetry::Get().ring().pushed());
  EXPECT_EQ(0u, Telemetry::Get().metrics().counter("replay.template_hit").value());
}

}  // namespace
}  // namespace dlt
