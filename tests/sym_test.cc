// Unit tests for the symbolic expression / taint / constraint substrate.
#include <gtest/gtest.h>

#include "src/sym/constraint.h"

namespace dlt {
namespace {

TEST(ExprTest, ConstFoldingOnConstruction) {
  ExprRef e = Expr::Binary(ExprOp::kAdd, Expr::Const(2), Expr::Const(3));
  ASSERT_TRUE(e->is_const());
  EXPECT_EQ(5u, e->constant());
}

TEST(ExprTest, EvalWithBindings) {
  ExprRef e = Expr::Binary(ExprOp::kMul, Expr::Input("blkcnt"), Expr::Const(512));
  Bindings b{{"blkcnt", 8}};
  Result<uint64_t> v = e->Eval(b);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(4096u, *v);
}

TEST(ExprTest, EvalMissingBindingFails) {
  ExprRef e = Expr::Input("missing");
  Bindings b;
  EXPECT_FALSE(e->Eval(b).ok());
}

TEST(ExprTest, DivisionByZeroIsError) {
  ExprRef e = Expr::Binary(ExprOp::kDiv, Expr::Input("x"), Expr::Input("y"));
  Bindings b{{"x", 10}, {"y", 0}};
  EXPECT_FALSE(e->Eval(b).ok());
}

TEST(ExprTest, ToStringParseRoundTrip) {
  // (blkid & ~0x7): the paper's Table 4 alignment expression shape.
  ExprRef e = Expr::Binary(ExprOp::kAnd, Expr::Input("blkid"), Expr::Not(Expr::Input("mask")));
  Result<ExprRef> parsed = Expr::Parse(e->ToString());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(Expr::Equal(e, *parsed));
}

struct ExprRoundTripCase {
  const char* text;
  uint64_t x;
  uint64_t expect;
};

class ExprRoundTripTest : public ::testing::TestWithParam<ExprRoundTripCase> {};

TEST_P(ExprRoundTripTest, ParsePrintEvalAgree) {
  const ExprRoundTripCase& c = GetParam();
  Result<ExprRef> e = Expr::Parse(c.text);
  ASSERT_TRUE(e.ok()) << c.text;
  // Round-trip through the printer.
  Result<ExprRef> e2 = Expr::Parse((*e)->ToString());
  ASSERT_TRUE(e2.ok());
  EXPECT_TRUE(Expr::Equal(*e, *e2)) << c.text;
  Bindings b{{"x", c.x}};
  Result<uint64_t> v = (*e)->Eval(b);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(c.expect, *v) << c.text;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExprRoundTripTest,
    ::testing::Values(ExprRoundTripCase{"0x2a", 0, 0x2a},
                      ExprRoundTripCase{"x", 7, 7},
                      ExprRoundTripCase{"(x + 0x1)", 7, 8},
                      ExprRoundTripCase{"(x * 0x200)", 8, 4096},
                      ExprRoundTripCase{"((x * 0x200) - 0x1000)", 16, 4096},
                      ExprRoundTripCase{"(x & (~0x7))", 43, 40},
                      ExprRoundTripCase{"((0x8000 | (x << 0x6)) | 0x12)", 1, 0x8052},
                      ExprRoundTripCase{"(x >> 0x3)", 24, 3},
                      ExprRoundTripCase{"(x % 0x8)", 43, 3},
                      ExprRoundTripCase{"((x / 0x2) ^ 0xff)", 6, 0xfc}));

TEST(ExprTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Expr::Parse("").ok());
  EXPECT_FALSE(Expr::Parse("(x +)").ok());
  EXPECT_FALSE(Expr::Parse("x y").ok());
  EXPECT_FALSE(Expr::Parse("(x < y)").ok());
  EXPECT_FALSE(Expr::Parse("0x").ok());
}

TEST(TValueTest, UntaintedStaysConcrete) {
  TValue a(5);
  TValue b(3);
  TValue c = a + b;
  EXPECT_FALSE(c.tainted());
  EXPECT_EQ(8u, c.value());
}

TEST(TValueTest, TaintPropagatesThroughArithmetic) {
  TValue blkcnt = TValue::Input("blkcnt", 8);
  TValue total = blkcnt * TValue(512);
  EXPECT_TRUE(total.tainted());
  EXPECT_EQ(4096u, total.value());
  EXPECT_EQ("(blkcnt * 0x200)", total.expr()->ToString());
}

TEST(TValueTest, TaintAccumulatesOperations) {
  // Table 4: SDCMD = ((0x8000) | ((rw) << 6)).
  TValue rw = TValue::Input("rw", 1);
  TValue cmd = TValue(0x8000) | (rw << TValue(6));
  EXPECT_TRUE(cmd.tainted());
  EXPECT_EQ(0x8040u, cmd.value());
  std::set<std::string> inputs;
  cmd.expr()->CollectInputs(&inputs);
  EXPECT_EQ(1u, inputs.count("rw"));
}

TEST(TValueTest, BitwiseNotOnTainted) {
  TValue blkid = TValue::Input("blkid", 43);
  TValue aligned = blkid & ~TValue(0x7);
  EXPECT_EQ(40u, aligned.value());
  EXPECT_TRUE(aligned.tainted());
}

TEST(ConstraintTest, EvalConjunction) {
  Constraint c;
  c.AddAtom(CmpGt(TValue::Input("blkcnt", 8), TValue(0)));
  c.AddAtom(CmpLe(TValue::Input("blkcnt", 8), TValue(8)));
  Bindings ok{{"blkcnt", 5}};
  Bindings nope{{"blkcnt", 20}};
  EXPECT_TRUE(*c.Eval(ok));
  EXPECT_FALSE(*c.Eval(nope));
}

TEST(ConstraintTest, AtomNegation) {
  ConstraintAtom a = CmpLe(TValue::Input("x", 1), TValue(8));
  ConstraintAtom n = a.Negated();
  EXPECT_EQ(Cmp::kGt, n.cmp);
  Bindings b{{"x", 9}};
  EXPECT_FALSE(*a.Eval(b));
  EXPECT_TRUE(*n.Eval(b));
}

TEST(ConstraintTest, ToStringParseRoundTrip) {
  Constraint c;
  c.AddAtom(CmpGe(TValue::Input("blkcnt", 1), TValue(0)));
  c.AddAtom(CmpLe(TValue::Input("blkcnt", 1) * TValue(512), TValue(0x1000)));
  c.AddAtom(CmpEq(TValue::Input("rw", 1), TValue(1)));
  Result<Constraint> parsed = Constraint::Parse(c.ToString());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(c.ToString(), parsed->ToString());
}

TEST(ConstraintTest, EmptyConstraintIsTrue) {
  Constraint c;
  EXPECT_EQ("true", c.ToString());
  Result<Constraint> parsed = Constraint::Parse("true");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
  EXPECT_TRUE(*c.Eval({}));
}

TEST(ConstraintTest, DuplicateAtomsDeduplicated) {
  Constraint c;
  c.AddAtom(CmpEq(TValue::Input("rw", 1), TValue(1)));
  c.AddAtom(CmpEq(TValue::Input("rw", 1), TValue(1)));
  EXPECT_EQ(1u, c.atoms().size());
}

class CompareValuesTest : public ::testing::TestWithParam<std::tuple<Cmp, uint64_t, uint64_t>> {};

TEST_P(CompareValuesTest, MatchesReferenceSemantics) {
  auto [cmp, a, b] = GetParam();
  bool expect = false;
  switch (cmp) {
    case Cmp::kEq: expect = a == b; break;
    case Cmp::kNe: expect = a != b; break;
    case Cmp::kLt: expect = a < b; break;
    case Cmp::kLe: expect = a <= b; break;
    case Cmp::kGt: expect = a > b; break;
    case Cmp::kGe: expect = a >= b; break;
  }
  EXPECT_EQ(expect, CompareValues(cmp, a, b));
  // Negation must flip the verdict for every pair.
  EXPECT_EQ(!expect, CompareValues(NegateCmp(cmp), a, b));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CompareValuesTest,
    ::testing::Combine(::testing::Values(Cmp::kEq, Cmp::kNe, Cmp::kLt, Cmp::kLe, Cmp::kGt,
                                         Cmp::kGe),
                       ::testing::Values(0ull, 1ull, 8ull, 0xffffffffull),
                       ::testing::Values(0ull, 1ull, 8ull, 0xffffffffull)));

}  // namespace
}  // namespace dlt
