// End-to-end MMC driverlet tests: record campaign on a developer machine,
// sealed package, replay on a secure-IO deployment machine (paper §6.1, §7.2).
#include <gtest/gtest.h>

#include "src/core/coverage.h"
#include "src/core/replayer.h"
#include "src/workload/record_campaigns.h"
#include "src/workload/rpi3_testbed.h"
#include "src/workload/deploy_util.h"

namespace dlt {
namespace {

class MmcDriverletTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // One shared record campaign: recording is deterministic and read-only
    // with respect to the tests below.
    dev_machine_ = new Rpi3Testbed(TestbedOptions{});
    Result<RecordCampaign> campaign = RecordMmcCampaign(dev_machine_);
    ASSERT_TRUE(campaign.ok()) << StatusName(campaign.status());
    campaign_ = new RecordCampaign(std::move(*campaign));
    sealed_ = new std::vector<uint8_t>(
        campaign_->Seal(PackageFormat::kText, kDeveloperKey));
  }
  static void TearDownTestSuite() {
    delete campaign_;
    delete dev_machine_;
    delete sealed_;
    campaign_ = nullptr;
    dev_machine_ = nullptr;
    sealed_ = nullptr;
  }

  void SetUp() override {
    TestbedOptions opts;
    opts.secure_io = true;
    opts.probe_drivers = false;
    deploy_ = std::make_unique<Rpi3Testbed>(opts);
    replayer_ = std::make_unique<Replayer>(&deploy_->tee(), kDeveloperKey);
    ASSERT_EQ(Status::kOk, replayer_->LoadPackage(sealed_->data(), sealed_->size()));
  }

  Result<ReplayStats> Replay(uint64_t rw, uint64_t blkcnt, uint64_t blkid, uint8_t* buf) {
    ReplayArgs args;
    args.scalars = {{"rw", rw}, {"blkcnt", blkcnt}, {"blkid", blkid}, {"flag", 0}};
    args.buffers["buf"] = BufferView{buf, static_cast<size_t>(blkcnt) * 512};
    return replayer_->Invoke(kMmcEntry, args);
  }

  static Rpi3Testbed* dev_machine_;
  static RecordCampaign* campaign_;
  static std::vector<uint8_t>* sealed_;
  std::unique_ptr<Rpi3Testbed> deploy_;
  std::unique_ptr<Replayer> replayer_;
};

Rpi3Testbed* MmcDriverletTest::dev_machine_ = nullptr;
RecordCampaign* MmcDriverletTest::campaign_ = nullptr;
std::vector<uint8_t>* MmcDriverletTest::sealed_ = nullptr;

TEST_F(MmcDriverletTest, CampaignProducesTenTemplates) {
  EXPECT_EQ(10u, campaign_->templates().size());
  for (const auto& t : campaign_->templates()) {
    EXPECT_EQ(kMmcEntry, t.entry);
    EXPECT_GT(t.events.size(), 10u) << t.name;
    EventBreakdown b = t.CountEvents();
    EXPECT_GT(b.input, 0) << t.name;
    EXPECT_GT(b.output, 0) << t.name;
    EXPECT_GT(b.meta, 0) << t.name;
  }
}

TEST_F(MmcDriverletTest, EventCountsGrowWithBlockCount) {
  auto total = [&](const std::string& name) {
    for (const auto& t : campaign_->templates()) {
      if (t.name == name) {
        return t.CountEvents().total();
      }
    }
    return -1;
  };
  EXPECT_LT(total("RD_8"), total("RD_32"));
  EXPECT_LT(total("RD_32"), total("RD_128"));
  EXPECT_LT(total("RD_128"), total("RD_256"));
  EXPECT_LT(total("WR_8"), total("WR_256"));
}

TEST_F(MmcDriverletTest, ReplayWriteThenReadRoundTrips) {
  std::vector<uint8_t> data = PatternBuf(8 * 512, 0xabc);
  Result<ReplayStats> wr = Replay(kMmcRwWrite, 8, 4096, data.data());
  ASSERT_TRUE(wr.ok()) << StatusName(wr.status());
  EXPECT_EQ("WR_8", wr->template_name);

  std::vector<uint8_t> readback(8 * 512, 0);
  Result<ReplayStats> rd = Replay(kMmcRwRead, 8, 4096, readback.data());
  ASSERT_TRUE(rd.ok()) << StatusName(rd.status());
  EXPECT_EQ("RD_8", rd->template_name);
  EXPECT_EQ(data, readback);
}

TEST_F(MmcDriverletTest, ReplayGeneralizesToNewAddressesAndCounts) {
  // New block address and a count (5) never recorded, but inside RW_8's
  // constraint region — the paper's expressiveness claim (§3.3).
  std::vector<uint8_t> data = PatternBuf(5 * 512, 0x77);
  Result<ReplayStats> wr = Replay(kMmcRwWrite, 5, 81920, data.data());
  ASSERT_TRUE(wr.ok()) << StatusName(wr.status());
  EXPECT_EQ("WR_8", wr->template_name);
  std::vector<uint8_t> readback(5 * 512, 0);
  ASSERT_TRUE(Replay(kMmcRwRead, 5, 81920, readback.data()).ok());
  EXPECT_EQ(data, readback);
}

TEST_F(MmcDriverletTest, SingleBlockUsesDedicatedTemplate) {
  std::vector<uint8_t> data = PatternBuf(512, 0x11);
  Result<ReplayStats> wr = Replay(kMmcRwWrite, 1, 2048, data.data());
  ASSERT_TRUE(wr.ok());
  EXPECT_EQ("WR_1", wr->template_name);
}

TEST_F(MmcDriverletTest, UncoveredBlockCountIsRejected) {
  // 20 blocks falls in the coverage hole between RW_8 (<=8) and RW_32 ((24,32]).
  std::vector<uint8_t> data(20 * 512, 0);
  Result<ReplayStats> r = Replay(kMmcRwRead, 20, 2048, data.data());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(Status::kNoTemplate, r.status());
}

TEST_F(MmcDriverletTest, MisalignedBlockIdIsRejected) {
  // The paper fed misaligned blkid manually and observed divergence from the
  // recorded path (§6.1.3); with constraints it is rejected at selection.
  std::vector<uint8_t> data(512, 0);
  Result<ReplayStats> r = Replay(kMmcRwRead, 1, 2049, data.data());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(Status::kNoTemplate, r.status());
}

TEST_F(MmcDriverletTest, OutOfRangeBlockIdIsRejected) {
  std::vector<uint8_t> data(512, 0);
  Result<ReplayStats> r = Replay(kMmcRwRead, 1, kSdSectors + 8, data.data());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(Status::kNoTemplate, r.status());
}

TEST_F(MmcDriverletTest, CoverageReportSpansRecordedRegions) {
  Coverage cov = campaign_->ComputeCoverage();
  EXPECT_TRUE(Covers(cov, "blkcnt", 1));
  EXPECT_TRUE(Covers(cov, "blkcnt", 8));
  EXPECT_TRUE(Covers(cov, "blkcnt", 256));
  EXPECT_FALSE(Covers(cov, "blkcnt", 20));
  EXPECT_FALSE(Covers(cov, "blkcnt", 300));
  EXPECT_TRUE(Covers(cov, "rw", kMmcRwRead));
  EXPECT_TRUE(Covers(cov, "rw", kMmcRwWrite));
  EXPECT_FALSE(cov.empty());
}

TEST_F(MmcDriverletTest, Cmd23OnlyOnReadPath) {
  // Paper §6.1.3: CMD23 (SET_BLOCK_COUNT) is used on the read path but not the
  // write path. Check the SDCMD writes in the templates.
  auto counts_cmd23 = [&](const InteractionTemplate& t) {
    int n = 0;
    for (const auto& e : t.events) {
      if (e.kind == EventKind::kRegWrite && e.reg_off == 0x00 && e.value != nullptr &&
          e.value->is_const() && (e.value->constant() & 0x3f) == 23) {
        ++n;
      }
    }
    return n;
  };
  for (const auto& t : campaign_->templates()) {
    if (t.name.rfind("RD_", 0) == 0) {
      EXPECT_EQ(1, counts_cmd23(t)) << t.name;
    } else {
      EXPECT_EQ(0, counts_cmd23(t)) << t.name;
    }
  }
}

TEST_F(MmcDriverletTest, ReplayRepeatsAreStable) {
  // Stress: repeated template invocations on fresh data (paper §7.2 stress
  // testing, scaled down).
  for (int i = 0; i < 20; ++i) {
    std::vector<uint8_t> data = PatternBuf(512, static_cast<uint64_t>(i));
    uint64_t blkid = 1024 + static_cast<uint64_t>(i) * 8;
    ASSERT_TRUE(Replay(kMmcRwWrite, 1, blkid, data.data()).ok()) << i;
    std::vector<uint8_t> readback(512, 0);
    ASSERT_TRUE(Replay(kMmcRwRead, 1, blkid, readback.data()).ok()) << i;
    ASSERT_EQ(data, readback) << i;
  }
}

TEST_F(MmcDriverletTest, NormalWorldCannotTouchSecureMmc) {
  // TZASC isolation on the deployment machine.
  Result<uint32_t> r = deploy_->machine().mem().Read32(World::kNormal, kMmcBase + kSdHsts);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(Status::kPermissionDenied, r.status());
  EXPECT_GT(deploy_->machine().tzasc().denied_count(), 0u);
}

TEST_F(MmcDriverletTest, BinaryPackageRoundTripsToo) {
  PackageSizes sizes;
  std::vector<uint8_t> bin = campaign_->Seal(PackageFormat::kBinary, kDeveloperKey, &sizes);
  Replayer r2(&deploy_->tee(), kDeveloperKey);
  ASSERT_EQ(Status::kOk, r2.LoadPackage(bin.data(), bin.size()));
  EXPECT_EQ(10u, r2.templates().size());
  EXPECT_LT(sizes.compressed, sizes.serialized);
}

}  // namespace
}  // namespace dlt
