// End-to-end display (trusted-UI) driverlet tests — the paper's third secure-IO
// use case built on the same record/replay machinery.
#include <gtest/gtest.h>

#include "src/core/replayer.h"
#include "src/workload/record_campaigns.h"
#include "src/workload/rpi3_testbed.h"
#include "src/workload/deploy_util.h"

namespace dlt {
namespace {

class DisplayDriverletTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dev_machine_ = new Rpi3Testbed(TestbedOptions{});
    Result<RecordCampaign> campaign = RecordDisplayCampaign(dev_machine_);
    ASSERT_TRUE(campaign.ok()) << StatusName(campaign.status());
    campaign_ = new RecordCampaign(std::move(*campaign));
    sealed_ = new std::vector<uint8_t>(campaign_->Seal(PackageFormat::kText, kDeveloperKey));
  }
  static void TearDownTestSuite() {
    delete campaign_;
    delete dev_machine_;
    delete sealed_;
  }

  void SetUp() override {
    TestbedOptions opts;
    opts.secure_io = true;
    opts.probe_drivers = false;
    deploy_ = std::make_unique<Rpi3Testbed>(opts);
    replayer_ = std::make_unique<Replayer>(&deploy_->tee(), kDeveloperKey);
    ASSERT_EQ(Status::kOk, replayer_->LoadPackage(sealed_->data(), sealed_->size()));
  }

  Result<ReplayStats> Blit(uint64_t x, uint64_t y, uint64_t w, uint64_t h,
                           std::vector<uint8_t>* bitmap) {
    ReplayArgs args;
    args.scalars = {{"x", x}, {"y", y}, {"w", w}, {"h", h}};
    args.buffers["buf"] = BufferView{bitmap->data(), bitmap->size()};
    return replayer_->Invoke(kDisplayEntry, args);
  }

  static Rpi3Testbed* dev_machine_;
  static RecordCampaign* campaign_;
  static std::vector<uint8_t>* sealed_;
  std::unique_ptr<Rpi3Testbed> deploy_;
  std::unique_ptr<Replayer> replayer_;
};

Rpi3Testbed* DisplayDriverletTest::dev_machine_ = nullptr;
RecordCampaign* DisplayDriverletTest::campaign_ = nullptr;
std::vector<uint8_t>* DisplayDriverletTest::sealed_ = nullptr;

TEST_F(DisplayDriverletTest, GeometriesMergeIntoOneTemplate) {
  // No geometry-dependent branches: the three record runs externalize the same
  // transition path and merge (the camera-resolution effect, generalized).
  EXPECT_EQ(1u, campaign_->templates().size());
}

TEST_F(DisplayDriverletTest, BlitLandsOnPanelAtArbitraryGeometry) {
  // 100x30 at (123, 45): never recorded; covered by the merged template.
  uint32_t w = 100;
  uint32_t h = 30;
  std::vector<uint8_t> bitmap(static_cast<size_t>(w) * h * 4);
  for (size_t i = 0; i + 3 < bitmap.size(); i += 4) {
    uint32_t px = 0x00c0ffee;
    std::memcpy(bitmap.data() + i, &px, 4);
  }
  Result<ReplayStats> r = Blit(123, 45, w, h, &bitmap);
  ASSERT_TRUE(r.ok()) << StatusName(r.status());
  EXPECT_EQ(0x00c0ffeeu, deploy_->display().PanelPixel(123, 45));
  EXPECT_EQ(0x00c0ffeeu, deploy_->display().PanelPixel(123 + w - 1, 45 + h - 1));
  EXPECT_EQ(0u, deploy_->display().PanelPixel(123 + w, 45));  // untouched outside
}

TEST_F(DisplayDriverletTest, PixelContentsExact) {
  uint32_t w = 16;
  uint32_t h = 16;
  std::vector<uint8_t> bitmap = PatternBuf(static_cast<size_t>(w) * h * 4, 0x1234);
  ASSERT_TRUE(Blit(0, 0, w, h, &bitmap).ok());
  for (uint32_t y = 0; y < h; ++y) {
    for (uint32_t x = 0; x < w; ++x) {
      uint32_t expect = 0;
      std::memcpy(&expect, bitmap.data() + (static_cast<size_t>(y) * w + x) * 4, 4);
      ASSERT_EQ(expect, deploy_->display().PanelPixel(x, y)) << x << "," << y;
    }
  }
}

TEST_F(DisplayDriverletTest, OffscreenGeometryRejectedAtSelection) {
  std::vector<uint8_t> bitmap(64 * 64 * 4, 0);
  Result<ReplayStats> r = Blit(kPanelWidth - 32, 0, 64, 64, &bitmap);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(Status::kNoTemplate, r.status());
}

TEST_F(DisplayDriverletTest, UndersizedBitmapRejected) {
  std::vector<uint8_t> bitmap(16, 0);  // far smaller than w*h*4
  Result<ReplayStats> r = Blit(0, 0, 64, 64, &bitmap);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(Status::kInvalidArg, r.status());  // executor buffer boundary check
}

TEST_F(DisplayDriverletTest, NormalWorldCannotReachPanel) {
  Result<uint32_t> r =
      deploy_->machine().mem().Read32(World::kNormal, kDisplayBase + kDispStatus);
  EXPECT_EQ(Status::kPermissionDenied, r.status());
}

TEST_F(DisplayDriverletTest, RepeatedBlitsAreStable) {
  for (int i = 0; i < 10; ++i) {
    uint32_t w = 8 + static_cast<uint32_t>(i) * 4;
    std::vector<uint8_t> bitmap(static_cast<size_t>(w) * w * 4,
                                static_cast<uint8_t>(0x40 + i));
    ASSERT_TRUE(Blit(static_cast<uint64_t>(i) * 16, static_cast<uint64_t>(i) * 8, w, w, &bitmap)
                    .ok())
        << i;
  }
  EXPECT_EQ(10u, deploy_->display().commits());
}

TEST_F(DisplayDriverletTest, ScanlineStatisticToleratedAcrossRuns) {
  // The beam-position read differs at every replay; it must never diverge.
  std::vector<uint8_t> bitmap(32 * 32 * 4, 0xaa);
  for (int i = 0; i < 5; ++i) {
    deploy_->clock().Advance(7'777);  // decorrelate from the recorded timing
    Result<ReplayStats> r = Blit(64, 64, 32, 32, &bitmap);
    ASSERT_TRUE(r.ok()) << i;
    EXPECT_EQ(1, r->attempts) << "no divergence retry expected";
  }
}

}  // namespace
}  // namespace dlt
