// End-to-end camera (VCHIQ/MMAL) driverlet tests (paper §6.3).
#include <gtest/gtest.h>

#include "src/core/replayer.h"
#include "src/workload/record_campaigns.h"
#include "src/workload/rpi3_testbed.h"
#include "src/workload/deploy_util.h"

namespace dlt {
namespace {

class CameraDriverletTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dev_machine_ = new Rpi3Testbed(TestbedOptions{});
    Result<RecordCampaign> campaign = RecordCameraCampaign(dev_machine_);
    ASSERT_TRUE(campaign.ok()) << StatusName(campaign.status());
    campaign_ = new RecordCampaign(std::move(*campaign));
    sealed_ = new std::vector<uint8_t>(campaign_->Seal(PackageFormat::kText, kDeveloperKey));
  }
  static void TearDownTestSuite() {
    delete campaign_;
    delete dev_machine_;
    delete sealed_;
  }

  void SetUp() override {
    TestbedOptions opts;
    opts.secure_io = true;
    opts.probe_drivers = false;
    deploy_ = std::make_unique<Rpi3Testbed>(opts);
    replayer_ = std::make_unique<Replayer>(&deploy_->tee(), kDeveloperKey);
    ASSERT_EQ(Status::kOk, replayer_->LoadPackage(sealed_->data(), sealed_->size()));
    buf_.resize(Vc4Firmware::FrameBytes(1440) + 4096);
    img_size_.assign(4, 0);
  }

  Result<ReplayStats> Capture(uint64_t frames, uint64_t resolution) {
    ReplayArgs args;
    args.scalars = {{"frame", frames}, {"resolution", resolution}, {"buf_size", buf_.size()}};
    args.buffers["buf"] = BufferView{buf_.data(), buf_.size()};
    args.buffers["img_size"] = BufferView{img_size_.data(), img_size_.size()};
    return replayer_->Invoke(kCameraEntry, args);
  }

  uint32_t LastImgSize() const {
    uint32_t v = 0;
    std::memcpy(&v, img_size_.data(), 4);
    return v;
  }

  static Rpi3Testbed* dev_machine_;
  static RecordCampaign* campaign_;
  static std::vector<uint8_t>* sealed_;
  std::unique_ptr<Rpi3Testbed> deploy_;
  std::unique_ptr<Replayer> replayer_;
  std::vector<uint8_t> buf_;
  std::vector<uint8_t> img_size_;
};

Rpi3Testbed* CameraDriverletTest::dev_machine_ = nullptr;
RecordCampaign* CameraDriverletTest::campaign_ = nullptr;
std::vector<uint8_t>* CameraDriverletTest::sealed_ = nullptr;

TEST_F(CameraDriverletTest, NineRunsMergeIntoThreeTemplates) {
  // 3 frame counts x 3 resolutions, but the driver's state-transition path is
  // resolution-independent: the recorder merges duplicates (paper §6.3.2
  // reports exactly 3 templates: OneShot, ShortBurst, LongBurst).
  ASSERT_EQ(3u, campaign_->templates().size());
  std::set<std::string> names;
  for (const auto& t : campaign_->templates()) {
    names.insert(t.name);
  }
  EXPECT_TRUE(names.count("OneShot"));
  EXPECT_TRUE(names.count("ShortBurst"));
  EXPECT_TRUE(names.count("LongBurst"));
}

TEST_F(CameraDriverletTest, EventCountsScaleWithBurstLength) {
  auto total = [&](const std::string& name) {
    for (const auto& t : campaign_->templates()) {
      if (t.name == name) {
        return t.CountEvents().total();
      }
    }
    return -1;
  };
  EXPECT_LT(total("OneShot"), total("ShortBurst"));
  EXPECT_LT(total("ShortBurst"), total("LongBurst"));
}

TEST_F(CameraDriverletTest, TemplatesContainLiftedPolls) {
  // The slot-handler's open-coded wait loops must have been lifted into poll
  // meta events (paper §4.2, Challenge III).
  for (const auto& t : campaign_->templates()) {
    EXPECT_GT(t.CountEvents().meta, 0) << t.name;
  }
}

TEST_F(CameraDriverletTest, OneShotCaptureProducesValidJpeg) {
  Result<ReplayStats> r = Capture(1, 1080);
  ASSERT_TRUE(r.ok()) << StatusName(r.status());
  EXPECT_EQ("OneShot", r->template_name);
  uint32_t size = LastImgSize();
  EXPECT_EQ(Vc4Firmware::FrameBytes(1080), size);
  // JPEG integrity check, as the paper's validation scripts do (§7.2).
  ASSERT_GE(size, 4u);
  EXPECT_EQ(0xff, buf_[0]);
  EXPECT_EQ(0xd8, buf_[1]);
  EXPECT_EQ(0xff, buf_[size - 2]);
  EXPECT_EQ(0xd9, buf_[size - 1]);
}

TEST_F(CameraDriverletTest, TemplatesCoverAllResolutions) {
  for (uint64_t res : {720u, 1080u, 1440u}) {
    Result<ReplayStats> r = Capture(1, res);
    ASSERT_TRUE(r.ok()) << res << ": " << StatusName(r.status());
    EXPECT_EQ(Vc4Firmware::FrameBytes(static_cast<uint32_t>(res)), LastImgSize()) << res;
  }
}

TEST_F(CameraDriverletTest, ShortBurstCapturesTenFrames) {
  Result<ReplayStats> r = Capture(10, 720);
  ASSERT_TRUE(r.ok()) << StatusName(r.status());
  EXPECT_EQ("ShortBurst", r->template_name);
  EXPECT_EQ(10u, deploy_->vc4().frames_produced());
}

TEST_F(CameraDriverletTest, UnsupportedResolutionDiverges) {
  // VC4 rejects the resolution in its ack; the state-changing status check
  // fails, the replayer resets/retries and ultimately aborts.
  Result<ReplayStats> r = Capture(1, 480);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(Status::kAborted, r.status());
  EXPECT_TRUE(replayer_->last_report().valid);
}

TEST_F(CameraDriverletTest, UncoveredFrameCountRejected) {
  Result<ReplayStats> r = Capture(5, 720);
  EXPECT_EQ(Status::kNoTemplate, r.status());
}

TEST_F(CameraDriverletTest, FrameContentMatchesFirmwareGenerator) {
  ASSERT_TRUE(Capture(1, 720).ok());
  std::vector<uint8_t> expect = Vc4Firmware::MakeFrame(0, 720);
  ASSERT_GE(buf_.size(), expect.size());
  EXPECT_TRUE(std::equal(expect.begin(), expect.end(), buf_.begin()));
}

}  // namespace
}  // namespace dlt
