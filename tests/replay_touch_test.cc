// End-to-end trusted-input (touch) driverlet tests, plus multi-trustlet device
// sharing: "their requests can be serialized without notable user experience
// degradation" (paper §2.1).
#include <gtest/gtest.h>

#include "src/core/replayer.h"
#include "src/workload/record_campaigns.h"
#include "src/workload/rpi3_testbed.h"
#include "src/workload/deploy_util.h"

namespace dlt {
namespace {

class TouchDriverletTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dev_machine_ = new Rpi3Testbed(TestbedOptions{});
    Result<RecordCampaign> campaign = RecordTouchCampaign(dev_machine_);
    ASSERT_TRUE(campaign.ok()) << StatusName(campaign.status());
    sealed_ = new std::vector<uint8_t>(campaign->Seal(PackageFormat::kText, kDeveloperKey));
  }
  static void TearDownTestSuite() {
    delete dev_machine_;
    delete sealed_;
  }

  void SetUp() override {
    TestbedOptions opts;
    opts.secure_io = true;
    opts.probe_drivers = false;
    deploy_ = std::make_unique<Rpi3Testbed>(opts);
    replayer_ = std::make_unique<Replayer>(&deploy_->tee(), kDeveloperKey);
    ASSERT_EQ(Status::kOk, replayer_->LoadPackage(sealed_->data(), sealed_->size()));
  }

  Result<uint32_t> AwaitTap() {
    std::vector<uint8_t> evt(4, 0);
    ReplayArgs args;
    args.buffers["evt"] = BufferView{evt.data(), evt.size()};
    Result<ReplayStats> r = replayer_->Invoke(kTouchEntry, args);
    if (!r.ok()) {
      return r.status();
    }
    uint32_t sample = 0;
    std::memcpy(&sample, evt.data(), 4);
    return sample;
  }

  static Rpi3Testbed* dev_machine_;
  static std::vector<uint8_t>* sealed_;
  std::unique_ptr<Rpi3Testbed> deploy_;
  std::unique_ptr<Replayer> replayer_;
};

Rpi3Testbed* TouchDriverletTest::dev_machine_ = nullptr;
std::vector<uint8_t>* TouchDriverletTest::sealed_ = nullptr;

TEST_F(TouchDriverletTest, DeliversInjectedSample) {
  deploy_->touch().InjectTouch(123, 456, /*delay_us=*/2'000);
  Result<uint32_t> sample = AwaitTap();
  ASSERT_TRUE(sample.ok()) << StatusName(sample.status());
  EXPECT_EQ(TouchController::PackSample(123, 456), *sample);
}

TEST_F(TouchDriverletTest, SampleCoordinatesAreDynamic) {
  // Different coordinates than recorded (400, 240): data-plane values pass
  // through; only the state machine is pinned.
  for (uint32_t i = 0; i < 5; ++i) {
    deploy_->touch().InjectTouch(10 * i, 20 * i, 1'000);
    Result<uint32_t> sample = AwaitTap();
    ASSERT_TRUE(sample.ok()) << i;
    EXPECT_EQ(TouchController::PackSample(10 * i, 20 * i), *sample);
  }
}

TEST_F(TouchDriverletTest, NoTouchTimesOutAsDivergence) {
  replayer_->set_max_attempts(1);
  Result<uint32_t> sample = AwaitTap();
  EXPECT_FALSE(sample.ok());
  EXPECT_EQ(Status::kAborted, sample.status());
}

TEST_F(TouchDriverletTest, TwoTrustletsShareTheDeviceSerialized) {
  // Two trustlets taking turns on one replayer: the paper's coarse-grained
  // sharing. Each gets its own tap, no cross-talk.
  deploy_->touch().InjectTouch(1, 1, 1'000);
  Result<uint32_t> a = AwaitTap();  // trustlet A
  deploy_->touch().InjectTouch(2, 2, 1'000);
  Result<uint32_t> b = AwaitTap();  // trustlet B
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(TouchController::PackSample(1, 1), *a);
  EXPECT_EQ(TouchController::PackSample(2, 2), *b);
}

TEST_F(TouchDriverletTest, NormalWorldCannotSnoopInput) {
  Result<uint32_t> r = deploy_->machine().mem().Read32(World::kNormal, kTouchBase + kTouchData);
  EXPECT_EQ(Status::kPermissionDenied, r.status());
}

TEST_F(TouchDriverletTest, FifoLevelStatisticTolerated) {
  // Extra queued samples change the FIFO-level statistic input; the replay
  // must not diverge on it (it is not state-changing).
  deploy_->touch().InjectTouch(5, 5, 0);
  deploy_->touch().InjectTouch(6, 6, 0);
  deploy_->touch().InjectTouch(7, 7, 0);
  Result<uint32_t> first = AwaitTap();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(TouchController::PackSample(5, 5), *first);
  Result<uint32_t> second = AwaitTap();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(TouchController::PackSample(6, 6), *second);
}

}  // namespace
}  // namespace dlt
