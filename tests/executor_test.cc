// Executor unit tests against a scripted fake ReplayContext — every event kind,
// binding/constraint semantics, poll loops, and the security boundary checks,
// without the full device stack.
#include <gtest/gtest.h>

#include <deque>

#include "src/core/executor.h"

namespace dlt {
namespace {

class FakeContext : public ReplayContext {
 public:
  // Scripted register read values, consumed in order; repeats the last one.
  std::deque<uint32_t> reg_values;
  std::map<PhysAddr, uint32_t> mem;
  std::vector<std::pair<uint64_t, uint32_t>> reg_writes;  // (dev<<32|off, value)
  PhysAddr pool_next = 0x1000;
  PhysAddr pool_base = 0x1000;
  uint64_t pool_size = 0x100000;
  bool irq_ok = true;
  int resets = 0;
  uint64_t now = 0;

  Result<uint32_t> RegRead32(uint16_t device, uint64_t offset) override {
    (void)device;
    (void)offset;
    if (reg_values.empty()) {
      return 0u;
    }
    uint32_t v = reg_values.front();
    if (reg_values.size() > 1) {
      reg_values.pop_front();
    }
    return v;
  }
  Status RegWrite32(uint16_t device, uint64_t offset, uint32_t value) override {
    reg_writes.push_back({(static_cast<uint64_t>(device) << 32) | offset, value});
    return Status::kOk;
  }
  Result<uint32_t> MemRead32(PhysAddr addr) override { return mem[addr]; }
  Status MemWrite32(PhysAddr addr, uint32_t value) override {
    mem[addr] = value;
    return Status::kOk;
  }
  Status MemCopyIn(PhysAddr dst, const uint8_t* src, size_t len) override {
    for (size_t i = 0; i < len; ++i) {
      bytes[dst + i] = src[i];
    }
    return Status::kOk;
  }
  Status MemCopyOut(uint8_t* dst, PhysAddr src, size_t len) override {
    for (size_t i = 0; i < len; ++i) {
      dst[i] = bytes.count(src + i) ? bytes[src + i] : 0;
    }
    return Status::kOk;
  }
  Result<PhysAddr> DmaAlloc(uint64_t size) override {
    PhysAddr a = pool_next;
    pool_next += (size + 0xfff) & ~0xfffull;
    if (pool_next > pool_base + pool_size) {
      return Status::kNoMemory;
    }
    return a;
  }
  void DmaReleaseAll() override { pool_next = pool_base; }
  Result<uint32_t> RandomU32() override { return 0x1234u; }
  uint64_t TimestampUs() override { return now; }
  Status WaitForIrq(int, uint64_t) override { return irq_ok ? Status::kOk : Status::kTimeout; }
  void DelayUs(uint64_t us) override { now += us; }
  Status SoftResetDevice(uint16_t) override {
    ++resets;
    return Status::kOk;
  }
  bool AddressAllowed(PhysAddr addr, size_t len) override {
    return addr >= pool_base && addr + len <= pool_base + pool_size;
  }
  void ChargeReplayOverheadNs(uint64_t) override {}

  std::map<PhysAddr, uint8_t> bytes;
};

TemplateEvent RegReadEv(const std::string& bind, Constraint c = {}, bool sc = false) {
  TemplateEvent e;
  e.kind = EventKind::kRegRead;
  e.device = 1;
  e.reg_off = 0x20;
  e.bind = bind;
  e.constraint = std::move(c);
  e.state_changing = sc;
  return e;
}

TEST(ExecutorTest, BindsInputsAndEvaluatesOutputExpressions) {
  FakeContext ctx;
  ctx.reg_values = {0x77};
  InteractionTemplate t;
  t.name = "T";
  t.events.push_back(RegReadEv("din0"));
  TemplateEvent wr;
  wr.kind = EventKind::kRegWrite;
  wr.device = 1;
  wr.reg_off = 0x30;
  wr.value = Expr::Binary(ExprOp::kAdd, Expr::Input("din0"), Expr::Input("blkcnt"));
  t.events.push_back(wr);

  ReplayArgs args;
  args.scalars["blkcnt"] = 3;
  Executor exec(&ctx, &t, &args);
  DivergenceReport report;
  ASSERT_EQ(Status::kOk, exec.Run(&report));
  ASSERT_EQ(1u, ctx.reg_writes.size());
  EXPECT_EQ(0x7au, ctx.reg_writes[0].second);  // 0x77 + 3
}

TEST(ExecutorTest, ConstraintViolationDiverges) {
  FakeContext ctx;
  ctx.reg_values = {0x2};  // the recording expects 0x1 (paper Fig. 2c)
  InteractionTemplate t;
  t.name = "T";
  Constraint c;
  c.AddAtom(ConstraintAtom{Expr::Input("din0"), Cmp::kEq, Expr::Const(0x1)});
  t.events.push_back(RegReadEv("din0", c, /*sc=*/true));
  ReplayArgs args;
  Executor exec(&ctx, &t, &args);
  DivergenceReport report;
  EXPECT_EQ(Status::kDiverged, exec.Run(&report));
  EXPECT_TRUE(report.valid);
  EXPECT_EQ(0x2u, report.observed);
  EXPECT_EQ(0u, report.event_index);
}

TEST(ExecutorTest, IrqTimeoutDiverges) {
  FakeContext ctx;
  ctx.irq_ok = false;
  InteractionTemplate t;
  t.name = "T";
  TemplateEvent irq;
  irq.kind = EventKind::kWaitIrq;
  irq.irq_line = 5;
  irq.timeout_us = 1000;
  t.events.push_back(irq);
  ReplayArgs args;
  Executor exec(&ctx, &t, &args);
  DivergenceReport report;
  EXPECT_EQ(Status::kDiverged, exec.Run(&report));
}

TEST(ExecutorTest, PollLoopTerminatesOnCondition) {
  FakeContext ctx;
  ctx.reg_values = {0, 0, 0, 0x8000};  // three misses, then the bit appears
  InteractionTemplate t;
  t.name = "T";
  TemplateEvent poll;
  poll.kind = EventKind::kPollReg;
  poll.device = 1;
  poll.reg_off = 0x0;
  poll.mask = 0x8000;
  poll.want = 0x8000;
  poll.poll_cmp = Cmp::kEq;
  poll.timeout_us = 10'000;
  poll.interval_us = 10;
  poll.bind = "final";
  t.events.push_back(poll);
  TemplateEvent wr;
  wr.kind = EventKind::kRegWrite;
  wr.device = 1;
  wr.reg_off = 0x4;
  wr.value = Expr::Input("final");
  t.events.push_back(wr);
  ReplayArgs args;
  Executor exec(&ctx, &t, &args);
  DivergenceReport report;
  ASSERT_EQ(Status::kOk, exec.Run(&report));
  EXPECT_EQ(30u, ctx.now);  // three interval delays
  EXPECT_EQ(0x8000u, ctx.reg_writes[0].second);  // terminal value was bound
}

TEST(ExecutorTest, PollTimeoutDiverges) {
  FakeContext ctx;
  ctx.reg_values = {0};
  InteractionTemplate t;
  t.name = "T";
  TemplateEvent poll;
  poll.kind = EventKind::kPollReg;
  poll.mask = 1;
  poll.want = 1;
  poll.timeout_us = 100;
  poll.interval_us = 10;
  t.events.push_back(poll);
  ReplayArgs args;
  Executor exec(&ctx, &t, &args);
  DivergenceReport report;
  EXPECT_EQ(Status::kDiverged, exec.Run(&report));
}

TEST(ExecutorTest, GreaterThanPollCondition) {
  FakeContext ctx;
  ctx.reg_values = {4, 4, 9};  // poll until value > 4 (camera cursor style)
  InteractionTemplate t;
  t.name = "T";
  TemplateEvent poll;
  poll.kind = EventKind::kPollReg;
  poll.mask = 0xffffffff;
  poll.want = 4;
  poll.poll_cmp = Cmp::kGt;
  poll.timeout_us = 10'000;
  poll.interval_us = 50;
  t.events.push_back(poll);
  ReplayArgs args;
  Executor exec(&ctx, &t, &args);
  DivergenceReport report;
  EXPECT_EQ(Status::kOk, exec.Run(&report));
}

TEST(ExecutorTest, ShmAddressOutsideRunAllocationsBlocked) {
  FakeContext ctx;
  InteractionTemplate t;
  t.name = "T";
  TemplateEvent w;
  w.kind = EventKind::kShmWrite;
  w.addr = Expr::Const(0x2000);  // inside the pool, but never allocated this run
  w.value = Expr::Const(1);
  t.events.push_back(w);
  ReplayArgs args;
  Executor exec(&ctx, &t, &args);
  DivergenceReport report;
  EXPECT_EQ(Status::kPermissionDenied, exec.Run(&report));
}

TEST(ExecutorTest, ShmWriteInsideAllocationWorks) {
  FakeContext ctx;
  InteractionTemplate t;
  t.name = "T";
  TemplateEvent alloc;
  alloc.kind = EventKind::kDmaAlloc;
  alloc.bind = "dma0";
  alloc.value = Expr::Const(4096);
  t.events.push_back(alloc);
  TemplateEvent w;
  w.kind = EventKind::kShmWrite;
  w.addr = Expr::Binary(ExprOp::kAdd, Expr::Input("dma0"), Expr::Const(8));
  w.value = Expr::Const(0xabcd);
  t.events.push_back(w);
  ReplayArgs args;
  Executor exec(&ctx, &t, &args);
  DivergenceReport report;
  ASSERT_EQ(Status::kOk, exec.Run(&report));
  EXPECT_EQ(0xabcdu, ctx.mem[0x1008]);
}

TEST(ExecutorTest, CopyRespectsSymbolicLengths) {
  FakeContext ctx;
  InteractionTemplate t;
  t.name = "T";
  t.params = {{"n", false}, {"buf", true}};
  TemplateEvent alloc;
  alloc.kind = EventKind::kDmaAlloc;
  alloc.bind = "dma0";
  alloc.value = Expr::Const(4096);
  t.events.push_back(alloc);
  TemplateEvent cp;
  cp.kind = EventKind::kCopyToDma;
  cp.addr = Expr::Input("dma0");
  cp.buffer = "buf";
  cp.buf_offset = Expr::Const(0);
  cp.value = Expr::Binary(ExprOp::kMul, Expr::Input("n"), Expr::Const(4));
  t.events.push_back(cp);

  std::vector<uint8_t> buf = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  ReplayArgs args;
  args.scalars["n"] = 2;  // copy 8 of the 12 bytes
  args.buffers["buf"] = BufferView{buf.data(), buf.size()};
  Executor exec(&ctx, &t, &args);
  DivergenceReport report;
  ASSERT_EQ(Status::kOk, exec.Run(&report));
  EXPECT_EQ(8u, ctx.bytes.size());
  EXPECT_EQ(1, ctx.bytes[0x1000]);
  EXPECT_EQ(8, ctx.bytes[0x1007]);
}

TEST(ExecutorTest, DanglingSymbolIsCorruptNotCrash) {
  FakeContext ctx;
  InteractionTemplate t;
  t.name = "T";
  TemplateEvent w;
  w.kind = EventKind::kRegWrite;
  w.value = Expr::Input("never_bound");
  t.events.push_back(w);
  ReplayArgs args;
  Executor exec(&ctx, &t, &args);
  DivergenceReport report;
  EXPECT_EQ(Status::kCorrupt, exec.Run(&report));
}

TEST(ExecutorTest, DmaPoolExhaustionDiverges) {
  FakeContext ctx;
  ctx.pool_size = 0x1000;
  InteractionTemplate t;
  t.name = "T";
  for (int i = 0; i < 3; ++i) {
    TemplateEvent alloc;
    alloc.kind = EventKind::kDmaAlloc;
    alloc.bind = "dma" + std::to_string(i);
    alloc.value = Expr::Const(4096);
    t.events.push_back(alloc);
  }
  ReplayArgs args;
  Executor exec(&ctx, &t, &args);
  DivergenceReport report;
  EXPECT_EQ(Status::kDiverged, exec.Run(&report));
}

TEST(ExecutorTest, EnvInputsBindForLaterUse) {
  FakeContext ctx;
  ctx.now = 42;
  InteractionTemplate t;
  t.name = "T";
  TemplateEvent ts;
  ts.kind = EventKind::kGetTimestamp;
  ts.bind = "ts0";
  t.events.push_back(ts);
  TemplateEvent rnd;
  rnd.kind = EventKind::kGetRandBytes;
  rnd.bind = "rand0";
  t.events.push_back(rnd);
  TemplateEvent w;
  w.kind = EventKind::kRegWrite;
  w.value = Expr::Binary(ExprOp::kXor, Expr::Input("ts0"), Expr::Input("rand0"));
  t.events.push_back(w);
  ReplayArgs args;
  Executor exec(&ctx, &t, &args);
  DivergenceReport report;
  ASSERT_EQ(Status::kOk, exec.Run(&report));
  EXPECT_EQ(42u ^ 0x1234u, ctx.reg_writes[0].second);
}

}  // namespace
}  // namespace dlt
