// Robustness sweeps over real driverlet packages: every truncation point and a
// byte-flip sweep must be rejected cleanly (never parsed, never crash) — the
// attack surface an adversarial OS has against the replayer's loader (§7.2.2).
// Also full-campaign serialization round-trips for both wire formats.
#include <gtest/gtest.h>

#include "src/core/package.h"
#include "src/core/serialize_binary.h"
#include "src/core/serialize_text.h"
#include "src/workload/record_campaigns.h"
#include "tests/test_util.h"

namespace dlt {
namespace {

class PackageFuzzTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rpi3Testbed dev{TestbedOptions{}};
    Result<RecordCampaign> c = RecordMmcCampaign(&dev);
    ASSERT_TRUE(c.ok());
    campaign_ = new RecordCampaign(std::move(*c));
    text_pkg_ = new std::vector<uint8_t>(campaign_->Seal(PackageFormat::kText, kDeveloperKey));
    bin_pkg_ = new std::vector<uint8_t>(campaign_->Seal(PackageFormat::kBinary, kDeveloperKey));
  }
  static void TearDownTestSuite() {
    delete campaign_;
    delete text_pkg_;
    delete bin_pkg_;
  }

  static RecordCampaign* campaign_;
  static std::vector<uint8_t>* text_pkg_;
  static std::vector<uint8_t>* bin_pkg_;
};

RecordCampaign* PackageFuzzTest::campaign_ = nullptr;
std::vector<uint8_t>* PackageFuzzTest::text_pkg_ = nullptr;
std::vector<uint8_t>* PackageFuzzTest::bin_pkg_ = nullptr;

TEST_F(PackageFuzzTest, EveryTruncationRejected) {
  const std::vector<uint8_t>& pkg = *bin_pkg_;
  for (size_t cut = 0; cut < pkg.size(); cut += 97) {
    Result<DriverletPackage> r = OpenPackage(pkg.data(), cut, kDeveloperKey);
    EXPECT_FALSE(r.ok()) << "truncation at " << cut << " accepted";
  }
}

TEST_F(PackageFuzzTest, ByteFlipSweepRejected) {
  std::vector<uint8_t> pkg = *text_pkg_;
  for (size_t pos = 0; pos < pkg.size(); pos += 131) {
    pkg[pos] ^= 0x55;
    Result<DriverletPackage> r = OpenPackage(pkg.data(), pkg.size(), kDeveloperKey);
    EXPECT_FALSE(r.ok()) << "flip at " << pos << " accepted";
    pkg[pos] ^= 0x55;  // restore
  }
  // Sanity: the untouched package still opens.
  EXPECT_TRUE(OpenPackage(pkg.data(), pkg.size(), kDeveloperKey).ok());
}

TEST_F(PackageFuzzTest, RawSerializedFormsSurviveFlipsWithoutCrashing) {
  // Below the signature layer: the parsers themselves must be memory-safe on
  // corrupted input (they may accept or reject; they must not crash).
  std::vector<uint8_t> bin = TemplatesToBinary(campaign_->templates());
  for (size_t pos = 0; pos < bin.size(); pos += 211) {
    std::vector<uint8_t> bad = bin;
    bad[pos] ^= 0xff;
    (void)TemplatesFromBinary(bad.data(), bad.size());
  }
  std::string text = TemplatesToText(campaign_->templates());
  for (size_t pos = 0; pos < text.size(); pos += 509) {
    std::string bad = text;
    bad[pos] = '~';
    (void)TemplatesFromText(bad);
  }
  SUCCEED();
}

TEST_F(PackageFuzzTest, FullCampaignTextRoundTrip) {
  std::string text = TemplatesToText(campaign_->templates());
  Result<std::vector<InteractionTemplate>> parsed = TemplatesFromText(text);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(campaign_->templates().size(), parsed->size());
  for (size_t i = 0; i < parsed->size(); ++i) {
    EXPECT_TRUE(SameStateTransition(campaign_->templates()[i].events, (*parsed)[i].events)) << i;
    EXPECT_EQ(campaign_->templates()[i].initial.ToString(), (*parsed)[i].initial.ToString()) << i;
  }
  // Serialization is a fixpoint: emit(parse(emit(t))) == emit(t).
  EXPECT_EQ(text, TemplatesToText(*parsed));
}

TEST_F(PackageFuzzTest, FullCampaignBinaryRoundTrip) {
  std::vector<uint8_t> bin = TemplatesToBinary(campaign_->templates());
  Result<std::vector<InteractionTemplate>> parsed = TemplatesFromBinary(bin.data(), bin.size());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(campaign_->templates().size(), parsed->size());
  EXPECT_EQ(bin, TemplatesToBinary(*parsed));
}

TEST_F(PackageFuzzTest, CrossFormatAgreement) {
  // Text and binary decode to structurally identical templates.
  Result<DriverletPackage> from_text = OpenPackage(text_pkg_->data(), text_pkg_->size(),
                                                   kDeveloperKey);
  Result<DriverletPackage> from_bin = OpenPackage(bin_pkg_->data(), bin_pkg_->size(),
                                                  kDeveloperKey);
  ASSERT_TRUE(from_text.ok());
  ASSERT_TRUE(from_bin.ok());
  ASSERT_EQ(from_text->templates.size(), from_bin->templates.size());
  for (size_t i = 0; i < from_text->templates.size(); ++i) {
    EXPECT_TRUE(InteractionTemplate::Mergeable(from_text->templates[i], from_bin->templates[i]))
        << i;
  }
}

}  // namespace
}  // namespace dlt
