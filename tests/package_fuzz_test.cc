// Robustness sweeps over real driverlet packages: every truncation point and a
// byte-flip sweep must be rejected cleanly (never parsed, never crash) — the
// attack surface an adversarial OS has against the replayer's loader (§7.2.2).
// Also full-campaign serialization round-trips for both wire formats.
#include <gtest/gtest.h>

#include "src/core/package.h"
#include "src/core/serialize_binary.h"
#include "src/core/serialize_text.h"
#include "src/workload/record_campaigns.h"
#include "src/workload/deploy_util.h"

namespace dlt {
namespace {

class PackageFuzzTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rpi3Testbed dev{TestbedOptions{}};
    Result<RecordCampaign> c = RecordMmcCampaign(&dev);
    ASSERT_TRUE(c.ok());
    campaign_ = new RecordCampaign(std::move(*c));
    text_pkg_ = new std::vector<uint8_t>(campaign_->Seal(PackageFormat::kText, kDeveloperKey));
    bin_pkg_ = new std::vector<uint8_t>(campaign_->Seal(PackageFormat::kBinary, kDeveloperKey));
  }
  static void TearDownTestSuite() {
    delete campaign_;
    delete text_pkg_;
    delete bin_pkg_;
  }

  static RecordCampaign* campaign_;
  static std::vector<uint8_t>* text_pkg_;
  static std::vector<uint8_t>* bin_pkg_;
};

RecordCampaign* PackageFuzzTest::campaign_ = nullptr;
std::vector<uint8_t>* PackageFuzzTest::text_pkg_ = nullptr;
std::vector<uint8_t>* PackageFuzzTest::bin_pkg_ = nullptr;

TEST_F(PackageFuzzTest, EveryTruncationRejected) {
  const std::vector<uint8_t>& pkg = *bin_pkg_;
  for (size_t cut = 0; cut < pkg.size(); cut += 97) {
    Result<DriverletPackage> r = OpenPackage(pkg.data(), cut, kDeveloperKey);
    EXPECT_FALSE(r.ok()) << "truncation at " << cut << " accepted";
  }
}

TEST_F(PackageFuzzTest, ByteFlipSweepRejected) {
  std::vector<uint8_t> pkg = *text_pkg_;
  for (size_t pos = 0; pos < pkg.size(); pos += 131) {
    pkg[pos] ^= 0x55;
    Result<DriverletPackage> r = OpenPackage(pkg.data(), pkg.size(), kDeveloperKey);
    EXPECT_FALSE(r.ok()) << "flip at " << pos << " accepted";
    pkg[pos] ^= 0x55;  // restore
  }
  // Sanity: the untouched package still opens.
  EXPECT_TRUE(OpenPackage(pkg.data(), pkg.size(), kDeveloperKey).ok());
}

TEST_F(PackageFuzzTest, RawSerializedFormsSurviveFlipsWithoutCrashing) {
  // Below the signature layer: the parsers themselves must be memory-safe on
  // corrupted input (they may accept or reject; they must not crash).
  std::vector<uint8_t> bin = TemplatesToBinary(campaign_->templates());
  for (size_t pos = 0; pos < bin.size(); pos += 211) {
    std::vector<uint8_t> bad = bin;
    bad[pos] ^= 0xff;
    (void)TemplatesFromBinary(bad.data(), bad.size());
  }
  std::string text = TemplatesToText(campaign_->templates());
  for (size_t pos = 0; pos < text.size(); pos += 509) {
    std::string bad = text;
    bad[pos] = '~';
    (void)TemplatesFromText(bad);
  }
  SUCCEED();
}

TEST_F(PackageFuzzTest, FullCampaignTextRoundTrip) {
  std::string text = TemplatesToText(campaign_->templates());
  Result<std::vector<InteractionTemplate>> parsed = TemplatesFromText(text);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(campaign_->templates().size(), parsed->size());
  for (size_t i = 0; i < parsed->size(); ++i) {
    EXPECT_TRUE(SameStateTransition(campaign_->templates()[i].events, (*parsed)[i].events)) << i;
    EXPECT_EQ(campaign_->templates()[i].initial.ToString(), (*parsed)[i].initial.ToString()) << i;
  }
  // Serialization is a fixpoint: emit(parse(emit(t))) == emit(t).
  EXPECT_EQ(text, TemplatesToText(*parsed));
}

TEST_F(PackageFuzzTest, FullCampaignBinaryRoundTrip) {
  std::vector<uint8_t> bin = TemplatesToBinary(campaign_->templates());
  Result<std::vector<InteractionTemplate>> parsed = TemplatesFromBinary(bin.data(), bin.size());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(campaign_->templates().size(), parsed->size());
  EXPECT_EQ(bin, TemplatesToBinary(*parsed));
}

TEST_F(PackageFuzzTest, CrossFormatAgreement) {
  // Text and binary decode to structurally identical templates.
  Result<DriverletPackage> from_text = OpenPackage(text_pkg_->data(), text_pkg_->size(),
                                                   kDeveloperKey);
  Result<DriverletPackage> from_bin = OpenPackage(bin_pkg_->data(), bin_pkg_->size(),
                                                  kDeveloperKey);
  ASSERT_TRUE(from_text.ok());
  ASSERT_TRUE(from_bin.ok());
  ASSERT_EQ(from_text->templates.size(), from_bin->templates.size());
  for (size_t i = 0; i < from_text->templates.size(); ++i) {
    EXPECT_TRUE(InteractionTemplate::Mergeable(from_text->templates[i], from_bin->templates[i]))
        << i;
  }
}

// ---- Seeded random-template property sweeps ----
//
// The campaign-based sweeps above only cover event shapes the real recorders
// happen to emit. These generate structurally diverse templates from a seed
// (kind-coherent fields, nested poll bodies, symbolic exprs over earlier
// binds) and check the serialization properties hold for all of them.

class FuzzRng {
 public:
  explicit FuzzRng(uint64_t seed) : s_(seed) {}
  uint64_t Next() {  // splitmix64
    uint64_t z = (s_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  uint64_t Below(uint64_t n) { return Next() % n; }
  bool Chance(uint64_t percent) { return Below(100) < percent; }

 private:
  uint64_t s_;
};

// An expression over a random earlier bind (symbolic) or a constant.
ExprRef RandomExpr(FuzzRng& rng, const std::vector<std::string>& binds) {
  ExprRef base = binds.empty() || rng.Chance(40)
                     ? Expr::Const(rng.Below(1u << 20))
                     : Expr::Input(binds[rng.Below(binds.size())]);
  if (rng.Chance(50)) {
    const ExprOp ops[] = {ExprOp::kAdd, ExprOp::kAnd, ExprOp::kOr, ExprOp::kXor,
                          ExprOp::kShl, ExprOp::kMul};
    return Expr::Binary(ops[rng.Below(6)], base, Expr::Const(1 + rng.Below(255)));
  }
  return base;
}

void FillPollFields(FuzzRng& rng, TemplateEvent& e) {
  e.mask = 1u << rng.Below(31);
  e.want = rng.Chance(50) ? e.mask : 0;
  e.poll_cmp = static_cast<Cmp>(rng.Below(6));
  e.interval_us = 1 + rng.Below(50);
  e.timeout_us = 100 + rng.Below(10000);  // zero would not survive text emit
  e.recorded_iters = static_cast<uint32_t>(rng.Below(8));
  if (rng.Chance(40)) {
    TemplateEvent child;
    child.kind = EventKind::kDelay;
    child.value = Expr::Const(1 + rng.Below(100));
    e.body.push_back(std::move(child));
  }
}

InteractionTemplate MakeRandomTemplate(FuzzRng& rng, int index) {
  InteractionTemplate t;
  t.name = "fz_" + std::to_string(index) + "_" + std::to_string(rng.Below(1000));
  t.entry = "replay_fuzz";
  t.primary_device = static_cast<uint16_t>(rng.Below(16));
  t.params.push_back(ParamSpec{"blkcnt", false});
  t.params.push_back(ParamSpec{"buf", true});
  if (rng.Chance(70)) {
    t.initial.AddAtom(ConstraintAtom{Expr::Input("blkcnt"), Cmp::kLe,
                                     Expr::Const(1 + rng.Below(64))});
  }
  if (rng.Chance(30)) {
    t.initial.AddAtom(
        ConstraintAtom{Expr::Input("blkcnt"), Cmp::kGt, Expr::Const(0)});
  }

  std::vector<std::string> binds;   // symbols later exprs may reference
  std::vector<std::string> dmas;    // dma_alloc bindings for shm addrs
  int n_events = 3 + static_cast<int>(rng.Below(8));
  for (int i = 0; i < n_events; ++i) {
    TemplateEvent e;
    e.file = "fuzz_gen.cc";
    e.line = 10 + i;
    switch (rng.Below(10)) {
      case 0: {  // reg_read, maybe state-changing with a constraint
        e.kind = EventKind::kRegRead;
        e.device = t.primary_device;
        e.reg_off = rng.Below(0x100) * 4;
        e.bind = "r" + std::to_string(i);
        if (rng.Chance(50)) {
          e.state_changing = true;
          e.constraint.AddAtom(ConstraintAtom{Expr::Input(e.bind), Cmp::kEq,
                                              Expr::Const(rng.Below(256))});
        }
        binds.push_back(e.bind);
        break;
      }
      case 1:
        e.kind = EventKind::kRegWrite;
        e.device = t.primary_device;
        e.reg_off = rng.Below(0x100) * 4;
        e.value = RandomExpr(rng, binds);
        break;
      case 2:
        e.kind = EventKind::kDmaAlloc;
        e.bind = "dma" + std::to_string(i);
        e.value = Expr::Const(512 << rng.Below(4));
        binds.push_back(e.bind);
        dmas.push_back(e.bind);
        break;
      case 3:
        if (dmas.empty()) {
          e.kind = EventKind::kGetTimestamp;
          e.bind = "ts" + std::to_string(i);
          binds.push_back(e.bind);
          break;
        }
        e.kind = rng.Chance(50) ? EventKind::kShmWrite : EventKind::kShmRead;
        e.addr = Expr::Binary(ExprOp::kAdd, Expr::Input(dmas[rng.Below(dmas.size())]),
                              Expr::Const(rng.Below(64) * 4));
        if (e.kind == EventKind::kShmWrite) {
          e.value = RandomExpr(rng, binds);
        } else {
          e.bind = "s" + std::to_string(i);
          binds.push_back(e.bind);
        }
        break;
      case 4:
        e.kind = EventKind::kWaitIrq;
        e.irq_line = static_cast<int>(rng.Below(64));
        if (rng.Chance(60)) {
          e.timeout_us = 100 + rng.Below(5000);
        }
        break;
      case 5:
        e.kind = EventKind::kDelay;
        e.value = Expr::Const(1 + rng.Below(500));
        break;
      case 6: {
        e.kind = EventKind::kPollReg;
        e.device = t.primary_device;
        e.reg_off = rng.Below(0x100) * 4;
        FillPollFields(rng, e);
        break;
      }
      case 7:
        if (dmas.empty()) {
          e.kind = EventKind::kGetRandBytes;
          e.bind = "rnd" + std::to_string(i);
          binds.push_back(e.bind);
          break;
        }
        e.kind = rng.Chance(50) ? EventKind::kCopyToDma : EventKind::kCopyFromDma;
        e.buffer = "buf";
        e.addr = Expr::Input(dmas[rng.Below(dmas.size())]);
        e.value = Expr::Const(64 << rng.Below(4));
        e.buf_offset = Expr::Const(rng.Below(16) * 64);
        break;
      case 8:
        e.kind = rng.Chance(50) ? EventKind::kPioIn : EventKind::kPioOut;
        e.device = t.primary_device;
        e.reg_off = rng.Below(16) * 4;
        if (e.kind == EventKind::kPioIn) {
          e.bind = "p" + std::to_string(i);
          binds.push_back(e.bind);
        } else {
          e.value = RandomExpr(rng, binds);
        }
        break;
      default:
        if (dmas.empty()) {
          e.kind = EventKind::kGetTimestamp;
          e.bind = "ts" + std::to_string(i);
          binds.push_back(e.bind);
          break;
        }
        e.kind = EventKind::kPollShm;
        e.addr = Expr::Binary(ExprOp::kAdd, Expr::Input(dmas[rng.Below(dmas.size())]),
                              Expr::Const(rng.Below(64) * 4));
        FillPollFields(rng, e);
        break;
    }
    t.events.push_back(std::move(e));
  }
  return t;
}

std::vector<InteractionTemplate> MakeRandomCampaign(uint64_t seed, int count) {
  FuzzRng rng(seed);
  std::vector<InteractionTemplate> out;
  for (int i = 0; i < count; ++i) {
    out.push_back(MakeRandomTemplate(rng, i));
  }
  return out;
}

TEST(SerializePropertyTest, RandomTemplatesBinaryRoundTripExact) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    std::vector<InteractionTemplate> ts = MakeRandomCampaign(seed, 3);
    std::vector<uint8_t> bin = TemplatesToBinary(ts);
    Result<std::vector<InteractionTemplate>> parsed =
        TemplatesFromBinary(bin.data(), bin.size());
    ASSERT_TRUE(parsed.ok()) << "seed " << seed;
    ASSERT_EQ(ts.size(), parsed->size()) << "seed " << seed;
    for (size_t i = 0; i < ts.size(); ++i) {
      EXPECT_TRUE(SameStateTransition(ts[i].events, (*parsed)[i].events))
          << "seed " << seed << " template " << i;
    }
    // Binary is full-fidelity: re-emission is byte-identical.
    EXPECT_EQ(bin, TemplatesToBinary(*parsed)) << "seed " << seed;
  }
}

TEST(SerializePropertyTest, RandomTemplatesTextRoundTripFixpoint) {
  for (uint64_t seed = 100; seed <= 119; ++seed) {
    std::vector<InteractionTemplate> ts = MakeRandomCampaign(seed, 3);
    std::string text = TemplatesToText(ts);
    Result<std::vector<InteractionTemplate>> parsed = TemplatesFromText(text);
    ASSERT_TRUE(parsed.ok()) << "seed " << seed << "\n" << text;
    ASSERT_EQ(ts.size(), parsed->size()) << "seed " << seed;
    for (size_t i = 0; i < ts.size(); ++i) {
      EXPECT_TRUE(SameStateTransition(ts[i].events, (*parsed)[i].events))
          << "seed " << seed << " template " << i;
      EXPECT_EQ(ts[i].initial.ToString(), (*parsed)[i].initial.ToString());
    }
    EXPECT_EQ(text, TemplatesToText(*parsed)) << "seed " << seed;
  }
}

// Builds a deliberately small sealed package so the every-byte sweeps below
// stay cheap (sealing is O(n); a whole-package sweep is O(n^2)).
std::vector<uint8_t> SmallSealedPackage(PackageFormat format) {
  DriverletPackage pkg;
  pkg.driverlet = "fuzz";
  pkg.templates = MakeRandomCampaign(7, 1);
  return SealPackage(pkg, format, kDeveloperKey);
}

TEST(SerializePropertyTest, SealedTruncationAtEveryByteRejected) {
  std::vector<uint8_t> sealed = SmallSealedPackage(PackageFormat::kBinary);
  ASSERT_TRUE(OpenPackage(sealed.data(), sealed.size(), kDeveloperKey).ok());
  for (size_t cut = 0; cut < sealed.size(); ++cut) {
    Result<DriverletPackage> r = OpenPackage(sealed.data(), cut, kDeveloperKey);
    ASSERT_FALSE(r.ok()) << "truncation at " << cut << " accepted";
    EXPECT_TRUE(r.status() == Status::kCorrupt || r.status() == Status::kInvalidArg)
        << "truncation at " << cut << ": " << StatusName(r.status());
  }
}

TEST(SerializePropertyTest, SealedCorruptionAtEveryByteRejected) {
  std::vector<uint8_t> sealed = SmallSealedPackage(PackageFormat::kText);
  for (size_t pos = 0; pos < sealed.size(); ++pos) {
    sealed[pos] ^= 0x80;
    Result<DriverletPackage> r = OpenPackage(sealed.data(), sealed.size(), kDeveloperKey);
    ASSERT_FALSE(r.ok()) << "flip at " << pos << " accepted";
    EXPECT_TRUE(r.status() == Status::kCorrupt || r.status() == Status::kInvalidArg)
        << "flip at " << pos << ": " << StatusName(r.status());
    sealed[pos] ^= 0x80;
  }
  EXPECT_TRUE(OpenPackage(sealed.data(), sealed.size(), kDeveloperKey).ok());
}

TEST(SerializePropertyTest, RawBinaryTruncationAtEveryOffsetErrors) {
  // Below the signature layer the parser has no HMAC to lean on; the trailing
  // cursor check still guarantees every proper prefix is rejected.
  std::vector<uint8_t> bin = TemplatesToBinary(MakeRandomCampaign(11, 1));
  for (size_t cut = 0; cut < bin.size(); ++cut) {
    Result<std::vector<InteractionTemplate>> r = TemplatesFromBinary(bin.data(), cut);
    ASSERT_FALSE(r.ok()) << "prefix of " << cut << " bytes accepted";
    EXPECT_TRUE(r.status() == Status::kCorrupt || r.status() == Status::kInvalidArg)
        << "prefix " << cut << ": " << StatusName(r.status());
  }
}

TEST(SerializePropertyTest, BinaryV2DirectoryTruncationAtEveryOffsetErrors) {
  // The zero-copy directory parser must reject every proper prefix below the
  // signature layer, just like the v1 stream parser.
  std::vector<uint8_t> bin = TemplatesToBinaryV2(MakeRandomCampaign(17, 2));
  ASSERT_TRUE(PackageView::Parse(bin.data(), bin.size()).ok());
  for (size_t cut = 0; cut < bin.size(); ++cut) {
    Result<PackageView> r = PackageView::Parse(bin.data(), cut);
    ASSERT_FALSE(r.ok()) << "prefix of " << cut << " bytes accepted";
    EXPECT_TRUE(r.status() == Status::kCorrupt || r.status() == Status::kInvalidArg)
        << "prefix " << cut << ": " << StatusName(r.status());
  }
}

TEST(SerializePropertyTest, BinaryV2CorruptionAtEveryByteNeverCrashes) {
  // Parse + full hydration over every single-byte corruption: accept or
  // reject, never crash — the body decoder is bounds-checked against the
  // directory's byte ranges.
  std::vector<uint8_t> bin = TemplatesToBinaryV2(MakeRandomCampaign(19, 1));
  for (size_t pos = 0; pos < bin.size(); ++pos) {
    std::vector<uint8_t> bad = bin;
    bad[pos] ^= 0xff;
    Result<PackageView> r = PackageView::Parse(bad.data(), bad.size());
    if (!r.ok()) {
      EXPECT_TRUE(r.status() == Status::kCorrupt || r.status() == Status::kInvalidArg)
          << "flip at " << pos << ": " << StatusName(r.status());
      continue;
    }
    for (size_t i = 0; i < r->size(); ++i) {
      InteractionTemplate t = r->header(i);
      (void)r->HydrateEvents(i, &t);
    }
  }
  SUCCEED();
}

TEST(SerializePropertyTest, RawBinaryCorruptionAtEveryByteNeverCrashes) {
  // A flipped byte may still decode to some valid template (e.g. inside a
  // string payload); the property is memory-safety plus a clean status.
  std::vector<uint8_t> bin = TemplatesToBinary(MakeRandomCampaign(13, 1));
  for (size_t pos = 0; pos < bin.size(); ++pos) {
    std::vector<uint8_t> bad = bin;
    bad[pos] ^= 0xff;
    Result<std::vector<InteractionTemplate>> r = TemplatesFromBinary(bad.data(), bad.size());
    if (!r.ok()) {
      EXPECT_TRUE(r.status() == Status::kCorrupt || r.status() == Status::kInvalidArg)
          << "flip at " << pos << ": " << StatusName(r.status());
    }
  }
}

}  // namespace
}  // namespace dlt
