// Differential coverage for the ISSUE 9 tentpole: constraint-indexed
// selection vs the linear oracle, the v2 zero-copy package format, lazy
// hydration, and the disk-persisted compile cache.
//
//   TemplateIndexTest  index-vs-linear parity on the production-shaped scale
//                      corpus plus crafted ambiguity / missing-param /
//                      kNoTemplate edges, and FactorGates unit coverage
//   PackageV2Test      seal/open round trips across wire generations, every-
//                      byte truncation + corruption sweeps, mmap registration
//                      without up-front hydration
//   StoreScaleTest     disk program-cache restart behaviour and concurrent
//                      shard-view selection over one lazily mapped population
//                      (the TSan job runs this suite)
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "src/check/scale_corpus.h"
#include "src/check/template_gen.h"
#include "src/core/constraint_index.h"
#include "src/core/package.h"
#include "src/core/program_cache.h"
#include "src/core/serialize_binary.h"
#include "src/core/template_store.h"
#include "src/tee/replay_service.h"
#include "src/workload/deploy_util.h"

namespace dlt {
namespace {

bool WriteFileBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  size_t n = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  return n == bytes.size();
}

InteractionTemplate TinyTemplate(const std::string& name, const std::string& entry,
                                 uint64_t sel) {
  InteractionTemplate t;
  t.name = name;
  t.entry = entry;
  t.primary_device = 1;
  t.params.push_back(ParamSpec{"sel", false});
  t.initial.AddAtom(ConstraintAtom{Expr::Input("sel"), Cmp::kEq, Expr::Const(sel)});
  TemplateEvent e;
  e.kind = EventKind::kDelay;
  e.value = Expr::Const(1);
  t.events.push_back(std::move(e));
  return t;
}

// ---------------------------------------------------------------------------
// TemplateIndexTest
// ---------------------------------------------------------------------------

TEST(TemplateIndexTest, FactorGatesExtractsEqRangeMask) {
  Constraint c;
  c.AddAtom(ConstraintAtom{Expr::Input("sel"), Cmp::kEq, Expr::Const(7)});
  c.AddAtom(ConstraintAtom{Expr::Input("lvl"), Cmp::kGe, Expr::Const(16)});
  c.AddAtom(ConstraintAtom{Expr::Input("lvl"), Cmp::kLe, Expr::Const(23)});
  c.AddAtom(ConstraintAtom{
      Expr::Binary(ExprOp::kAnd, Expr::Input("flags"), Expr::Const(0xff00)), Cmp::kEq,
      Expr::Const(0x200)});
  std::vector<ConstraintGate> gates = FactorGates(c);
  bool saw_eq = false, saw_range = false, saw_mask = false;
  for (const ConstraintGate& g : gates) {
    if (g.kind == ConstraintGate::Kind::kEq && g.field == "sel" && g.eq == 7) saw_eq = true;
    if (g.kind == ConstraintGate::Kind::kRange && g.field == "lvl") saw_range = true;
    if (g.kind == ConstraintGate::Kind::kMask && g.field == "flags" && g.mask == 0xff00 &&
        g.want == 0x200) {
      saw_mask = true;
    }
  }
  EXPECT_TRUE(saw_eq);
  EXPECT_TRUE(saw_range);
  EXPECT_TRUE(saw_mask);
}

TEST(TemplateIndexTest, FactorGatesIgnoresUnfactorableAtoms) {
  // xor-obfuscated compare: semantically an equality, but not a gate shape —
  // the candidate must land in the residual list, not get a wrong gate.
  Constraint c;
  c.AddAtom(ConstraintAtom{Expr::Binary(ExprOp::kXor, Expr::Input("sel"), Expr::Const(1)),
                           Cmp::kEq, Expr::Const(4)});
  c.AddAtom(ConstraintAtom{Expr::Input("a"), Cmp::kNe, Expr::Const(0)});
  EXPECT_TRUE(FactorGates(c).empty());
}

TEST(TemplateIndexTest, ProbeReturnsMatchingSubsetInSlotOrder) {
  std::vector<Constraint> cs(12);
  for (size_t i = 0; i < cs.size(); ++i) {
    cs[i].AddAtom(ConstraintAtom{Expr::Input("sel"), Cmp::kEq, Expr::Const(i)});
  }
  std::vector<const Constraint*> ptrs;
  for (const Constraint& c : cs) ptrs.push_back(&c);
  EntryConstraintIndex idx;
  idx.Build(ptrs);
  ASSERT_TRUE(idx.discriminating());
  EXPECT_EQ(idx.indexed_count(), cs.size());
  std::vector<uint32_t> out;
  idx.Probe(Bindings{{"sel", 5}}, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 5u);
  out.clear();
  idx.Probe(Bindings{{"sel", 99}}, &out);
  EXPECT_TRUE(out.empty());
}

TEST(TemplateIndexTest, IndexedSelectMatchesLinearOnScaleCorpus) {
  ScaleCorpusConfig cfg;
  cfg.templates = 600;
  cfg.entries = 12;
  ScaleCorpus corpus = BuildScaleCorpus(cfg);
  TemplateStore store;
  ASSERT_TRUE(Ok(store.AddPackage(corpus.pkg)));
  EXPECT_EQ(store.indexed_slot_count(), cfg.entries);

  uint64_t scanned_before = store.candidates_scanned();
  for (size_t target = 0; target < cfg.templates; target += 7) {
    Bindings scalars = ScaleInvokeScalars(corpus, target);
    std::string entry = ScaleEntry(cfg, target);
    Result<const InteractionTemplate*> fast = store.Select(kScaleDriverlet, entry, scalars);
    Result<const InteractionTemplate*> slow =
        store.SelectLinear(kScaleDriverlet, entry, scalars);
    ASSERT_TRUE(fast.ok()) << "target " << target;
    ASSERT_TRUE(slow.ok()) << "target " << target;
    EXPECT_EQ((*fast)->name, (*slow)->name) << "target " << target;
    EXPECT_EQ((*fast)->name, "scale_" + std::to_string(target));
    EXPECT_FALSE((*fast)->events.empty());  // eager load: bodies present
  }
  EXPECT_GT(store.index_probes(), 0u);
  // The indexed scans are interleaved with full linear scans above; the
  // aggregate still has to come in far under 2x the pure-linear cost.
  uint64_t scanned = store.candidates_scanned() - scanned_before;
  uint64_t rows_per_slot = cfg.templates / cfg.entries;
  EXPECT_LT(scanned, 2 * (cfg.templates / 7 + 1) * rows_per_slot);
}

TEST(TemplateIndexTest, RejectedReportMatchesLinearPath) {
  ScaleCorpusConfig cfg;
  cfg.templates = 120;
  cfg.entries = 4;
  ScaleCorpus corpus = BuildScaleCorpus(cfg);
  TemplateStore store;
  ASSERT_TRUE(Ok(store.AddPackage(corpus.pkg)));
  for (size_t target = 0; target < cfg.templates; target += 13) {
    Bindings scalars = ScaleInvokeScalars(corpus, target);
    std::string entry = ScaleEntry(cfg, target);
    std::vector<const InteractionTemplate*> rej_a, rej_b;
    Result<const InteractionTemplate*> a = store.Select(kScaleDriverlet, entry, scalars, &rej_a);
    Result<const InteractionTemplate*> b =
        store.SelectLinear(kScaleDriverlet, entry, scalars, &rej_b);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ((*a)->name, (*b)->name);
    // rejected!=nullptr routes Select through the full scan, so the reports
    // are identical, not merely similar.
    EXPECT_EQ(rej_a, rej_b) << "target " << target;
  }
}

TEST(TemplateIndexTest, NoTemplateAndMissingParamAgree) {
  ScaleCorpusConfig cfg;
  cfg.templates = 200;
  cfg.entries = 8;
  ScaleCorpus corpus = BuildScaleCorpus(cfg);
  TemplateStore store;
  ASSERT_TRUE(Ok(store.AddPackage(corpus.pkg)));

  // Bindings matching no row of slot 0.
  Bindings none = ScaleInvokeScalars(corpus, 0);
  none["sel"] = 0xdeadbeefull;
  none["lvl"] = 3;
  none["flags"] = 0;
  Result<const InteractionTemplate*> fast = store.Select(kScaleDriverlet, ScaleEntry(cfg, 0), none);
  Result<const InteractionTemplate*> slow =
      store.SelectLinear(kScaleDriverlet, ScaleEntry(cfg, 0), none);
  ASSERT_FALSE(fast.ok());
  ASSERT_FALSE(slow.ok());
  EXPECT_EQ(fast.status(), slow.status());

  // Bindings missing every constrained scalar: the param-presence check skips
  // all rows on both paths.
  Bindings missing{{"unrelated", 1}};
  fast = store.Select(kScaleDriverlet, ScaleEntry(cfg, 0), missing);
  slow = store.SelectLinear(kScaleDriverlet, ScaleEntry(cfg, 0), missing);
  EXPECT_FALSE(fast.ok());
  EXPECT_FALSE(slow.ok());
  EXPECT_EQ(fast.status(), slow.status());
}

TEST(TemplateIndexTest, AmbiguousMatchKeepsFirstOnBothPaths) {
  // Rows 0..9 carry sel==i, except row 7 duplicates row 3's constraint. The
  // slot is large enough to be indexed; sel=3 lights rows {3, 7} in the eq
  // bucket and first-match-wins must pick row 3 on both paths.
  DriverletPackage pkg;
  pkg.driverlet = "amb";
  for (uint64_t i = 0; i < 10; ++i) {
    pkg.templates.push_back(
        TinyTemplate("amb_" + std::to_string(i), "replay_amb", i == 7 ? 3 : i));
  }
  TemplateStore store;
  ASSERT_TRUE(Ok(store.AddPackage(pkg)));
  ASSERT_EQ(store.indexed_slot_count(), 1u);
  Bindings scalars{{"sel", 3}};
  Result<const InteractionTemplate*> fast = store.Select("amb", "replay_amb", scalars);
  Result<const InteractionTemplate*> slow = store.SelectLinear("amb", "replay_amb", scalars);
  ASSERT_TRUE(fast.ok() && slow.ok());
  EXPECT_EQ((*fast)->name, "amb_3");
  EXPECT_EQ((*slow)->name, "amb_3");
}

TEST(TemplateIndexTest, SmallSlotsSkipTheIndex) {
  DriverletPackage pkg;
  pkg.driverlet = "tiny";
  for (uint64_t i = 0; i < EntryConstraintIndex::kMinIndexedCandidates - 1; ++i) {
    pkg.templates.push_back(TinyTemplate("tiny_" + std::to_string(i), "replay_tiny", i));
  }
  TemplateStore store;
  ASSERT_TRUE(Ok(store.AddPackage(pkg)));
  EXPECT_EQ(store.indexed_slot_count(), 0u);
  uint64_t probes_before = store.index_probes();
  Result<const InteractionTemplate*> r = store.Select("tiny", "replay_tiny", Bindings{{"sel", 2}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->name, "tiny_2");
  EXPECT_EQ(store.index_probes(), probes_before);
}

TEST(TemplateIndexTest, SelectCompiledAgreesWithSelect) {
  ScaleCorpusConfig cfg;
  cfg.templates = 300;
  cfg.entries = 6;
  ScaleCorpus corpus = BuildScaleCorpus(cfg);
  TemplateStore store;
  ASSERT_TRUE(Ok(store.AddPackage(corpus.pkg)));
  for (size_t target = 0; target < cfg.templates; target += 11) {
    Bindings scalars = ScaleInvokeScalars(corpus, target);
    std::string entry = ScaleEntry(cfg, target);
    Result<const InteractionTemplate*> sel = store.Select(kScaleDriverlet, entry, scalars);
    Result<TemplateStore::CompiledSelection> comp =
        store.SelectCompiled(kScaleDriverlet, entry, scalars);
    ASSERT_TRUE(sel.ok() && comp.ok()) << "target " << target;
    EXPECT_EQ((*sel)->name, comp->tpl->name) << "target " << target;
  }
}

// ---------------------------------------------------------------------------
// PackageV2Test
// ---------------------------------------------------------------------------

DriverletPackage SmallV2Package() {
  DriverletPackage pkg;
  pkg.driverlet = "fuzz2";
  for (uint64_t s = 0; s < 2; ++s) {
    GenConfig gc;
    gc.seed = 21 + s;
    gc.min_blocks = 1;
    gc.max_blocks = 2;
    GeneratedCase c = GenerateCase(gc);
    c.tpl.name = "v2_" + std::to_string(s);
    pkg.templates.push_back(std::move(c.tpl));
  }
  return pkg;
}

TEST(PackageV2Test, SealV2RoundTripsThroughOpenPackage) {
  DriverletPackage pkg = SmallV2Package();
  PackageSizes sizes;
  std::vector<uint8_t> sealed = SealPackageV2(pkg, kDeveloperKey, &sizes);
  EXPECT_EQ(sizes.serialized, sizes.compressed);  // v2 is uncompressed
  Result<DriverletPackage> back = OpenPackage(sealed.data(), sealed.size(), kDeveloperKey);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->driverlet, pkg.driverlet);
  ASSERT_EQ(back->templates.size(), pkg.templates.size());
  for (size_t i = 0; i < pkg.templates.size(); ++i) {
    EXPECT_TRUE(SameStateTransition(pkg.templates[i].events, back->templates[i].events)) << i;
    EXPECT_EQ(pkg.templates[i].initial.ToString(), back->templates[i].initial.ToString()) << i;
  }
}

TEST(PackageV2Test, V1AndV2DecodeToIdenticalTemplates) {
  DriverletPackage pkg = SmallV2Package();
  std::vector<uint8_t> v1 = SealPackage(pkg, PackageFormat::kBinary, kDeveloperKey);
  std::vector<uint8_t> v2 = SealPackageV2(pkg, kDeveloperKey);
  Result<DriverletPackage> from_v1 = OpenPackage(v1.data(), v1.size(), kDeveloperKey);
  Result<DriverletPackage> from_v2 = OpenPackage(v2.data(), v2.size(), kDeveloperKey);
  ASSERT_TRUE(from_v1.ok() && from_v2.ok());
  ASSERT_EQ(from_v1->templates.size(), from_v2->templates.size());
  // The canonical binary encoding is the strictest equality we have.
  for (size_t i = 0; i < from_v1->templates.size(); ++i) {
    EXPECT_EQ(TemplateContentHash(from_v1->templates[i]),
              TemplateContentHash(from_v2->templates[i]))
        << i;
  }
}

TEST(PackageV2Test, ViewHydratesToTheEagerParse) {
  DriverletPackage pkg = SmallV2Package();
  std::vector<uint8_t> sealed = SealPackageV2(pkg, kDeveloperKey);
  Result<SealedView> sv = OpenPackageView(sealed.data(), sealed.size(), kDeveloperKey);
  ASSERT_TRUE(sv.ok());
  EXPECT_EQ(sv->driverlet, "fuzz2");
  ASSERT_EQ(sv->view.size(), pkg.templates.size());
  for (size_t i = 0; i < sv->view.size(); ++i) {
    InteractionTemplate t = sv->view.header(i);
    EXPECT_TRUE(t.events.empty());  // directory parse only
    ASSERT_TRUE(Ok(sv->view.HydrateEvents(i, &t)));
    EXPECT_EQ(TemplateContentHash(t), TemplateContentHash(pkg.templates[i])) << i;
  }
}

TEST(PackageV2Test, V1EnvelopeYieldsUnsupportedForZeroCopyOpen) {
  DriverletPackage pkg = SmallV2Package();
  std::vector<uint8_t> v1 = SealPackage(pkg, PackageFormat::kBinary, kDeveloperKey);
  Result<SealedView> sv = OpenPackageView(v1.data(), v1.size(), kDeveloperKey);
  ASSERT_FALSE(sv.ok());
  EXPECT_EQ(sv.status(), Status::kUnsupported);
}

TEST(PackageV2Test, TruncationAtEveryByteRejected) {
  std::vector<uint8_t> sealed = SealPackageV2(SmallV2Package(), kDeveloperKey);
  for (size_t cut = 0; cut < sealed.size(); ++cut) {
    Result<DriverletPackage> r = OpenPackage(sealed.data(), cut, kDeveloperKey);
    ASSERT_FALSE(r.ok()) << "truncation at " << cut << " accepted";
    EXPECT_TRUE(r.status() == Status::kCorrupt || r.status() == Status::kInvalidArg)
        << "truncation at " << cut << ": " << StatusName(r.status());
  }
}

TEST(PackageV2Test, CorruptionAtEveryByteRejected) {
  std::vector<uint8_t> sealed = SealPackageV2(SmallV2Package(), kDeveloperKey);
  for (size_t pos = 0; pos < sealed.size(); ++pos) {
    sealed[pos] ^= 0x80;
    Result<DriverletPackage> r = OpenPackage(sealed.data(), sealed.size(), kDeveloperKey);
    ASSERT_FALSE(r.ok()) << "flip at " << pos << " accepted";
    sealed[pos] ^= 0x80;
  }
  EXPECT_TRUE(OpenPackage(sealed.data(), sealed.size(), kDeveloperKey).ok());
}

TEST(PackageV2Test, MappedRegistrationHydratesOnlyOnSelection) {
  ScaleCorpusConfig cfg;
  cfg.templates = 200;
  cfg.entries = 8;
  ScaleCorpus corpus = BuildScaleCorpus(cfg);
  std::string path = ::testing::TempDir() + "/scale_lazy.dpkg";
  ASSERT_TRUE(WriteFileBytes(path, SealPackageV2(corpus.pkg, kDeveloperKey)));

  TemplateStore store;
  ASSERT_TRUE(Ok(store.AddPackageFile(path, kDeveloperKey)));
  EXPECT_TRUE(store.HasDriverlet(kScaleDriverlet));
  EXPECT_EQ(store.template_count(), cfg.templates);
  EXPECT_EQ(store.lazy_template_count(), cfg.templates);  // nothing hydrated
  EXPECT_EQ(store.hydrated_templates(), 0u);
  // Admission data comes from the seal-time directory, not from hydration.
  EXPECT_FALSE(store.DevicesOf(kScaleDriverlet).empty());
  EXPECT_EQ(store.hydrated_templates(), 0u);

  // One selection hydrates exactly the winner.
  size_t target = 42;
  Result<const InteractionTemplate*> r =
      store.Select(kScaleDriverlet, ScaleEntry(cfg, target), ScaleInvokeScalars(corpus, target));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->name, "scale_" + std::to_string(target));
  EXPECT_FALSE((*r)->events.empty());
  EXPECT_EQ(store.hydrated_templates(), 1u);
  std::remove(path.c_str());
}

TEST(PackageV2Test, MappedAndEagerSelectIdentically) {
  ScaleCorpusConfig cfg;
  cfg.templates = 150;
  cfg.entries = 6;
  ScaleCorpus corpus = BuildScaleCorpus(cfg);
  std::string path = ::testing::TempDir() + "/scale_diff.dpkg";
  ASSERT_TRUE(WriteFileBytes(path, SealPackageV2(corpus.pkg, kDeveloperKey)));

  TemplateStore eager, lazy;
  ASSERT_TRUE(Ok(eager.AddPackage(corpus.pkg)));
  ASSERT_TRUE(Ok(lazy.AddPackageFile(path, kDeveloperKey)));
  for (size_t target = 0; target < cfg.templates; target += 5) {
    Bindings scalars = ScaleInvokeScalars(corpus, target);
    std::string entry = ScaleEntry(cfg, target);
    Result<const InteractionTemplate*> a = eager.Select(kScaleDriverlet, entry, scalars);
    Result<const InteractionTemplate*> b = lazy.Select(kScaleDriverlet, entry, scalars);
    ASSERT_TRUE(a.ok() && b.ok()) << "target " << target;
    EXPECT_EQ((*a)->name, (*b)->name);
    // Hydrated body == eagerly parsed body, byte for byte.
    EXPECT_EQ(TemplateContentHash(**a), TemplateContentHash(**b)) << "target " << target;
  }
  std::remove(path.c_str());
}

TEST(PackageV2Test, EagerReRegistrationReplacesTheMapping) {
  ScaleCorpusConfig cfg;
  cfg.templates = 60;
  cfg.entries = 4;
  ScaleCorpus corpus = BuildScaleCorpus(cfg);
  std::string path = ::testing::TempDir() + "/scale_replace.dpkg";
  ASSERT_TRUE(WriteFileBytes(path, SealPackageV2(corpus.pkg, kDeveloperKey)));

  TemplateStore store;
  ASSERT_TRUE(Ok(store.AddPackageFile(path, kDeveloperKey)));
  EXPECT_EQ(store.lazy_template_count(), cfg.templates);
  ASSERT_TRUE(Ok(store.AddPackage(corpus.pkg)));  // eager replacement
  EXPECT_EQ(store.template_count(), cfg.templates);
  EXPECT_EQ(store.lazy_template_count(), 0u);
  ASSERT_TRUE(Ok(store.AddPackageFile(path, kDeveloperKey)));  // and back
  EXPECT_EQ(store.template_count(), cfg.templates);
  EXPECT_EQ(store.lazy_template_count(), cfg.templates);
  std::remove(path.c_str());
}

TEST(PackageV2Test, ProgramSerializationRoundTripsByDisassembly) {
  ScaleCorpusConfig cfg;
  cfg.templates = 8;
  cfg.entries = 2;
  ScaleCorpus corpus = BuildScaleCorpus(cfg);
  size_t round_tripped = 0;
  for (const InteractionTemplate& tpl : corpus.pkg.templates) {
    Result<std::shared_ptr<const CompiledProgram>> p = CompileTemplate(&tpl);
    if (!p.ok()) continue;  // kUnsupported shapes fall back to the interpreter
    Result<std::vector<uint8_t>> bytes = SerializeProgram(**p);
    ASSERT_TRUE(bytes.ok());
    Result<std::shared_ptr<const CompiledProgram>> back =
        DeserializeProgram(bytes->data(), bytes->size(), &tpl);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ((*p)->Disassemble(), (*back)->Disassemble());
    ++round_tripped;
  }
  EXPECT_GT(round_tripped, 0u);
}

// ---------------------------------------------------------------------------
// StoreScaleTest
// ---------------------------------------------------------------------------

TEST(StoreScaleTest, DiskCompileCacheSurvivesRestart) {
  ScaleCorpusConfig cfg;
  cfg.templates = 60;
  cfg.entries = 4;
  ScaleCorpus corpus = BuildScaleCorpus(cfg);
  // Wipe any .dcp files a previous run left behind: the first pass below
  // asserts the directory is cold.
  std::string dir = ::testing::TempDir() + "/dcp_restart";
  ASSERT_EQ(0, std::system(("rm -rf " + dir + " && mkdir -p " + dir).c_str()));

  uint64_t stores = 0;
  {
    TemplateStore first;
    first.set_compile_cache_dir(dir);
    ASSERT_TRUE(Ok(first.AddPackage(corpus.pkg)));
    for (size_t target = 0; target < cfg.templates; target += 3) {
      Result<TemplateStore::CompiledSelection> r = first.SelectCompiled(
          kScaleDriverlet, ScaleEntry(cfg, target), ScaleInvokeScalars(corpus, target));
      ASSERT_TRUE(r.ok());
    }
    stores = first.disk_compile_stores();
    EXPECT_GT(stores, 0u);
    EXPECT_EQ(first.disk_compile_hits(), 0u);  // cold directory
  }
  // "Restart": a fresh store over the same directory compiles nothing anew.
  TemplateStore second;
  second.set_compile_cache_dir(dir);
  ASSERT_TRUE(Ok(second.AddPackage(corpus.pkg)));
  for (size_t target = 0; target < cfg.templates; target += 3) {
    Result<TemplateStore::CompiledSelection> r = second.SelectCompiled(
        kScaleDriverlet, ScaleEntry(cfg, target), ScaleInvokeScalars(corpus, target));
    ASSERT_TRUE(r.ok());
  }
  EXPECT_EQ(second.disk_compile_hits(), stores);
  EXPECT_EQ(second.disk_compile_stores(), 0u);
}

TEST(StoreScaleTest, DiskCacheRejectsCorruptEntries) {
  // A corrupt .dcp file is a miss, never a wrong program or a crash.
  ScaleCorpusConfig cfg;
  cfg.templates = 8;
  cfg.entries = 2;
  ScaleCorpus corpus = BuildScaleCorpus(cfg);
  const InteractionTemplate& tpl = corpus.pkg.templates[0];
  Result<std::shared_ptr<const CompiledProgram>> p = CompileTemplate(&tpl);
  ASSERT_TRUE(p.ok());
  std::string dir = ::testing::TempDir() + "/dcp_corrupt";
  ASSERT_EQ(0, std::system(("mkdir -p " + dir).c_str()));
  DiskProgramCache cache(dir);
  Sha256::Digest h = TemplateContentHash(tpl);
  ASSERT_TRUE(cache.Store(h, **p));
  ASSERT_NE(cache.Load(h, &tpl), nullptr);

  // Flip every 17th byte of the cache file; each variant must load as a miss
  // or as a program identical to the original (header bytes may be benign).
  Result<std::vector<uint8_t>> good = SerializeProgram(**p);
  ASSERT_TRUE(good.ok());
  for (size_t pos = 0; pos < good->size(); pos += 17) {
    std::vector<uint8_t> bad = *good;
    bad[pos] ^= 0xff;
    Result<std::shared_ptr<const CompiledProgram>> r =
        DeserializeProgram(bad.data(), bad.size(), &tpl);
    if (r.ok()) {
      EXPECT_EQ((*r)->Disassemble(), (*p)->Disassemble()) << "flip at " << pos;
    }
  }
}

TEST(StoreScaleTest, ConcurrentShardViewsHydrateOneMappedPopulation) {
  // The TSan target: four threads race selections (and thus first-touch
  // hydrations) across shard views of one lazily mapped population.
  ScaleCorpusConfig cfg;
  cfg.templates = 240;
  cfg.entries = 8;
  ScaleCorpus corpus = BuildScaleCorpus(cfg);
  std::string path = ::testing::TempDir() + "/scale_tsan.dpkg";
  ASSERT_TRUE(WriteFileBytes(path, SealPackageV2(corpus.pkg, kDeveloperKey)));

  TemplateStore origin;
  ASSERT_TRUE(Ok(origin.AddPackageFile(path, kDeveloperKey)));
  std::vector<std::unique_ptr<TemplateStore>> views;
  for (int i = 0; i < 4; ++i) views.push_back(origin.NewShardView());
  ASSERT_TRUE(views[0]->SharesPopulationWith(origin));

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      TemplateStore& view = *views[t];
      for (size_t target = 0; target < cfg.templates; ++target) {
        Result<TemplateStore::CompiledSelection> r = view.SelectCompiled(
            kScaleDriverlet, ScaleEntry(cfg, target), ScaleInvokeScalars(corpus, target));
        if (!r.ok() || r->tpl->name != "scale_" + std::to_string(target) ||
            r->tpl->events.empty()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  // Every template hydrated exactly once despite 4x coverage of each target.
  EXPECT_EQ(origin.hydrated_templates(), cfg.templates);
  std::remove(path.c_str());
}

TEST(StoreScaleTest, ServiceRegistersMappedFileZeroCopy) {
  ScaleCorpusConfig cfg;
  cfg.templates = 100;
  cfg.entries = 4;
  ScaleCorpus corpus = BuildScaleCorpus(cfg);
  std::string path = ::testing::TempDir() + "/scale_svc.dpkg";
  ASSERT_TRUE(WriteFileBytes(path, SealPackageV2(corpus.pkg, kDeveloperKey)));

  TestbedOptions opts;
  opts.secure_io = true;
  opts.probe_drivers = false;
  Rpi3Testbed tb(opts);
  ReplayServiceConfig svc_cfg;
  svc_cfg.compile_cache_dir = ::testing::TempDir();
  ReplayService service(&tb.tee(), kDeveloperKey, svc_cfg);
  Result<std::string> name = service.RegisterDriverletFile(path);
  ASSERT_TRUE(name.ok()) << StatusName(name.status());
  EXPECT_EQ(*name, kScaleDriverlet);
  EXPECT_TRUE(service.IsRegistered(kScaleDriverlet));
  // Registration parsed the directory only.
  EXPECT_EQ(service.store().lazy_template_count(), cfg.templates);
  EXPECT_EQ(service.store().hydrated_templates(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dlt
