// ReplayFleet tests: shared-population views across shards, per-shard session
// isolation and media independence, least-loaded pinning, per-shard kBusy
// backpressure, work stealing under skewed load, per-session determinism with
// stealing on vs. off (byte-identical to the single-shard ReplayService
// baseline), and clean shutdown with work still queued. Runs under the
// ASan+UBSan job and the TSan job (docs/replay_fleet.md).
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "src/tee/replay_fleet.h"
#include "src/workload/deploy_util.h"
#include "src/workload/record_campaigns.h"

namespace dlt {
namespace {

class ReplayFleetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    mmc_ = new std::vector<uint8_t>(BuildMmcPackage());
    usb_ = new std::vector<uint8_t>(BuildUsbPackage());
    ASSERT_FALSE(mmc_->empty());
    ASSERT_FALSE(usb_->empty());
  }
  static void TearDownTestSuite() {
    delete mmc_;
    delete usb_;
  }

  static ReplayArgs BlockArgs(uint64_t rw, uint64_t blkcnt, uint64_t blkid,
                              std::vector<uint8_t>* buf) {
    ReplayArgs args;
    args.scalars = {{"rw", rw}, {"blkcnt", blkcnt}, {"blkid", blkid}, {"flag", 0}};
    args.buffers["buf"] = BufferView{buf->data(), buf->size()};
    return args;
  }

  static std::vector<uint8_t>* mmc_;
  static std::vector<uint8_t>* usb_;
};

std::vector<uint8_t>* ReplayFleetTest::mmc_ = nullptr;
std::vector<uint8_t>* ReplayFleetTest::usb_ = nullptr;

TEST_F(ReplayFleetTest, ShardViewsShareOnePopulation) {
  ReplayFleetConfig cfg;
  cfg.shards = 3;
  ReplayFleet fleet(kDeveloperKey, cfg);
  ASSERT_TRUE(fleet.RegisterDriverlet(mmc_->data(), mmc_->size()).ok());

  // Every shard's store is a view of shard 0's population: same shared state,
  // and the very same template objects (pointer identity, not copies).
  for (size_t i = 1; i < fleet.shard_count(); ++i) {
    EXPECT_TRUE(fleet.shard_service(i).store().SharesPopulationWith(
        fleet.shard_service(0).store()));
    EXPECT_EQ(fleet.shard_service(0).store().templates("mmc"),
              fleet.shard_service(i).store().templates("mmc"));
  }

  // A package registered later is visible through every view.
  ASSERT_TRUE(fleet.RegisterDriverlet(usb_->data(), usb_->size()).ok());
  for (size_t i = 0; i < fleet.shard_count(); ++i) {
    EXPECT_TRUE(fleet.shard_service(i).store().HasDriverlet("usb"));
    EXPECT_EQ(2u, fleet.shard_service(i).store().package_count());
  }
}

TEST_F(ReplayFleetTest, SessionsAreIsolatedPerShard) {
  ReplayFleetConfig cfg;
  cfg.shards = 4;
  ReplayFleet fleet(kDeveloperKey, cfg);
  ASSERT_TRUE(fleet.RegisterDriverlet(mmc_->data(), mmc_->size()).ok());

  // One session pinned to each shard, all writing the SAME block range with
  // different payloads: each shard has its own SD medium, so reads must see
  // only the shard-local write.
  std::vector<FleetSessionId> sids;
  for (size_t i = 0; i < 4; ++i) {
    Result<FleetSessionId> sid = fleet.OpenSessionOn(i, "mmc");
    ASSERT_TRUE(sid.ok());
    EXPECT_EQ(i, FleetShardOf(*sid));
    sids.push_back(*sid);
  }
  for (size_t i = 0; i < 4; ++i) {
    std::vector<uint8_t> buf = PatternBuf(8 * 512, 0x1000 + i);
    ASSERT_TRUE(
        fleet.Invoke(sids[i], kMmcEntry, BlockArgs(kMmcRwWrite, 8, 4096, &buf)).ok());
  }
  for (size_t i = 0; i < 4; ++i) {
    std::vector<uint8_t> buf(8 * 512, 0);
    ASSERT_TRUE(
        fleet.Invoke(sids[i], kMmcEntry, BlockArgs(kMmcRwRead, 8, 4096, &buf)).ok());
    EXPECT_EQ(PatternBuf(8 * 512, 0x1000 + i), buf) << "shard " << i;
  }
}

TEST_F(ReplayFleetTest, OpenSessionPinsLeastLoadedShard) {
  ReplayFleetConfig cfg;
  cfg.shards = 4;
  ReplayFleet fleet(kDeveloperKey, cfg);
  ASSERT_TRUE(fleet.RegisterDriverlet(mmc_->data(), mmc_->size()).ok());

  std::set<size_t> shards;
  for (int i = 0; i < 4; ++i) {
    Result<FleetSessionId> sid = fleet.OpenSession("mmc");
    ASSERT_TRUE(sid.ok());
    shards.insert(FleetShardOf(*sid));
  }
  // Four opens on an idle 4-shard fleet spread across all four shards.
  EXPECT_EQ(4u, shards.size());

  // Unknown driverlets and bogus shard indexes are rejected up front.
  EXPECT_EQ(Status::kNotFound, fleet.OpenSession("nvme").status());
  EXPECT_EQ(Status::kInvalidArg, fleet.OpenSessionOn(99, "mmc").status());
}

TEST_F(ReplayFleetTest, BusyBackpressureIsPerShard) {
  ReplayFleetConfig cfg;
  cfg.shards = 2;
  cfg.queue_depth = 2;
  ReplayFleet fleet(kDeveloperKey, cfg);
  ASSERT_TRUE(fleet.RegisterDriverlet(mmc_->data(), mmc_->size()).ok());
  Result<FleetSessionId> s0 = fleet.OpenSessionOn(0, "mmc");
  Result<FleetSessionId> s1 = fleet.OpenSessionOn(1, "mmc");
  ASSERT_TRUE(s0.ok() && s1.ok());

  // Pool not started: submissions just queue. Shard 0 fills at depth 2 ...
  std::vector<uint8_t> buf(512, 0xa5);
  Result<uint64_t> r1 = fleet.Submit(*s0, kMmcEntry, BlockArgs(kMmcRwWrite, 1, 64, &buf));
  Result<uint64_t> r2 = fleet.Submit(*s0, kMmcEntry, BlockArgs(kMmcRwWrite, 1, 72, &buf));
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(Status::kBusy,
            fleet.Submit(*s0, kMmcEntry, BlockArgs(kMmcRwWrite, 1, 80, &buf)).status());
  // ... while shard 1's queue is untouched and still admits.
  std::vector<uint8_t> buf1(512, 0x5a);
  ASSERT_TRUE(fleet.Submit(*s1, kMmcEntry, BlockArgs(kMmcRwWrite, 1, 64, &buf1)).ok());

  FleetStats st = fleet.stats();
  EXPECT_EQ(1u, st.shards[0].busy_rejects);
  EXPECT_EQ(0u, st.shards[1].busy_rejects);
  EXPECT_EQ(2u, st.shards[0].queue_depth);

  // Inline drain executes everything; completions are taken exactly once.
  EXPECT_EQ(3u, fleet.ProcessQueuedInline());
  EXPECT_TRUE(fleet.TakeCompletion(*r1).ok());
  EXPECT_TRUE(fleet.TakeCompletion(*r2).ok());
  EXPECT_EQ(Status::kNotFound, fleet.TakeCompletion(*r1).status());
}

TEST_F(ReplayFleetTest, StealingDrainsSkewedLoad) {
  // 3 shards, 2 workers: worker 0 homes shards {0, 2}, worker 1 homes {1}.
  // All load lands on shards 0 and 2, so worker 1 has nothing of its own and
  // must steal — while worker 0 is batch-executing one shard, the other
  // shard's backlog is only drained by theft.
  ReplayFleetConfig cfg;
  cfg.shards = 3;
  cfg.threads = 2;
  cfg.queue_depth = 256;
  cfg.stealing = true;
  // Pace executions in wall time so a backlog exists regardless of host
  // scheduling: while worker 0 sleeps through shard 0's pacing floor, shard
  // 2's queue is guaranteed non-empty and its exec_mu free, so worker 1 (no
  // loaded home shard) reliably steals instead of racing an instant drain.
  cfg.invoke_floor_us = 200;
  ReplayFleet fleet(kDeveloperKey, cfg);
  ASSERT_TRUE(fleet.RegisterDriverlet(mmc_->data(), mmc_->size()).ok());
  Result<FleetSessionId> s0 = fleet.OpenSessionOn(0, "mmc");
  Result<FleetSessionId> s2 = fleet.OpenSessionOn(2, "mmc");
  ASSERT_TRUE(s0.ok() && s2.ok());

  fleet.Start();
  constexpr int kPerSession = 80;
  std::vector<std::vector<uint8_t>> bufs;
  bufs.reserve(2 * kPerSession);
  std::vector<uint64_t> reqs;
  for (int i = 0; i < kPerSession; ++i) {
    for (FleetSessionId sid : {*s0, *s2}) {
      bufs.emplace_back(512, 0xcc);
      ReplayArgs args =
          BlockArgs(kMmcRwWrite, 1, 128 + static_cast<uint64_t>(i) * 8, &bufs.back());
      // kBusy just means the queue is momentarily full — retry; the pool is
      // draining it concurrently.
      for (;;) {
        Result<uint64_t> r = fleet.Submit(sid, kMmcEntry, args);
        if (r.ok()) {
          reqs.push_back(*r);
          break;
        }
        ASSERT_EQ(Status::kBusy, r.status());
        std::this_thread::yield();
      }
    }
  }
  for (uint64_t req : reqs) {
    EXPECT_TRUE(fleet.WaitCompletion(req).ok());
  }
  fleet.Stop();

  FleetStats st = fleet.stats();
  EXPECT_EQ(reqs.size(), st.executed);
  EXPECT_GT(st.stolen, 0u) << "worker 1 never stole despite owning no loaded shard";
  EXPECT_EQ(0u, st.shards[1].executed);  // nothing was ever queued on shard 1
}

TEST_F(ReplayFleetTest, PerSessionDeterminismWithStealingOnAndOff) {
  // The acceptance property: a session's results are byte-identical whether
  // its invokes run on a plain single-shard ReplayService, a fleet with
  // stealing disabled, or a fleet with stealing enabled. The workload makes
  // ordering observable: two writes to the SAME blocks, then a read — only
  // submission-order execution returns the second payload.
  constexpr uint64_t kBlkid = 2048;
  constexpr uint64_t kCount = 8;
  const std::vector<uint8_t> first = PatternBuf(kCount * 512, 7);
  const std::vector<uint8_t> second = PatternBuf(kCount * 512, 99);

  // Baseline: the single-shard service path.
  Deployment base = MakeDeployment(*mmc_);
  ASSERT_NE(nullptr, base.replayer);
  std::vector<uint8_t> base_read(kCount * 512, 0);
  {
    std::vector<uint8_t> w1 = first;
    std::vector<uint8_t> w2 = second;
    ASSERT_TRUE(base.service
                    ->Invoke(base.session, kMmcEntry,
                             BlockArgs(kMmcRwWrite, kCount, kBlkid, &w1))
                    .ok());
    ASSERT_TRUE(base.service
                    ->Invoke(base.session, kMmcEntry,
                             BlockArgs(kMmcRwWrite, kCount, kBlkid, &w2))
                    .ok());
    ASSERT_TRUE(base.service
                    ->Invoke(base.session, kMmcEntry,
                             BlockArgs(kMmcRwRead, kCount, kBlkid, &base_read))
                    .ok());
  }
  EXPECT_EQ(second, base_read);

  for (bool stealing : {false, true}) {
    ReplayFleetConfig cfg;
    cfg.shards = 3;
    cfg.threads = 2;
    cfg.stealing = stealing;
    cfg.queue_depth = 64;
    ReplayFleet fleet(kDeveloperKey, cfg);
    ASSERT_TRUE(fleet.RegisterDriverlet(mmc_->data(), mmc_->size()).ok());

    // Two sessions per shard so stolen invokes interleave with home ones.
    std::vector<FleetSessionId> sids;
    for (size_t sh = 0; sh < cfg.shards; ++sh) {
      for (int k = 0; k < 2; ++k) {
        Result<FleetSessionId> sid = fleet.OpenSessionOn(sh, "mmc");
        ASSERT_TRUE(sid.ok());
        sids.push_back(*sid);
      }
    }
    fleet.Start();
    struct SessionRun {
      std::vector<uint8_t> w1, w2, read;
      uint64_t req_w1 = 0, req_w2 = 0, req_read = 0;
    };
    std::vector<SessionRun> runs(sids.size());
    for (size_t i = 0; i < sids.size(); ++i) {
      SessionRun& r = runs[i];
      r.w1 = first;
      r.w2 = second;
      r.read.assign(kCount * 512, 0);
      Result<uint64_t> q1 =
          fleet.Submit(sids[i], kMmcEntry, BlockArgs(kMmcRwWrite, kCount, kBlkid, &r.w1));
      Result<uint64_t> q2 =
          fleet.Submit(sids[i], kMmcEntry, BlockArgs(kMmcRwWrite, kCount, kBlkid, &r.w2));
      Result<uint64_t> q3 =
          fleet.Submit(sids[i], kMmcEntry, BlockArgs(kMmcRwRead, kCount, kBlkid, &r.read));
      ASSERT_TRUE(q1.ok() && q2.ok() && q3.ok());
      r.req_w1 = *q1;
      r.req_w2 = *q2;
      r.req_read = *q3;
    }
    for (SessionRun& r : runs) {
      EXPECT_TRUE(fleet.WaitCompletion(r.req_w1).ok());
      EXPECT_TRUE(fleet.WaitCompletion(r.req_w2).ok());
      Result<ReplayStats> read = fleet.WaitCompletion(r.req_read);
      ASSERT_TRUE(read.ok());
      // Byte-identical to the single-shard baseline read.
      EXPECT_EQ(base_read, r.read) << "stealing=" << stealing;
    }
    fleet.Stop();
  }
}

TEST_F(ReplayFleetTest, StopCompletesQueuedWorkAsAborted) {
  // Never-started pool: Stop must still fail queued requests loudly rather
  // than leaving their completions unreachable.
  {
    ReplayFleetConfig cfg;
    cfg.shards = 2;
    ReplayFleet fleet(kDeveloperKey, cfg);
    ASSERT_TRUE(fleet.RegisterDriverlet(mmc_->data(), mmc_->size()).ok());
    Result<FleetSessionId> sid = fleet.OpenSessionOn(0, "mmc");
    ASSERT_TRUE(sid.ok());
    std::vector<uint8_t> buf(512, 0x11);
    Result<uint64_t> req =
        fleet.Submit(*sid, kMmcEntry, BlockArgs(kMmcRwWrite, 1, 32, &buf));
    ASSERT_TRUE(req.ok());
    fleet.Stop();
    EXPECT_EQ(Status::kAborted, fleet.TakeCompletion(*req).status());
    EXPECT_EQ(0u, fleet.stats().shards[0].queue_depth);
  }

  // Running pool under fire-hose load: every submitted request has a
  // collectable completion after Stop — executed or aborted, never lost.
  {
    ReplayFleetConfig cfg;
    cfg.shards = 2;
    cfg.threads = 2;
    cfg.queue_depth = 128;
    ReplayFleet fleet(kDeveloperKey, cfg);
    ASSERT_TRUE(fleet.RegisterDriverlet(mmc_->data(), mmc_->size()).ok());
    Result<FleetSessionId> sid = fleet.OpenSessionOn(0, "mmc");
    ASSERT_TRUE(sid.ok());
    fleet.Start();
    std::vector<std::vector<uint8_t>> bufs;
    bufs.reserve(64);
    std::vector<uint64_t> reqs;
    for (int i = 0; i < 64; ++i) {
      bufs.emplace_back(512, 0x22);
      Result<uint64_t> r = fleet.Submit(
          *sid, kMmcEntry,
          BlockArgs(kMmcRwWrite, 1, 512 + static_cast<uint64_t>(i) * 8, &bufs.back()));
      if (r.ok()) {
        reqs.push_back(*r);
      }
    }
    fleet.Stop();
    size_t executed = 0;
    size_t aborted = 0;
    for (uint64_t req : reqs) {
      Result<ReplayStats> c = fleet.TakeCompletion(req);
      if (c.ok()) {
        ++executed;
      } else {
        ASSERT_EQ(Status::kAborted, c.status());
        ++aborted;
      }
    }
    EXPECT_EQ(reqs.size(), executed + aborted);
    EXPECT_EQ(fleet.stats().executed, executed);
  }
}

TEST_F(ReplayFleetTest, BatchDispatchesAsOneUnit) {
  ReplayFleetConfig cfg;
  cfg.shards = 2;
  cfg.queue_depth = 2;
  ReplayFleet fleet(kDeveloperKey, cfg);
  ASSERT_TRUE(fleet.RegisterDriverlet(mmc_->data(), mmc_->size()).ok());
  Result<FleetSessionId> sid = fleet.OpenSessionOn(0, "mmc");
  ASSERT_TRUE(sid.ok());

  // A 4-command batch occupies ONE queue slot and drains as ONE dispatch
  // unit, but the command-level counters still see all 4.
  std::vector<std::vector<uint8_t>> bufs(4, std::vector<uint8_t>(512, 0x33));
  std::vector<RingCmd> cmds;
  for (size_t i = 0; i < bufs.size(); ++i) {
    cmds.push_back(RingCmd{kMmcEntry, BlockArgs(kMmcRwWrite, 1, 96 + i * 8, &bufs[i])});
  }
  EXPECT_EQ(Status::kInvalidArg, fleet.SubmitBatch(*sid, {}).status());
  Result<uint64_t> req = fleet.SubmitBatch(*sid, std::move(cmds));
  ASSERT_TRUE(req.ok());
  FleetStats st = fleet.stats();
  EXPECT_EQ(4u, st.shards[0].submitted);   // commands
  EXPECT_EQ(1u, st.shards[0].queue_depth);  // dispatch units

  EXPECT_EQ(1u, fleet.ProcessQueuedInline());  // one unit drained
  // The scalar accessor refuses to flatten a real batch; the batch accessor
  // hands back all four results in submission order.
  EXPECT_EQ(Status::kInvalidArg, fleet.TakeCompletion(*req).status());
  Result<std::vector<Result<ReplayStats>>> all = fleet.TakeBatchCompletion(*req);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(4u, all->size());
  for (const Result<ReplayStats>& r : *all) {
    EXPECT_TRUE(r.ok());
  }
  EXPECT_EQ(Status::kNotFound, fleet.TakeBatchCompletion(*req).status());
  EXPECT_EQ(4u, fleet.stats().shards[0].executed);
}

TEST_F(ReplayFleetTest, BatchCompletionUnderRunningPool) {
  ReplayFleetConfig cfg;
  cfg.shards = 2;
  cfg.threads = 2;
  ReplayFleet fleet(kDeveloperKey, cfg);
  ASSERT_TRUE(fleet.RegisterDriverlet(mmc_->data(), mmc_->size()).ok());
  Result<FleetSessionId> sid = fleet.OpenSessionOn(0, "mmc");
  ASSERT_TRUE(sid.ok());
  fleet.Start();

  std::vector<std::vector<uint8_t>> bufs(6, std::vector<uint8_t>(512, 0x44));
  std::vector<RingCmd> cmds;
  for (size_t i = 0; i < bufs.size(); ++i) {
    cmds.push_back(RingCmd{kMmcEntry, BlockArgs(kMmcRwWrite, 1, 256 + i * 8, &bufs[i])});
  }
  Result<uint64_t> req = fleet.SubmitBatch(*sid, std::move(cmds));
  ASSERT_TRUE(req.ok());
  std::vector<Result<ReplayStats>> all = fleet.WaitBatchCompletion(*req);
  ASSERT_EQ(6u, all.size());
  for (const Result<ReplayStats>& r : all) {
    EXPECT_TRUE(r.ok());
  }
  fleet.Stop();
  EXPECT_EQ(6u, fleet.stats().executed);
}

}  // namespace
}  // namespace dlt
