// Tier-1 tests for the coverage-guided boundary fuzzer (src/check/fuzz.h):
// program codec fixpoint, the checked-in tests/corpus/ entries replaying
// clean, deterministic execution, coverage growth under mutation, the planted
// ring wrap-around regression guard with ddmin shrinking, and the .repro
// artifact round-trip.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/check/fuzz.h"
#include "src/tee/invocation_ring.h"

namespace dlt {
namespace {

// Restores the planted-quirk flag on scope exit so a failing test cannot
// poison the rest of the suite.
class RingQuirkGuard {
 public:
  explicit RingQuirkGuard(bool on) { SetRingWrapQuirkForTest(on); }
  ~RingQuirkGuard() { SetRingWrapQuirkForTest(false); }
};

std::string ReadFileText(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

TEST(BoundaryFuzzTest, ProgramCodecIsAFixpoint) {
  for (const BoundaryProgram& p : BuiltinBoundaryCorpus()) {
    const std::string text = BoundaryProgramToString(p);
    Result<BoundaryProgram> back = ParseBoundaryProgram(text);
    ASSERT_TRUE(back.ok());
    ASSERT_EQ(back->actions.size(), p.actions.size());
    EXPECT_EQ(BoundaryProgramToString(*back), text);
  }
}

TEST(BoundaryFuzzTest, ParserSkipsCommentsAndDefaultsMissingOperands) {
  Result<BoundaryProgram> p = ParseBoundaryProgram(
      "driverlet-boundary v1\n"
      "# comment line\n"
      "open 2\n"
      "invoke\n"
      "pop 0 0 0\n");
  ASSERT_TRUE(p.ok());
  ASSERT_EQ(p->actions.size(), 3u);
  EXPECT_EQ(p->actions[0].op, BoundaryOp::kOpen);
  EXPECT_EQ(p->actions[0].a, 2u);
  EXPECT_EQ(p->actions[1].op, BoundaryOp::kInvoke);
  EXPECT_EQ(p->actions[1].a, 0u);
  EXPECT_EQ(p->actions[2].op, BoundaryOp::kRingPop);
}

TEST(BoundaryFuzzTest, ParserRejectsBadHeaderOpAndOperand) {
  EXPECT_FALSE(ParseBoundaryProgram("boundary v2\nopen 0\n").ok());
  EXPECT_FALSE(ParseBoundaryProgram("driverlet-boundary v1\nfrobnicate 0\n").ok());
  EXPECT_FALSE(ParseBoundaryProgram("driverlet-boundary v1\nopen zero\n").ok());
}

// ---------------------------------------------------------------------------
// Corpus replay — every checked-in tests/corpus/*.boundary entry holds all
// seven invariants (the fuzzer's regression suite).
// ---------------------------------------------------------------------------

TEST(BoundaryFuzzTest, CheckedInCorpusReplaysClean) {
  const std::filesystem::path dir =
      std::filesystem::path(DLT_SOURCE_DIR) / "tests" / "corpus";
  int seen = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".boundary") {
      continue;
    }
    SCOPED_TRACE(entry.path().filename().string());
    Result<BoundaryProgram> p = ParseBoundaryProgram(ReadFileText(entry.path()));
    ASSERT_TRUE(p.ok());
    ASSERT_FALSE(p->actions.empty());
    BoundaryRunResult r = RunBoundaryProgram(*p);
    EXPECT_TRUE(r.ok()) << r.invariant << ": " << r.detail;
    EXPECT_EQ(r.actions_run, p->actions.size());
    EXPECT_FALSE(r.features.empty());
    ++seen;
  }
  EXPECT_GE(seen, 5);  // one lifecycle entry per registered driverlet class
}

TEST(BoundaryFuzzTest, BuiltinCorpusReplaysCleanAndDeterministically) {
  for (const BoundaryProgram& p : BuiltinBoundaryCorpus()) {
    BoundaryRunResult a = RunBoundaryProgram(p);
    BoundaryRunResult b = RunBoundaryProgram(p);
    EXPECT_TRUE(a.ok()) << a.invariant << ": " << a.detail;
    EXPECT_EQ(a.trace, b.trace);
    EXPECT_EQ(a.features, b.features);
  }
}

TEST(BoundaryFuzzTest, RegisterOpParsesAndReplaysDeterministically) {
  // The package-registration op (ISSUE 9 satellite): every wire framing and
  // mutation class runs clean under the per-op status contract and the
  // register-atomic invariant, and the trace is bit-stable across runs.
  Result<BoundaryProgram> p = ParseBoundaryProgram(
      "driverlet-boundary v1\n"
      "open 0\n"
      "register 0 0 0\n"   // intact v1-text seal
      "register 0 1 0\n"   // intact v1-binary seal
      "register 0 2 0\n"   // intact v2 seal
      "register 1 0 1\n"   // post-seal bit flips, per framing
      "register 1 1 1\n"
      "register 1 2 1\n"
      "register 2 0 2\n"   // truncations
      "register 2 2 2\n"
      "register 3 1 3\n"   // payload mutated pre-seal, re-signed
      "register 3 2 3\n"
      "invoke 0 0 7\n"
      "close 0\n");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->actions[1].op, BoundaryOp::kRegisterPackage);
  const std::string text = BoundaryProgramToString(*p);
  Result<BoundaryProgram> back = ParseBoundaryProgram(text);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(BoundaryProgramToString(*back), text);

  BoundaryRunResult a = RunBoundaryProgram(*p);
  BoundaryRunResult b = RunBoundaryProgram(*p);
  EXPECT_TRUE(a.ok()) << a.invariant << ": " << a.detail;
  EXPECT_EQ(a.actions_run, p->actions.size());
  EXPECT_EQ(a.trace, b.trace);
  // The mutated classes must actually reach the reject paths: at least one
  // register line in the trace reports kCorrupt.
  EXPECT_NE(a.trace.find("register"), std::string::npos);
  EXPECT_NE(a.trace.find("corrupt"), std::string::npos) << a.trace;
}

// ---------------------------------------------------------------------------
// The fuzz loop
// ---------------------------------------------------------------------------

TEST(BoundaryFuzzTest, CoverageGrowsMonotonicallyWithNoCleanViolations) {
  BoundaryFuzzConfig cfg;
  cfg.seed = 11;
  cfg.iterations = 40;
  BoundaryFuzzStats stats = RunBoundaryFuzz(cfg);
  EXPECT_EQ(stats.runs, 40);
  EXPECT_TRUE(stats.findings.empty())
      << "clean campaign violated " << stats.findings.front().invariant << ": "
      << stats.findings.front().detail;
  ASSERT_GE(stats.coverage_curve.size(), 2u);
  for (size_t i = 1; i < stats.coverage_curve.size(); ++i) {
    EXPECT_GE(stats.coverage_curve[i], stats.coverage_curve[i - 1]);
  }
  // Mutation must discover features the seed corpus alone does not light.
  EXPECT_GT(stats.coverage_curve.back(), stats.coverage_curve.front());
  EXPECT_EQ(stats.features, stats.coverage_curve.back());
  EXPECT_GE(stats.corpus_size, BuiltinBoundaryCorpus().size());
}

TEST(BoundaryFuzzTest, FuzzCampaignIsDeterministic) {
  BoundaryFuzzConfig cfg;
  cfg.seed = 23;
  cfg.iterations = 24;
  BoundaryFuzzStats a = RunBoundaryFuzz(cfg);
  BoundaryFuzzStats b = RunBoundaryFuzz(cfg);
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.corpus_size, b.corpus_size);
  EXPECT_EQ(a.features, b.features);
  EXPECT_EQ(a.coverage_curve, b.coverage_curve);
  EXPECT_EQ(a.findings.size(), b.findings.size());
}

// The regression guard: with the ring wrap-around reap bug planted, the
// fuzzer must find the ring-order violation and shrink it to a handful of
// actions — this is what keeps the fuzzer honest.
TEST(BoundaryFuzzTest, PlantedRingWrapBugIsFoundAndShrunk) {
  BoundaryFuzzConfig cfg;
  cfg.seed = 5;
  cfg.iterations = 8;
  cfg.max_findings = 1;
  cfg.plant_ring_quirk = true;
  BoundaryFuzzStats stats = RunBoundaryFuzz(cfg);
  ASSERT_EQ(stats.findings.size(), 1u);
  const BoundaryFinding& f = stats.findings.front();
  EXPECT_EQ(f.invariant, "ring-order");
  EXPECT_GT(f.shrink_steps, 0);
  EXPECT_LE(f.shrunk.actions.size(), f.program.actions.size());
  EXPECT_LE(f.shrunk.actions.size(), 16u);

  // The shrunk program still reproduces under the quirk and is clean without
  // it (the repro goes green once the bug is fixed).
  {
    RingQuirkGuard quirk(true);
    BoundaryRunResult r = RunBoundaryProgram(f.shrunk);
    EXPECT_EQ(r.invariant, "ring-order");
  }
  EXPECT_TRUE(RunBoundaryProgram(f.shrunk).ok());
}

TEST(BoundaryFuzzTest, ShrinkRejectsNonViolatingPrograms) {
  Result<BoundaryShrinkResult> r =
      ShrinkBoundary(BuiltinBoundaryCorpus().front(), "ring-order");
  EXPECT_EQ(r.status(), Status::kInvalidArg);
}

// ---------------------------------------------------------------------------
// Repro artifacts
// ---------------------------------------------------------------------------

TEST(BoundaryFuzzTest, ReproRoundTripsThroughDisk) {
  const BoundaryProgram p = BuiltinBoundaryCorpus().front();
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "dlt_boundary_roundtrip.repro";
  ASSERT_EQ(WriteBoundaryRepro(path.string(), p, "ring-order", "unit test detail"),
            Status::kOk);
  Result<BoundaryRepro> back = ReadBoundaryRepro(path.string());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->invariant, "ring-order");
  EXPECT_EQ(back->detail, "unit test detail");
  EXPECT_EQ(BoundaryProgramToString(back->program), BoundaryProgramToString(p));
  std::remove(path.string().c_str());

  EXPECT_FALSE(ReadBoundaryRepro("/nonexistent/boundary.repro").ok());
  EXPECT_FALSE(ParseBoundaryRepro("driverlet-boundary-repro v2\n").ok());
}

}  // namespace
}  // namespace dlt
