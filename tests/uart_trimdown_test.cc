// The §2.2 taxonomy contrast: for a trivial device (UART), the manual trim-down
// approach works — a ~50-line in-TEE driver — while the same device is also
// recordable as a driverlet. Both paths coexist in the TEE.
#include <gtest/gtest.h>

#include "src/core/record_session.h"
#include "src/core/replayer.h"
#include "src/drv/touch_driver.h"
#include "src/tee/trimmed_uart.h"
#include "src/workload/record_campaigns.h"
#include "src/workload/rpi3_testbed.h"

namespace dlt {
namespace {

class UartTrimDownTest : public ::testing::Test {
 protected:
  UartTrimDownTest() : tb_(TestbedOptions{.secure_io = true, .probe_drivers = false}) {}
  Rpi3Testbed tb_;
};

TEST_F(UartTrimDownTest, TrimmedDriverTransmitsFromTee) {
  TrimmedUartDriver uart(&tb_.tee(), tb_.uart_id());
  ASSERT_EQ(Status::kOk, uart.Puts("TEE log: driverlet replay ok\n"));
  EXPECT_EQ("TEE log: driverlet replay ok\n", tb_.uart().transmitted());
}

TEST_F(UartTrimDownTest, TrimmedDriverHonorsTxFifoBackpressure) {
  TrimmedUartDriver uart(&tb_.tee(), tb_.uart_id());
  // 64 bytes into a 16-deep FIFO at ~87 us/byte: the driver must spin on TXFF
  // and still deliver everything in order.
  std::string msg;
  for (int i = 0; i < 64; ++i) {
    msg.push_back(static_cast<char>('a' + i % 26));
  }
  ASSERT_EQ(Status::kOk, uart.Puts(msg));
  EXPECT_EQ(msg, tb_.uart().transmitted());
}

TEST_F(UartTrimDownTest, TrimmedDriverReceives) {
  TrimmedUartDriver uart(&tb_.tee(), tb_.uart_id());
  tb_.uart().InjectRx("ok", 500);
  Result<char> a = uart.Getc();
  Result<char> b = uart.Getc();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ('o', *a);
  EXPECT_EQ('k', *b);
  EXPECT_EQ(Status::kTimeout, uart.Getc(1'000).status());
}

TEST_F(UartTrimDownTest, TrimmedDriverDeniedWithoutSecureAssignment) {
  // On a machine whose UART stays in the normal world, the in-TEE driver's
  // register accesses are refused by the mapping policy.
  Rpi3Testbed open_tb{TestbedOptions{.secure_io = false, .probe_drivers = false}};
  TrimmedUartDriver uart(&open_tb.tee(), open_tb.uart_id());
  EXPECT_EQ(Status::kPermissionDenied, uart.Putc('x'));
}

TEST_F(UartTrimDownTest, UartIsAlsoRecordableAsADriverlet) {
  // The same device through the record/replay pipeline: a putc driverlet.
  // (Economically pointless for UART — the point of §2.2 — but it works.)
  Rpi3Testbed dev{TestbedOptions{.secure_io = false, .probe_drivers = false}};
  RecordSession sess(&dev.kern_io(), "replay_uart_putc", "Putc", dev.uart_id());
  TValue ch = sess.ScalarParam("ch", 'R');
  // The gold "driver": poll FR until not full, write DR.
  Status poll = sess.PollReg32(dev.uart_id(), kUartFr, kUartFrTxFull, 0, /*negate=*/false,
                               100'000, 50, DLT_HERE);
  ASSERT_EQ(Status::kOk, poll);
  sess.RegWrite32(dev.uart_id(), kUartDr, ch & TValue(0xff), DLT_HERE);
  Result<InteractionTemplate> t = sess.Finish();
  ASSERT_TRUE(t.ok());

  RecordCampaign campaign("uart");
  campaign.AddTemplate(std::move(*t));
  std::vector<uint8_t> pkg = campaign.Seal(PackageFormat::kText, kDeveloperKey);

  Replayer replayer(&tb_.tee(), kDeveloperKey);
  ASSERT_EQ(Status::kOk, replayer.LoadPackage(pkg.data(), pkg.size()));
  for (char c : std::string("hi from a uart driverlet")) {
    ReplayArgs args;
    args.scalars["ch"] = static_cast<uint64_t>(c);
    ASSERT_TRUE(replayer.Invoke("replay_uart_putc", args).ok());
  }
  EXPECT_EQ("hi from a uart driverlet", tb_.uart().transmitted());
}

}  // namespace
}  // namespace dlt
