// Invocation-ring tests: world-switch charging on the batched invoke path,
// slot accounting (wrap-around, full-ring backpressure, empty doorbell),
// quarantine mid-batch fail-fast, and byte-for-byte equivalence between one
// ring batch and the same commands issued as sequential Invokes.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/tee/invocation_ring.h"
#include "src/tee/replay_service.h"
#include "src/workload/record_campaigns.h"
#include "src/workload/rpi3_testbed.h"
#include "src/workload/deploy_util.h"

namespace dlt {
namespace {

std::vector<uint8_t> Record(Result<RecordCampaign> (*campaign)(Rpi3Testbed*)) {
  Rpi3Testbed dev{TestbedOptions{}};
  Result<RecordCampaign> c = campaign(&dev);
  return c.ok() ? c->Seal(PackageFormat::kText, kDeveloperKey) : std::vector<uint8_t>{};
}

class ReplayRingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    mmc_ = new std::vector<uint8_t>(Record(RecordMmcCampaign));
    ASSERT_FALSE(mmc_->empty());
  }
  static void TearDownTestSuite() { delete mmc_; }

  void SetUp() override {
    TestbedOptions opts;
    opts.secure_io = true;
    opts.probe_drivers = false;
    tb_ = std::make_unique<Rpi3Testbed>(opts);
  }

  // A block command with its own backing buffer (views are borrowed until the
  // completion is reaped, so each command in a batch needs live memory).
  ReplayArgs BlockArgs(uint64_t rw, uint64_t blkcnt, uint64_t blkid,
                       std::vector<uint8_t>* buf, uint8_t fill = 0xa5) {
    buf->assign(blkcnt * 512, fill);
    ReplayArgs args;
    args.scalars = {{"rw", rw}, {"blkcnt", blkcnt}, {"blkid", blkid}, {"flag", 0}};
    args.buffers["buf"] = BufferView{buf->data(), buf->size()};
    return args;
  }

  static std::vector<uint8_t>* mmc_;
  std::unique_ptr<Rpi3Testbed> tb_;
};

std::vector<uint8_t>* ReplayRingTest::mmc_ = nullptr;

TEST_F(ReplayRingTest, InvokeChargesTwoWorldSwitches) {
  ReplayService svc(&tb_->tee(), kDeveloperKey);
  ASSERT_TRUE(svc.RegisterDriverlet(mmc_->data(), mmc_->size()).ok());
  Result<SessionId> sid = svc.OpenSession("mmc");
  ASSERT_TRUE(sid.ok());

  std::vector<uint8_t> buf;
  uint64_t sw0 = tb_->tee().world_switches();
  uint64_t t0 = tb_->clock().now_us();
  ASSERT_TRUE(svc.Invoke(*sid, kMmcEntry, BlockArgs(kMmcRwRead, 8, 2048, &buf)).ok());
  // A synchronous invoke is a batch of 1: SMC in, SMC back out.
  EXPECT_EQ(sw0 + 2, tb_->tee().world_switches());
  EXPECT_GE(tb_->clock().now_us() - t0, 2 * tb_->machine().latency().world_switch_us);

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(svc.Invoke(*sid, kMmcEntry, BlockArgs(kMmcRwRead, 8, 2048, &buf)).ok());
  }
  EXPECT_EQ(sw0 + 8, tb_->tee().world_switches());
}

TEST_F(ReplayRingTest, DoorbellDrainsWholeBatchUnderTwoSwitches) {
  ReplayService svc(&tb_->tee(), kDeveloperKey);
  ASSERT_TRUE(svc.RegisterDriverlet(mmc_->data(), mmc_->size()).ok());
  Result<SessionId> sid = svc.OpenSession("mmc");
  ASSERT_TRUE(sid.ok());

  std::vector<std::vector<uint8_t>> bufs(6);
  for (size_t i = 0; i < bufs.size(); ++i) {
    ASSERT_TRUE(
        svc.RingPush(*sid, kMmcEntry, BlockArgs(kMmcRwRead, 8, 2048, &bufs[i])).ok());
  }
  uint64_t sw0 = tb_->tee().world_switches();
  Result<size_t> ran = svc.RingDoorbell(*sid);
  ASSERT_TRUE(ran.ok());
  EXPECT_EQ(6u, *ran);
  EXPECT_EQ(sw0 + 2, tb_->tee().world_switches());  // amortized across the batch

  for (size_t i = 0; i < bufs.size(); ++i) {
    Result<RingCompletion> c = svc.RingPop(*sid);
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(i, c->seq);  // completions reap in push order
    EXPECT_TRUE(c->result.ok());
  }
  EXPECT_EQ(Status::kNotFound, svc.RingPop(*sid).status());
}

TEST_F(ReplayRingTest, FifoDrainIsOneBatch) {
  ReplayService svc(&tb_->tee(), kDeveloperKey);
  ASSERT_TRUE(svc.RegisterDriverlet(mmc_->data(), mmc_->size()).ok());
  Result<SessionId> sid = svc.OpenSession("mmc");
  ASSERT_TRUE(sid.ok());

  std::vector<std::vector<uint8_t>> bufs(3);
  std::vector<uint64_t> reqs;
  for (size_t i = 0; i < bufs.size(); ++i) {
    Result<uint64_t> r =
        svc.Submit(*sid, kMmcEntry, BlockArgs(kMmcRwRead, 8, 2048, &bufs[i]));
    ASSERT_TRUE(r.ok());
    reqs.push_back(*r);
  }
  uint64_t sw0 = tb_->tee().world_switches();
  EXPECT_EQ(3u, svc.ProcessQueued());
  // The queued path batches too: one drain, two switches for three requests.
  EXPECT_EQ(sw0 + 2, tb_->tee().world_switches());
  for (uint64_t r : reqs) {
    EXPECT_TRUE(svc.TakeCompletion(r).ok());
  }
}

TEST_F(ReplayRingTest, WrapAroundReusesSlots) {
  ReplayServiceConfig cfg;
  cfg.ring_depth = 4;
  ReplayService svc(&tb_->tee(), kDeveloperKey, cfg);
  ASSERT_TRUE(svc.RegisterDriverlet(mmc_->data(), mmc_->size()).ok());
  Result<SessionId> sid = svc.OpenSession("mmc");
  ASSERT_TRUE(sid.ok());

  // 11 commands through a 4-slot ring in batches of 3: every slot is reused
  // at least twice and the sequence numbers stay monotonic across the wrap.
  uint64_t expect_seq = 0;
  std::vector<std::vector<uint8_t>> bufs(3);
  for (size_t done = 0; done < 11;) {
    size_t n = std::min<size_t>(3, 11 - done);
    for (size_t j = 0; j < n; ++j) {
      Result<uint64_t> seq =
          svc.RingPush(*sid, kMmcEntry, BlockArgs(kMmcRwRead, 8, 2048, &bufs[j]));
      ASSERT_TRUE(seq.ok());
      EXPECT_EQ(done + j, *seq);
    }
    ASSERT_TRUE(svc.RingDoorbell(*sid).ok());
    for (size_t j = 0; j < n; ++j) {
      Result<RingCompletion> c = svc.RingPop(*sid);
      ASSERT_TRUE(c.ok());
      EXPECT_EQ(expect_seq++, c->seq);
      EXPECT_TRUE(c->result.ok());
    }
    done += n;
  }
  Result<InvocationRing*> ring = svc.Ring(*sid);
  ASSERT_TRUE(ring.ok());
  EXPECT_EQ(0u, (*ring)->in_flight());
}

TEST_F(ReplayRingTest, FullRingBackpressuresUntilCompletionsAreReaped) {
  ReplayServiceConfig cfg;
  cfg.ring_depth = 4;
  ReplayService svc(&tb_->tee(), kDeveloperKey, cfg);
  ASSERT_TRUE(svc.RegisterDriverlet(mmc_->data(), mmc_->size()).ok());
  Result<SessionId> sid = svc.OpenSession("mmc");
  ASSERT_TRUE(sid.ok());

  std::vector<std::vector<uint8_t>> bufs(5);
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        svc.RingPush(*sid, kMmcEntry, BlockArgs(kMmcRwRead, 8, 2048, &bufs[i])).ok());
  }
  EXPECT_EQ(Status::kBusy,
            svc.RingPush(*sid, kMmcEntry, BlockArgs(kMmcRwRead, 8, 2048, &bufs[4]))
                .status());

  // Draining alone does NOT free slots: a slot is occupied until its
  // completion is reaped, so the completion side can never overflow.
  ASSERT_TRUE(svc.RingDoorbell(*sid).ok());
  EXPECT_EQ(Status::kBusy,
            svc.RingPush(*sid, kMmcEntry, BlockArgs(kMmcRwRead, 8, 2048, &bufs[4]))
                .status());

  ASSERT_TRUE(svc.RingPop(*sid).ok());
  EXPECT_TRUE(
      svc.RingPush(*sid, kMmcEntry, BlockArgs(kMmcRwRead, 8, 2048, &bufs[4])).ok());
}

TEST_F(ReplayRingTest, EmptyDoorbellChargesNoSwitch) {
  ReplayService svc(&tb_->tee(), kDeveloperKey);
  ASSERT_TRUE(svc.RegisterDriverlet(mmc_->data(), mmc_->size()).ok());
  Result<SessionId> sid = svc.OpenSession("mmc");
  ASSERT_TRUE(sid.ok());

  uint64_t sw0 = tb_->tee().world_switches();
  uint64_t t0 = tb_->clock().now_us();
  // Doorbell before the ring exists, and again on a created-but-empty ring.
  Result<size_t> ran = svc.RingDoorbell(*sid);
  ASSERT_TRUE(ran.ok());
  EXPECT_EQ(0u, *ran);
  ASSERT_TRUE(svc.Ring(*sid).ok());
  ran = svc.RingDoorbell(*sid);
  ASSERT_TRUE(ran.ok());
  EXPECT_EQ(0u, *ran);
  EXPECT_EQ(sw0, tb_->tee().world_switches());
  EXPECT_EQ(t0, tb_->clock().now_us());
}

TEST_F(ReplayRingTest, RingCallsOnUnknownSessionFail) {
  ReplayService svc(&tb_->tee(), kDeveloperKey);
  ASSERT_TRUE(svc.RegisterDriverlet(mmc_->data(), mmc_->size()).ok());
  std::vector<uint8_t> buf;
  EXPECT_EQ(Status::kNotFound, svc.Ring(99).status());
  EXPECT_EQ(Status::kNotFound,
            svc.RingPush(99, kMmcEntry, BlockArgs(kMmcRwRead, 8, 2048, &buf)).status());
  EXPECT_EQ(Status::kNotFound, svc.RingDoorbell(99).status());
  EXPECT_EQ(Status::kNotFound, svc.RingPop(99).status());
}

TEST_F(ReplayRingTest, QuarantineMidBatchFailsRemainingCommandsFast) {
  ReplayServiceConfig cfg;
  cfg.quarantine_threshold = 2;
  ReplayService svc(&tb_->tee(), kDeveloperKey, cfg);
  ASSERT_TRUE(svc.RegisterDriverlet(mmc_->data(), mmc_->size()).ok());
  Result<SessionId> sid = svc.OpenSession("mmc");
  ASSERT_TRUE(sid.ok());

  std::vector<std::vector<uint8_t>> bufs(5);
  for (size_t i = 0; i < bufs.size(); ++i) {
    ASSERT_TRUE(
        svc.RingPush(*sid, kMmcEntry, BlockArgs(kMmcRwRead, 8, 2048, &bufs[i])).ok());
  }
  tb_->sd_medium().set_present(false);
  Result<size_t> ran = svc.RingDoorbell(*sid);
  tb_->sd_medium().set_present(true);
  ASSERT_TRUE(ran.ok());
  EXPECT_EQ(5u, *ran);

  // Commands 0 and 1 climb the ladder to the threshold; 2..4 must fail fast
  // with kQuarantined instead of touching the (now absent) device again.
  for (size_t i = 0; i < bufs.size(); ++i) {
    Result<RingCompletion> c = svc.RingPop(*sid);
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(i < 2 ? Status::kAborted : Status::kQuarantined, c->result.status());
  }
  EXPECT_TRUE(svc.Stats(*sid)->quarantined);
  EXPECT_EQ(1u, svc.quarantined_sessions());

  // Push-side fail-fast mirrors Submit once the session is quarantined, with
  // no device access even though the medium is healthy again.
  uint64_t resets_before = svc.replayer("mmc")->total_resets();
  EXPECT_EQ(Status::kQuarantined,
            svc.RingPush(*sid, kMmcEntry, BlockArgs(kMmcRwRead, 8, 2048, &bufs[0]))
                .status());
  EXPECT_EQ(resets_before, svc.replayer("mmc")->total_resets());
}

TEST_F(ReplayRingTest, BatchMatchesSequentialInvokesByteForByte) {
  // The same write/read command stream through (a) N sequential Invokes and
  // (b) one ring doorbell of N, on identical fresh testbeds. Read-back bytes
  // must be identical; only the world-switch count may differ.
  constexpr size_t kPairs = 4;
  auto run = [&](bool ring, std::vector<std::vector<uint8_t>>* read_bufs,
                 uint64_t* switches) {
    TestbedOptions opts;
    opts.secure_io = true;
    opts.probe_drivers = false;
    Rpi3Testbed tb{opts};
    ReplayService svc(&tb.tee(), kDeveloperKey);
    ASSERT_TRUE(svc.RegisterDriverlet(mmc_->data(), mmc_->size()).ok());
    Result<SessionId> sid = svc.OpenSession("mmc");
    ASSERT_TRUE(sid.ok());

    std::vector<std::vector<uint8_t>> write_bufs(kPairs);
    read_bufs->assign(kPairs, {});
    uint64_t sw0 = tb.tee().world_switches();
    for (size_t p = 0; p < kPairs; ++p) {
      uint64_t blkid = 2048 + p * 8;
      ReplayArgs w = BlockArgs(kMmcRwWrite, 8, blkid, &write_bufs[p],
                               static_cast<uint8_t>(0x11 * (p + 1)));
      ReplayArgs r = BlockArgs(kMmcRwRead, 8, blkid, &(*read_bufs)[p], 0x00);
      if (ring) {
        ASSERT_TRUE(svc.RingPush(*sid, kMmcEntry, std::move(w)).ok());
        ASSERT_TRUE(svc.RingPush(*sid, kMmcEntry, std::move(r)).ok());
      } else {
        ASSERT_TRUE(svc.Invoke(*sid, kMmcEntry, w).ok());
        ASSERT_TRUE(svc.Invoke(*sid, kMmcEntry, r).ok());
      }
    }
    if (ring) {
      Result<size_t> ran = svc.RingDoorbell(*sid);
      ASSERT_TRUE(ran.ok());
      EXPECT_EQ(2 * kPairs, *ran);
      for (size_t i = 0; i < 2 * kPairs; ++i) {
        Result<RingCompletion> c = svc.RingPop(*sid);
        ASSERT_TRUE(c.ok());
        EXPECT_TRUE(c->result.ok());
      }
    }
    *switches = tb.tee().world_switches() - sw0;
  };

  std::vector<std::vector<uint8_t>> seq_reads, ring_reads;
  uint64_t seq_switches = 0;
  uint64_t ring_switches = 0;
  run(false, &seq_reads, &seq_switches);
  run(true, &ring_reads, &ring_switches);
  EXPECT_EQ(2 * 2 * kPairs, seq_switches);  // 2 per command, unbatched
  EXPECT_EQ(2u, ring_switches);             // 2 for the whole batch
  for (size_t p = 0; p < kPairs; ++p) {
    // Reads really happened: the data is the written pattern, not the fill.
    EXPECT_EQ(std::vector<uint8_t>(8 * 512, static_cast<uint8_t>(0x11 * (p + 1))),
              seq_reads[p]);
    EXPECT_EQ(seq_reads[p], ring_reads[p]) << "pair " << p;
  }
}

}  // namespace
}  // namespace dlt
