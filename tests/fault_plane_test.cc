// SoC-level fault-injection plane tests: per-plane faults (MMIO register
// reads, DMA payload movement, IRQ delivery) against all three driverlet
// classes, asserting divergence reports with recording sites, the recovery
// policy ladder (retry with backoff → soft reset → quarantine), seeded
// determinism, and the fault-matrix campaign's byte-stable output.
#include <gtest/gtest.h>

#include "src/dev/mmc/mmc_controller.h"
#include "src/fault/fault_injector.h"
#include "src/workload/fault_campaign.h"
#include "src/workload/deploy_util.h"

namespace dlt {
namespace {

class FaultPlaneTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    mmc_pkg_ = new std::vector<uint8_t>(BuildMmcPackage());
    usb_pkg_ = new std::vector<uint8_t>(BuildUsbPackage());
    cam_pkg_ = new std::vector<uint8_t>(BuildCameraPackage());
    ASSERT_FALSE(mmc_pkg_->empty());
    ASSERT_FALSE(usb_pkg_->empty());
    ASSERT_FALSE(cam_pkg_->empty());
  }
  static void TearDownTestSuite() {
    delete mmc_pkg_;
    delete usb_pkg_;
    delete cam_pkg_;
  }

  static ReplayArgs BlockRead(uint64_t blkcnt, uint64_t blkid, std::vector<uint8_t>* buf) {
    buf->assign(blkcnt * 512, 0);
    ReplayArgs args;
    args.scalars = {{"rw", kMmcRwRead}, {"blkcnt", blkcnt}, {"blkid", blkid}, {"flag", 0}};
    args.buffers["buf"] = BufferView{buf->data(), buf->size()};
    return args;
  }

  static ReplayArgs BlockWrite(uint64_t blkid, std::vector<uint8_t>* payload) {
    ReplayArgs args;
    args.scalars = {{"rw", kMmcRwWrite},
                    {"blkcnt", payload->size() / 512},
                    {"blkid", blkid},
                    {"flag", 0}};
    args.ro_buffers["buf"] = ConstBufferView{payload->data(), payload->size()};
    return args;
  }

  static ReplayArgs CameraCapture(std::vector<uint8_t>* buf, std::vector<uint8_t>* img_size) {
    buf->assign(Vc4Firmware::FrameBytes(1440) + 4096, 0);
    img_size->assign(4, 0);
    ReplayArgs args;
    args.scalars = {{"frame", 1}, {"resolution", 720}, {"buf_size", buf->size()}};
    args.buffers["buf"] = BufferView{buf->data(), buf->size()};
    args.buffers["img_size"] = BufferView{img_size->data(), img_size->size()};
    return args;
  }

  static std::vector<uint8_t>* mmc_pkg_;
  static std::vector<uint8_t>* usb_pkg_;
  static std::vector<uint8_t>* cam_pkg_;
};

std::vector<uint8_t>* FaultPlaneTest::mmc_pkg_ = nullptr;
std::vector<uint8_t>* FaultPlaneTest::usb_pkg_ = nullptr;
std::vector<uint8_t>* FaultPlaneTest::cam_pkg_ = nullptr;

// ---- Arm-time validation ----

TEST_F(FaultPlaneTest, ArmValidatesSpecsBeforeInstallingAnything) {
  Deployment d = MakeDeployment(*mmc_pkg_);
  ASSERT_NE(0u, d.session);
  FaultInjector inj(&d.tb->machine());

  // An MMIO fault without a concrete attached device is rejected...
  FaultPlan vague(1);
  vague.Add(FaultSpec{.kind = FaultKind::kMmioCorruptRead});
  EXPECT_EQ(Status::kInvalidArg, inj.Arm(vague));
  // ...as is a spurious IRQ without a line; and the rejection is atomic: a
  // later bad spec leaves no hooks from earlier good ones behind.
  FaultPlan mixed(1);
  mixed.Add(FaultSpec{.kind = FaultKind::kIrqDrop});
  mixed.Add(FaultSpec{.kind = FaultKind::kIrqSpurious});
  EXPECT_EQ(Status::kInvalidArg, inj.Arm(mixed));
  EXPECT_FALSE(inj.armed());

  std::vector<uint8_t> buf;
  EXPECT_TRUE(d.service->Invoke(d.session, kMmcEntry, BlockRead(8, 64, &buf)).ok());
  EXPECT_EQ(0u, inj.injected_total());
}

// ---- MMIO plane ----

TEST_F(FaultPlaneTest, MmioTransientPollGlitchAbsorbedInPlace) {
  // One corrupted read of the command register while the driverlet polls for
  // completion: the next poll iteration reads the true value, so the fault is
  // absorbed by the poll loop without even a divergence.
  Deployment d = MakeDeployment(*mmc_pkg_);
  ASSERT_NE(0u, d.session);
  FaultInjector inj(&d.tb->machine());
  FaultPlan plan(42);
  plan.Add(FaultSpec{.kind = FaultKind::kMmioCorruptRead,
                     .device = d.tb->mmc_id(),
                     .reg_off = kSdCmd,
                     .max_faults = 1,
                     .arg = kSdCmdNewFlag});
  ASSERT_EQ(Status::kOk, inj.Arm(plan));

  std::vector<uint8_t> buf;
  Result<ReplayStats> r = d.service->Invoke(d.session, kMmcEntry, BlockRead(8, 64, &buf));
  ASSERT_TRUE(r.ok()) << StatusName(r.status());
  EXPECT_EQ(1u, inj.injected(FaultKind::kMmioCorruptRead));
  EXPECT_EQ(1, r->attempts);
}

TEST_F(FaultPlaneTest, MmioCorruptStateReadDivergesThenRecoversByReset) {
  // A one-shot corruption of the EDM state register violates the recorded
  // state constraint (idle FSM before data transfer): attempt 1 diverges, the
  // soft reset + re-execution recovers.
  Deployment d = MakeDeployment(*mmc_pkg_);
  ASSERT_NE(0u, d.session);
  FaultInjector inj(&d.tb->machine());
  FaultPlan plan(42);
  plan.Add(FaultSpec{.kind = FaultKind::kMmioCorruptRead,
                     .device = d.tb->mmc_id(),
                     .reg_off = kSdEdm,
                     .max_faults = 1,
                     .arg = 0x1});
  ASSERT_EQ(Status::kOk, inj.Arm(plan));

  std::vector<uint8_t> buf;
  Result<ReplayStats> r = d.service->Invoke(d.session, kMmcEntry, BlockRead(8, 64, &buf));
  ASSERT_TRUE(r.ok()) << StatusName(r.status());
  EXPECT_EQ(2, r->attempts);
  EXPECT_EQ(r->attempts, r->resets);  // reset precedes every execution (§3.3)
  EXPECT_EQ(1u, inj.injected_total());
  // The divergence that triggered the retry was reported with its recording
  // site in the gold driver.
  const DivergenceReport& rep = d.replayer->last_report();
  EXPECT_TRUE(rep.valid);
  EXPECT_NE(std::string::npos, rep.file.find("bcm_sdhost_driver.cc"));
  EXPECT_GT(rep.line, 0);
}

TEST_F(FaultPlaneTest, MmioStuckBusyExhaustsRetriesWithFullReport) {
  // The command register sticks at "new command pending": every poll times
  // out, every retry re-diverges, the replayer gives up with a rewound report.
  Deployment d = MakeDeployment(*mmc_pkg_);
  ASSERT_NE(0u, d.session);
  FaultInjector inj(&d.tb->machine());
  FaultPlan plan(42);
  plan.Add(FaultSpec{.kind = FaultKind::kMmioStuckValue,
                     .device = d.tb->mmc_id(),
                     .reg_off = kSdCmd,
                     .arg = kSdCmdNewFlag});
  ASSERT_EQ(Status::kOk, inj.Arm(plan));

  std::vector<uint8_t> buf;
  Result<ReplayStats> r = d.service->Invoke(d.session, kMmcEntry, BlockRead(8, 64, &buf));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(Status::kAborted, r.status());
  const DivergenceReport& rep = d.replayer->last_report();
  EXPECT_TRUE(rep.valid);
  EXPECT_EQ("RD_8", rep.template_name);
  EXPECT_GT(rep.event_index, 0u);
  EXPECT_NE(std::string::npos, rep.file.find("bcm_sdhost_driver.cc"));
  EXPECT_GT(rep.line, 0);
  EXPECT_GE(d.replayer->total_resets(), 2u);

  // Disarm restores the real MMIO window: the same session works again.
  inj.Disarm();
  EXPECT_TRUE(d.service->Invoke(d.session, kMmcEntry, BlockRead(8, 64, &buf)).ok());
}

TEST_F(FaultPlaneTest, PersistentFaultsDivergeUsbAndCameraWithTheirOwnSites) {
  // Each driverlet class diverges through the channel its constrained values
  // actually travel: dwc2 reads status via MMIO, so a stuck register breaks
  // it; the vchiq camera only issues unconstrained doorbell reads over MMIO —
  // its message words arrive via the vc4 firmware's bus-master writes into
  // shared memory, so the bus-write plane is what diverges it.
  {
    Deployment d = MakeDeployment(*usb_pkg_);
    ASSERT_NE(0u, d.session);
    FaultInjector inj(&d.tb->machine());
    FaultPlan plan(42);
    plan.Add(FaultSpec{.kind = FaultKind::kMmioStuckValue,
                       .device = d.tb->usb_id(),
                       .arg = 0xffffffff});
    ASSERT_EQ(Status::kOk, inj.Arm(plan));

    std::vector<uint8_t> buf;
    Result<ReplayStats> r = d.service->Invoke(d.session, kUsbEntry, BlockRead(8, 64, &buf));
    ASSERT_FALSE(r.ok());
    const DivergenceReport& rep = d.replayer->last_report();
    EXPECT_TRUE(rep.valid);
    EXPECT_FALSE(rep.template_name.empty());
    EXPECT_NE(std::string::npos, rep.file.find("dwc2_storage_driver.cc")) << rep.file;
    EXPECT_GT(rep.line, 0);
    EXPECT_GT(inj.injected_total(), 0u);
  }
  {
    Deployment d = MakeDeployment(*cam_pkg_);
    ASSERT_NE(0u, d.session);
    FaultInjector inj(&d.tb->machine());
    FaultPlan plan(42);
    plan.Add(FaultSpec{.kind = FaultKind::kBusCorruptWrite});
    ASSERT_EQ(Status::kOk, inj.Arm(plan));

    std::vector<uint8_t> buf, img;
    Result<ReplayStats> r =
        d.service->Invoke(d.session, kCameraEntry, CameraCapture(&buf, &img));
    ASSERT_FALSE(r.ok());
    const DivergenceReport& rep = d.replayer->last_report();
    EXPECT_TRUE(rep.valid);
    EXPECT_FALSE(rep.template_name.empty());
    EXPECT_NE(std::string::npos, rep.file.find("vchiq_camera_driver.cc")) << rep.file;
    EXPECT_GT(rep.line, 0);
    EXPECT_GT(inj.injected_total(), 0u);
  }
}

// ---- DMA plane ----

TEST_F(FaultPlaneTest, DmaEngineCorruptionIsSilentAtTheReplayLayer) {
  // Payload corruption in a DMA control block is invisible to template
  // validation: constraints cover control flow, not payload bytes. The replay
  // reports success while the data is wrong — which is exactly why the
  // campaign's recovery criterion is write+readback-verify, not status.
  Deployment d = MakeDeployment(*mmc_pkg_);
  ASSERT_NE(0u, d.session);
  std::vector<uint8_t> pattern = PatternBuf(8 * 512, 99);
  ASSERT_TRUE(d.service->Invoke(d.session, kMmcEntry, BlockWrite(512, &pattern)).ok());

  FaultInjector inj(&d.tb->machine());
  FaultPlan plan(7);
  plan.Add(FaultSpec{.kind = FaultKind::kDmaCorrupt, .max_faults = 1});
  ASSERT_EQ(Status::kOk, inj.Arm(plan));

  std::vector<uint8_t> buf;
  Result<ReplayStats> r = d.service->Invoke(d.session, kMmcEntry, BlockRead(8, 512, &buf));
  ASSERT_TRUE(r.ok()) << StatusName(r.status());
  EXPECT_EQ(1, r->attempts);  // no divergence was (or could be) detected
  EXPECT_EQ(1u, inj.injected(FaultKind::kDmaCorrupt));
  EXPECT_NE(pattern, buf);
  // The corruption is a byte-level burst, not wholesale garbage.
  size_t differing = 0;
  for (size_t i = 0; i < buf.size(); ++i) {
    differing += buf[i] != pattern[i];
  }
  EXPECT_LE(differing, 2u);

  // With the injector disarmed the stored data proves intact.
  inj.Disarm();
  std::vector<uint8_t> clean;
  ASSERT_TRUE(d.service->Invoke(d.session, kMmcEntry, BlockRead(8, 512, &clean)).ok());
  EXPECT_EQ(pattern, clean);
}

TEST_F(FaultPlaneTest, DmaTruncationLeavesStaleTail) {
  Deployment d = MakeDeployment(*mmc_pkg_);
  ASSERT_NE(0u, d.session);
  std::vector<uint8_t> pattern = PatternBuf(8 * 512, 5);
  ASSERT_TRUE(d.service->Invoke(d.session, kMmcEntry, BlockWrite(1024, &pattern)).ok());
  // Flush the (deterministically re-allocated) DMA staging region with a
  // different pattern, so the truncated delivery's stale tail is
  // distinguishable from the data it failed to deliver.
  std::vector<uint8_t> residue = PatternBuf(8 * 512, 77);
  ASSERT_TRUE(d.service->Invoke(d.session, kMmcEntry, BlockWrite(2048, &residue)).ok());

  FaultInjector inj(&d.tb->machine());
  FaultPlan plan(7);
  plan.Add(FaultSpec{.kind = FaultKind::kDmaTruncate, .max_faults = 1});
  ASSERT_EQ(Status::kOk, inj.Arm(plan));

  std::vector<uint8_t> buf;
  Result<ReplayStats> r = d.service->Invoke(d.session, kMmcEntry, BlockRead(8, 1024, &buf));
  EXPECT_EQ(1u, inj.injected(FaultKind::kDmaTruncate));
  if (r.ok()) {
    // Half of one control block's payload never arrived; the readback cannot
    // match the stored pattern.
    EXPECT_NE(pattern, buf);
  } else {
    // ... unless the short delivery desynchronized the transfer enough for
    // divergence detection to catch it — also a legitimate outcome.
    EXPECT_TRUE(d.replayer->last_report().valid);
  }
}

TEST_F(FaultPlaneTest, BusMasterCorruptionHitsDirectDmaDevices) {
  // dwc2 USB bus-masters its payload directly through AddressSpace::DmaRead —
  // the engine hook never sees it; the bus hook must.
  Deployment d = MakeDeployment(*usb_pkg_);
  ASSERT_NE(0u, d.session);
  std::vector<uint8_t> pattern = PatternBuf(8 * 512, 21);
  ASSERT_TRUE(d.service->Invoke(d.session, kUsbEntry, BlockWrite(256, &pattern)).ok());

  FaultInjector inj(&d.tb->machine());
  FaultPlan plan(3);
  plan.Add(FaultSpec{.kind = FaultKind::kBusCorruptWrite, .max_faults = 1});
  ASSERT_EQ(Status::kOk, inj.Arm(plan));

  std::vector<uint8_t> buf;
  Result<ReplayStats> r = d.service->Invoke(d.session, kUsbEntry, BlockRead(8, 256, &buf));
  ASSERT_TRUE(r.ok()) << StatusName(r.status());
  EXPECT_EQ(1u, inj.injected(FaultKind::kBusCorruptWrite));
  EXPECT_NE(pattern, buf);  // silent corruption on the read path

  inj.Disarm();
  std::vector<uint8_t> clean;
  ASSERT_TRUE(d.service->Invoke(d.session, kUsbEntry, BlockRead(8, 256, &clean)).ok());
  EXPECT_EQ(pattern, clean);  // the medium itself was never corrupted
}

// ---- IRQ plane ----

TEST_F(FaultPlaneTest, DroppedIrqTimesOutDivergesAndRecoversOnRetry) {
  Deployment d = MakeDeployment(*mmc_pkg_);
  ASSERT_NE(0u, d.session);
  FaultInjector inj(&d.tb->machine());
  FaultPlan plan(11);
  // Drop exactly one edge of the MMC DMA completion line (channel 15).
  plan.Add(FaultSpec{.kind = FaultKind::kIrqDrop,
                     .irq_line = kDmaIrqBase + 15,
                     .max_faults = 1});
  ASSERT_EQ(Status::kOk, inj.Arm(plan));

  uint64_t t0 = d.tb->clock().now_us();
  std::vector<uint8_t> buf;
  Result<ReplayStats> r = d.service->Invoke(d.session, kMmcEntry, BlockRead(8, 64, &buf));
  ASSERT_TRUE(r.ok()) << StatusName(r.status());
  EXPECT_EQ(2, r->attempts);  // wait_irq timed out once, retry completed
  EXPECT_EQ(r->attempts, r->resets);
  EXPECT_EQ(1u, inj.injected(FaultKind::kIrqDrop));
  // The timeout burned virtual, not wall, time.
  EXPECT_GT(d.tb->clock().now_us() - t0, 0u);
  const DivergenceReport& rep = d.replayer->last_report();
  EXPECT_TRUE(rep.valid);
  EXPECT_NE(std::string::npos, rep.file.find("bcm_sdhost_driver.cc"));
}

TEST_F(FaultPlaneTest, DelayedIrqWithinTimeoutIsAbsorbed) {
  Deployment d = MakeDeployment(*mmc_pkg_);
  ASSERT_NE(0u, d.session);
  FaultInjector inj(&d.tb->machine());
  FaultPlan plan(11);
  plan.Add(FaultSpec{.kind = FaultKind::kIrqDelay,
                     .irq_line = kDmaIrqBase + 15,
                     .max_faults = 1,
                     .arg = 200});  // well inside the driver's IRQ timeout
  ASSERT_EQ(Status::kOk, inj.Arm(plan));

  std::vector<uint8_t> buf;
  Result<ReplayStats> r = d.service->Invoke(d.session, kMmcEntry, BlockRead(8, 64, &buf));
  ASSERT_TRUE(r.ok()) << StatusName(r.status());
  EXPECT_EQ(1, r->attempts);  // late delivery, no divergence
  EXPECT_EQ(1u, inj.injected(FaultKind::kIrqDelay));
}

TEST_F(FaultPlaneTest, SpuriousIrqOnForeignLineIsHarmless) {
  Deployment d = MakeDeployment(*mmc_pkg_);
  ASSERT_NE(0u, d.session);
  FaultInjector inj(&d.tb->machine());
  FaultPlan plan(11);
  plan.Add(FaultSpec{.kind = FaultKind::kIrqSpurious, .irq_line = kUsbIrq, .at_us = 50});
  ASSERT_EQ(Status::kOk, inj.Arm(plan));

  std::vector<uint8_t> buf;
  Result<ReplayStats> r = d.service->Invoke(d.session, kMmcEntry, BlockRead(8, 64, &buf));
  ASSERT_TRUE(r.ok()) << StatusName(r.status());
  EXPECT_EQ(1u, inj.injected(FaultKind::kIrqSpurious));
}

// ---- Policy ladder ----

TEST_F(FaultPlaneTest, RetryBackoffSpendsVirtualTimeBeforeTheReset) {
  // Same one-shot divergence, once with and once without backoff: the ladder's
  // first rung must show up as extra virtual time, nothing else.
  uint64_t elapsed[2] = {0, 0};
  const uint64_t kBackoffUs = 10'000;
  for (int pass = 0; pass < 2; ++pass) {
    ReplayServiceConfig cfg;
    cfg.retry_backoff_us = pass == 0 ? 0 : kBackoffUs;
    Deployment d = MakeDeployment(*mmc_pkg_, cfg);
    ASSERT_NE(0u, d.session);
    FaultInjector inj(&d.tb->machine());
    FaultPlan plan(42);
    plan.Add(FaultSpec{.kind = FaultKind::kMmioCorruptRead,
                       .device = d.tb->mmc_id(),
                       .reg_off = kSdEdm,
                       .max_faults = 1,
                       .arg = 0x1});
    ASSERT_EQ(Status::kOk, inj.Arm(plan));
    uint64_t t0 = d.tb->clock().now_us();
    std::vector<uint8_t> buf;
    Result<ReplayStats> r = d.service->Invoke(d.session, kMmcEntry, BlockRead(8, 64, &buf));
    ASSERT_TRUE(r.ok()) << StatusName(r.status());
    EXPECT_EQ(2, r->attempts);
    elapsed[pass] = d.tb->clock().now_us() - t0;
  }
  EXPECT_GE(elapsed[1], elapsed[0] + kBackoffUs);
}

TEST_F(FaultPlaneTest, PersistentFaultClimbsToQuarantine) {
  ReplayServiceConfig cfg;
  cfg.quarantine_threshold = 2;
  Deployment d = MakeDeployment(*mmc_pkg_, cfg);
  ASSERT_NE(0u, d.session);
  FaultInjector inj(&d.tb->machine());
  FaultPlan plan(42);
  plan.Add(FaultSpec{.kind = FaultKind::kMmioStuckValue,
                     .device = d.tb->mmc_id(),
                     .reg_off = kSdCmd,
                     .arg = kSdCmdNewFlag});
  ASSERT_EQ(Status::kOk, inj.Arm(plan));

  std::vector<uint8_t> buf;
  EXPECT_EQ(Status::kAborted,
            d.service->Invoke(d.session, kMmcEntry, BlockRead(8, 64, &buf)).status());
  EXPECT_EQ(Status::kAborted,
            d.service->Invoke(d.session, kMmcEntry, BlockRead(8, 64, &buf)).status());
  // Rung 3: the session is quarantined; further invokes fail fast without
  // touching the (still faulty) device.
  uint64_t opportunities_before = inj.opportunities();
  EXPECT_EQ(Status::kQuarantined,
            d.service->Invoke(d.session, kMmcEntry, BlockRead(8, 64, &buf)).status());
  EXPECT_EQ(opportunities_before, inj.opportunities());
  EXPECT_EQ(1u, d.service->quarantined_sessions());

  // Once the fault clears, a fresh session recovers full service.
  inj.Disarm();
  ASSERT_EQ(Status::kOk, d.service->CloseSession(d.session));
  Result<SessionId> fresh = d.service->OpenSession(d.driverlet);
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(d.service->Invoke(*fresh, kMmcEntry, BlockRead(8, 64, &buf)).ok());
}

// ---- Determinism ----

TEST_F(FaultPlaneTest, SameSeedSameWorkloadSameTrace) {
  // Two fresh machines, the same plan and ops: every observable — statuses,
  // injection counters, draw opportunities, final virtual time — is identical.
  auto run = [&](uint64_t seed) {
    Deployment d = MakeDeployment(*mmc_pkg_);
    FaultInjector inj(&d.tb->machine());
    FaultTargets t;
    t.device = d.tb->mmc_id();
    t.dma_via_engine = true;
    EXPECT_EQ(Status::kOk, inj.Arm(MakePresetPlan(FaultPlane::kMmio, seed, t)));
    std::vector<Status> statuses;
    std::vector<uint8_t> buf;
    for (int op = 0; op < 4; ++op) {
      statuses.push_back(
          d.service->Invoke(d.session, kMmcEntry, BlockRead(8, 64 + op * 8, &buf)).status());
    }
    return std::make_tuple(statuses, inj.injected_total(), inj.opportunities(),
                           d.tb->clock().now_us());
  };
  EXPECT_EQ(run(123), run(123));
  // And a different seed actually changes the schedule's draw stream.
  EXPECT_NE(std::get<2>(run(123)), 0u);
}

TEST_F(FaultPlaneTest, FaultMatrixJsonIsByteIdenticalAcrossRuns) {
  FaultMatrixConfig cfg;
  cfg.seeds = {5};
  cfg.ops_per_cell = 2;
  cfg.driverlets = {"mmc"};
  std::string a = FaultMatrixToJson(RunFaultMatrix(cfg));
  std::string b = FaultMatrixToJson(RunFaultMatrix(cfg));
  EXPECT_EQ(a, b);
  EXPECT_NE(std::string::npos, a.find("\"recovery_rate\""));
  EXPECT_NE(std::string::npos, a.find("\"plane\": \"mmio\""));
  EXPECT_NE(std::string::npos, a.find("\"plane\": \"dma\""));
  EXPECT_NE(std::string::npos, a.find("\"plane\": \"irq\""));
}

}  // namespace
}  // namespace dlt
