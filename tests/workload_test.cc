// Workload-layer unit tests: the new peripheral FSMs at MMIO level, the
// ReplayBlockDevice chunking policy, the delegation accounting, and a
// taint-consistency property sweep.
#include <gtest/gtest.h>

#include <random>

#include "src/workload/delegated_block_device.h"
#include "src/workload/record_campaigns.h"
#include "src/workload/replay_block_device.h"
#include "src/workload/rpi3_testbed.h"
#include "src/workload/deploy_util.h"

namespace dlt {
namespace {

TEST(DisplayDeviceTest, CommitScansOutAfterVsync) {
  Rpi3Testbed tb{TestbedOptions{.secure_io = false, .probe_drivers = false}};
  auto& mem = tb.machine().mem();
  // Place a 2x2 bitmap in RAM and program a blit to (10, 20).
  uint32_t px[4] = {0x11111111, 0x22222222, 0x33333333, 0x44444444};
  ASSERT_EQ(Status::kOk, mem.WriteBytes(World::kNormal, 0x9000, px, sizeof(px)));
  ASSERT_EQ(Status::kOk, mem.Write32(World::kNormal, kDisplayBase + kDispFbAddr, 0x9000));
  ASSERT_EQ(Status::kOk, mem.Write32(World::kNormal, kDisplayBase + kDispStride, 8));
  ASSERT_EQ(Status::kOk, mem.Write32(World::kNormal, kDisplayBase + kDispGeom, 2 | (2 << 16)));
  ASSERT_EQ(Status::kOk, mem.Write32(World::kNormal, kDisplayBase + kDispPos, 10 | (20 << 16)));
  ASSERT_EQ(Status::kOk, mem.Write32(World::kNormal, kDisplayBase + kDispCommit, 1));
  // Busy until the next vsync.
  EXPECT_TRUE(*mem.Read32(World::kNormal, kDisplayBase + kDispStatus) & kDispStatusBusy);
  EXPECT_FALSE(tb.machine().irq().Pending(kDisplayIrq));
  tb.clock().Advance(20'000);
  EXPECT_TRUE(*mem.Read32(World::kNormal, kDisplayBase + kDispStatus) & kDispStatusVsync);
  EXPECT_TRUE(tb.machine().irq().Pending(kDisplayIrq));
  EXPECT_EQ(0x11111111u, tb.display().PanelPixel(10, 20));
  EXPECT_EQ(0x44444444u, tb.display().PanelPixel(11, 21));
  // W1C ack lowers the line.
  ASSERT_EQ(Status::kOk,
            mem.Write32(World::kNormal, kDisplayBase + kDispStatus, kDispStatusVsync));
  EXPECT_FALSE(tb.machine().irq().Pending(kDisplayIrq));
}

TEST(DisplayDeviceTest, OffscreenCommitIsIgnored) {
  Rpi3Testbed tb{TestbedOptions{.secure_io = false, .probe_drivers = false}};
  auto& mem = tb.machine().mem();
  ASSERT_EQ(Status::kOk, mem.Write32(World::kNormal, kDisplayBase + kDispGeom, 64 | (64 << 16)));
  ASSERT_EQ(Status::kOk, mem.Write32(World::kNormal, kDisplayBase + kDispPos,
                                     (kPanelWidth - 8) | (0 << 16)));
  ASSERT_EQ(Status::kOk, mem.Write32(World::kNormal, kDisplayBase + kDispCommit, 1));
  tb.clock().Advance(50'000);
  // No vsync completion: a driver waiting on it would time out (divergence).
  EXPECT_FALSE(*mem.Read32(World::kNormal, kDisplayBase + kDispStatus) & kDispStatusVsync);
  EXPECT_EQ(0u, tb.display().commits());
}

TEST(TouchDeviceTest, FifoOrderAndStatusBits) {
  Rpi3Testbed tb{TestbedOptions{.secure_io = false, .probe_drivers = false}};
  auto& mem = tb.machine().mem();
  EXPECT_EQ(0u, *mem.Read32(World::kNormal, kTouchBase + kTouchStatus));
  tb.touch().InjectTouch(3, 4);
  tb.touch().InjectTouch(5, 6);
  EXPECT_EQ(kTouchStatusPending, *mem.Read32(World::kNormal, kTouchBase + kTouchStatus));
  EXPECT_EQ(2u, *mem.Read32(World::kNormal, kTouchBase + kTouchFifoLvl));
  EXPECT_EQ(TouchController::PackSample(3, 4), *mem.Read32(World::kNormal, kTouchBase + kTouchData));
  EXPECT_EQ(TouchController::PackSample(5, 6), *mem.Read32(World::kNormal, kTouchBase + kTouchData));
  EXPECT_EQ(0u, *mem.Read32(World::kNormal, kTouchBase + kTouchStatus));
  EXPECT_FALSE(tb.machine().irq().Pending(kTouchIrq));
}

TEST(UartDeviceTest, WireRateLimitsTxFifo) {
  Rpi3Testbed tb{TestbedOptions{.secure_io = false, .probe_drivers = false}};
  auto& mem = tb.machine().mem();
  for (int i = 0; i < 16; ++i) {
    ASSERT_EQ(Status::kOk, mem.Write32(World::kNormal, kUartBase + kUartDr, 'a'));
  }
  EXPECT_TRUE(*mem.Read32(World::kNormal, kUartBase + kUartFr) & kUartFrTxFull);
  tb.clock().Advance(2 * 87);  // two byte times drain two slots
  EXPECT_FALSE(*mem.Read32(World::kNormal, kUartBase + kUartFr) & kUartFrTxFull);
  EXPECT_EQ(16u, tb.uart().transmitted().size());
}

TEST(ReplayChunkingTest, InvocationMixMatchesGranularities) {
  // 300 blocks -> 256 + 32 + 8 + 4(->RW_8) chunks; 1 block -> RW_1.
  Rpi3Testbed dev{TestbedOptions{}};
  Result<RecordCampaign> c = RecordMmcCampaign(&dev);
  ASSERT_TRUE(c.ok());
  std::vector<uint8_t> pkg = c->Seal(PackageFormat::kText, kDeveloperKey);

  Rpi3Testbed deploy{TestbedOptions{.secure_io = true, .probe_drivers = false}};
  ReplayService service(&deploy.tee(), kDeveloperKey);
  Result<std::string> name = service.RegisterDriverlet(pkg.data(), pkg.size());
  ASSERT_TRUE(name.ok());
  Result<SessionId> sid = service.OpenSession(*name);
  ASSERT_TRUE(sid.ok());
  ReplayBlockDevice rdev(&service, *sid, kMmcEntry);

  std::vector<uint8_t> data = PatternBuf(300 * 512, 0x5);
  ASSERT_EQ(Status::kOk, rdev.Write(0, 300, data.data()));
  ASSERT_EQ(Status::kOk, rdev.Write(4096, 1, data.data()));
  const auto& inv = rdev.invocations();
  EXPECT_EQ(1u, inv.at("WR_256"));
  EXPECT_EQ(1u, inv.at("WR_32"));
  EXPECT_EQ(2u, inv.at("WR_8"));  // the 8-chunk and the 4-block remainder
  EXPECT_EQ(1u, inv.at("WR_1"));
  // Data integrity across the chunk boundaries.
  std::vector<uint8_t> readback(300 * 512, 0);
  ASSERT_EQ(Status::kOk, rdev.Read(0, 300, readback.data()));
  EXPECT_EQ(data, readback);
}

TEST(DelegationTest, ExposureAccountingAndPassthrough) {
  Rpi3Testbed tb{TestbedOptions{}};
  PageCacheBlockDevice cache(&tb.mmc_driver(), &tb.machine(),
                             PageCacheBlockDevice::SyncMode::kWriteback);
  DelegatedBlockDevice delegated(&cache, &tb.machine());
  std::vector<uint8_t> data = PatternBuf(8 * 512, 0xcd);
  uint64_t t0 = tb.clock().now_us();
  ASSERT_EQ(Status::kOk, delegated.Write(0, 8, data.data()));
  EXPECT_GT(tb.clock().now_us(), t0);  // world switches + marshalling charged
  std::vector<uint8_t> readback(8 * 512, 0);
  ASSERT_EQ(Status::kOk, delegated.Read(0, 8, readback.data()));
  EXPECT_EQ(data, readback);
  EXPECT_EQ(2u * 8 * 512, delegated.exposed_bytes());
  EXPECT_EQ(2u, delegated.io_ops());
}

// Property: for arbitrary operator chains, the TValue's concrete value always
// equals its symbolic expression evaluated at the input bindings — the
// invariant that makes recorded output expressions sound.
class TaintConsistencyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(TaintConsistencyTest, ConcreteMatchesSymbolicEval) {
  std::mt19937_64 rng(GetParam());
  Bindings bindings{{"a", rng() % 1000 + 1}, {"b", rng() % 1000 + 1}};
  TValue a = TValue::Input("a", bindings["a"]);
  TValue b = TValue::Input("b", bindings["b"]);
  TValue acc = a;
  for (int i = 0; i < 24; ++i) {
    TValue operand = (rng() % 3 == 0) ? b : TValue(rng() % 64 + 1);
    switch (rng() % 8) {
      case 0: acc = acc + operand; break;
      case 1: acc = acc - operand; break;
      case 2: acc = acc * operand; break;
      case 3: acc = acc & operand; break;
      case 4: acc = acc | operand; break;
      case 5: acc = acc ^ operand; break;
      case 6: acc = acc << TValue(rng() % 8); break;
      case 7: acc = acc >> TValue(rng() % 8); break;
    }
  }
  Result<uint64_t> sym = acc.expr()->Eval(bindings);
  ASSERT_TRUE(sym.ok());
  EXPECT_EQ(acc.value(), *sym);
  // And at *different* bindings the expression still evaluates (generalization).
  Bindings other{{"a", 7}, {"b", 9}};
  EXPECT_TRUE(acc.expr()->Eval(other).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TaintConsistencyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u, 89u));

// The shared --seeds/--base-seed parsing every bench and CLI sweep now uses.
TEST(SeedRangeTest, ListEnumeratesFromBaseAndFlagsApply) {
  SeedRange r;
  EXPECT_TRUE(r.valid());
  EXPECT_EQ(r.List(), (std::vector<uint64_t>{1, 2, 3, 4}));

  EXPECT_TRUE(IsSeedRangeFlag("--seeds"));
  EXPECT_TRUE(IsSeedRangeFlag("--base-seed"));
  EXPECT_FALSE(IsSeedRangeFlag("--seed"));

  ApplySeedRangeFlag(&r, "--seeds", "3");
  ApplySeedRangeFlag(&r, "--base-seed", "100");
  EXPECT_EQ(r.count, 3);
  EXPECT_EQ(r.base, 100u);
  EXPECT_EQ(r.List(), (std::vector<uint64_t>{100, 101, 102}));

  ApplySeedRangeFlag(&r, "--seeds", "0");
  EXPECT_FALSE(r.valid());
}

}  // namespace
}  // namespace dlt
