// End-to-end fTPM driverlet tests (fourth class): the variable-length
// command/response pipe — record on the developer machine, replay in the TEE.
// Exercises the shapes the block/camera classes never hit: response lengths
// that are symbolic functions of the parameters, NV state (PCR bank, DRBG)
// that survives soft resets, and per-ordinal transition paths.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "src/core/integrity.h"
#include "src/core/replayer.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/workload/deploy_util.h"
#include "src/workload/record_campaigns.h"
#include "src/workload/rpi3_testbed.h"

namespace dlt {
namespace {

class FtpmDriverletTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dev_machine_ = new Rpi3Testbed(TestbedOptions{});
    Result<RecordCampaign> campaign = RecordFtpmCampaign(dev_machine_);
    ASSERT_TRUE(campaign.ok()) << StatusName(campaign.status());
    sealed_ = new std::vector<uint8_t>(campaign->Seal(PackageFormat::kText, kDeveloperKey));
    sealed_bin_ = new std::vector<uint8_t>(campaign->Seal(PackageFormat::kBinary, kDeveloperKey));
  }
  static void TearDownTestSuite() {
    delete dev_machine_;
    delete sealed_;
    delete sealed_bin_;
  }

  void SetUp() override { Redeploy(); }

  // Fresh deployment machine + replayer with the sealed package loaded.
  void Redeploy() {
    TestbedOptions opts;
    opts.secure_io = true;
    opts.probe_drivers = false;
    deploy_ = std::make_unique<Rpi3Testbed>(opts);
    replayer_ = std::make_unique<Replayer>(&deploy_->tee(), kDeveloperKey);
    ASSERT_EQ(Status::kOk, replayer_->LoadPackage(sealed_->data(), sealed_->size()));
  }

  Result<ReplayStats> Execute(uint64_t ord, uint64_t arg, const std::vector<uint8_t>& req,
                              std::vector<uint8_t>* rsp) {
    ReplayArgs args;
    args.scalars = {{"ord", ord}, {"arg", arg}};
    args.ro_buffers["req"] = ConstBufferView{req.data(), req.size()};
    args.buffers["rsp"] = BufferView{rsp->data(), rsp->size()};
    return replayer_->Invoke(kFtpmEntry, args);
  }

  const InteractionTemplate* FindTemplate(const std::string& name) {
    for (const InteractionTemplate* t : replayer_->templates()) {
      if (t->name == name) {
        return t;
      }
    }
    return nullptr;
  }

  static Rpi3Testbed* dev_machine_;
  static std::vector<uint8_t>* sealed_;
  static std::vector<uint8_t>* sealed_bin_;
  std::unique_ptr<Rpi3Testbed> deploy_;
  std::unique_ptr<Replayer> replayer_;
};

Rpi3Testbed* FtpmDriverletTest::dev_machine_ = nullptr;
std::vector<uint8_t>* FtpmDriverletTest::sealed_ = nullptr;
std::vector<uint8_t>* FtpmDriverletTest::sealed_bin_ = nullptr;

TEST_F(FtpmDriverletTest, CampaignDistillsFourTemplates) {
  // Five record runs, four templates: GetRandom128 merges into GetRandom32
  // (same transition path, the length is a symbolic operand).
  EXPECT_EQ(4u, replayer_->templates().size());
  EXPECT_NE(nullptr, FindTemplate("GetRandom32"));
  EXPECT_EQ(nullptr, FindTemplate("GetRandom128"));
  EXPECT_NE(nullptr, FindTemplate("PcrExtend"));
  EXPECT_NE(nullptr, FindTemplate("PcrRead"));
  EXPECT_NE(nullptr, FindTemplate("Quote"));
}

TEST_F(FtpmDriverletTest, GetRandomGeneralizesUnrecordedLengths) {
  // arg=64 was never recorded (32 and 128 were): the response length is a
  // symbolic function of arg, so the merged template covers it.
  std::vector<uint8_t> req(kFtpmPcrBytes, 0);
  std::vector<uint8_t> rsp(kFtpmMaxRandom, 0);
  Result<ReplayStats> r = Execute(kFtpmOrdGetRandom, 64, req, &rsp);
  ASSERT_TRUE(r.ok()) << StatusName(r.status());
  EXPECT_EQ("GetRandom32", r->template_name);

  // Exactly 64 bytes delivered: nonzero payload, untouched tail.
  bool payload_nonzero = false;
  for (size_t i = 0; i < 64; ++i) {
    payload_nonzero |= rsp[i] != 0;
  }
  EXPECT_TRUE(payload_nonzero);
  for (size_t i = 64; i < rsp.size(); ++i) {
    ASSERT_EQ(0, rsp[i]) << "byte past the response length was written at " << i;
  }

  // The DRBG advances: a second call yields a different block (data-plane
  // values are dynamic; only the state machine is pinned).
  std::vector<uint8_t> rsp2(kFtpmMaxRandom, 0);
  ASSERT_TRUE(Execute(kFtpmOrdGetRandom, 64, req, &rsp2).ok());
  EXPECT_NE(0, std::memcmp(rsp.data(), rsp2.data(), 64));

  // The cap itself is covered.
  std::vector<uint8_t> rsp3(kFtpmMaxRandom, 0);
  EXPECT_TRUE(Execute(kFtpmOrdGetRandom, kFtpmMaxRandom, req, &rsp3).ok());
}

TEST_F(FtpmDriverletTest, ConstraintsRejectUncoveredInputs) {
  std::vector<uint8_t> req(kFtpmPcrBytes, 0);
  std::vector<uint8_t> rsp(kFtpmMaxRandom, 0);
  // Zero-length, unaligned and over-cap get-random requests violate the
  // initial constraints distilled from the gold driver's parameter checks.
  EXPECT_EQ(Status::kNoTemplate, Execute(kFtpmOrdGetRandom, 0, req, &rsp).status());
  EXPECT_EQ(Status::kNoTemplate, Execute(kFtpmOrdGetRandom, 30, req, &rsp).status());
  EXPECT_EQ(Status::kNoTemplate, Execute(kFtpmOrdGetRandom, 300, req, &rsp).status());
  // Out-of-range PCR index.
  EXPECT_EQ(Status::kNoTemplate, Execute(kFtpmOrdPcrRead, kFtpmPcrCount, req, &rsp).status());
  // Unknown ordinal: no per-ordinal path matches.
  EXPECT_EQ(Status::kNoTemplate, Execute(9, 32, req, &rsp).status());
}

TEST_F(FtpmDriverletTest, PcrExtendThenReadMatchesNvOracle) {
  std::vector<uint8_t> digest(kFtpmPcrBytes);
  for (size_t i = 0; i < digest.size(); ++i) {
    digest[i] = static_cast<uint8_t>(i * 3 + 1);
  }
  std::vector<uint8_t> rsp(kFtpmMaxRandom, 0);
  Result<ReplayStats> r = Execute(kFtpmOrdPcrExtend, 3, digest, &rsp);
  ASSERT_TRUE(r.ok()) << StatusName(r.status());
  EXPECT_EQ("PcrExtend", r->template_name);

  // pcr' = H(0 || digest): the device bank holds the oracle value...
  std::array<uint8_t, kFtpmPcrBytes> zero{};
  std::array<uint8_t, kFtpmPcrBytes> want =
      FtpmDevice::ExtendMix(zero, digest.data(), digest.size());
  EXPECT_EQ(0, std::memcmp(deploy_->ftpm().pcr(3).data(), want.data(), want.size()));

  // ...and the read ordinal delivers it through the pipe.
  std::vector<uint8_t> read_rsp(kFtpmMaxRandom, 0);
  r = Execute(kFtpmOrdPcrRead, 3, digest, &read_rsp);
  ASSERT_TRUE(r.ok()) << StatusName(r.status());
  EXPECT_EQ("PcrRead", r->template_name);
  EXPECT_EQ(0, std::memcmp(read_rsp.data(), want.data(), want.size()));

  // Untouched PCRs stay zero.
  std::vector<uint8_t> other(kFtpmMaxRandom, 0);
  ASSERT_TRUE(Execute(kFtpmOrdPcrRead, 4, digest, &other).ok());
  EXPECT_EQ(0, std::memcmp(other.data(), zero.data(), zero.size()));
}

TEST_F(FtpmDriverletTest, NvStateSurvivesDeviceSoftReset) {
  // The fTPM's PCR bank lives in RPMB: a mailbox soft reset (the replayer's
  // recovery ladder does these) must not wipe it.
  std::vector<uint8_t> digest(kFtpmPcrBytes, 0xa5);
  std::vector<uint8_t> rsp(kFtpmMaxRandom, 0);
  ASSERT_TRUE(Execute(kFtpmOrdPcrExtend, 1, digest, &rsp).ok());

  deploy_->ResetDevices();

  std::array<uint8_t, kFtpmPcrBytes> zero{};
  std::array<uint8_t, kFtpmPcrBytes> want =
      FtpmDevice::ExtendMix(zero, digest.data(), digest.size());
  std::vector<uint8_t> read_rsp(kFtpmMaxRandom, 0);
  ASSERT_TRUE(Execute(kFtpmOrdPcrRead, 1, digest, &read_rsp).ok());
  EXPECT_EQ(0, std::memcmp(read_rsp.data(), want.data(), want.size()));
}

TEST_F(FtpmDriverletTest, QuoteEchoesNonceAndBindsPcrState) {
  std::vector<uint8_t> req(kFtpmPcrBytes, 0);
  for (uint32_t i = 0; i < kFtpmNonceBytes; ++i) {
    req[i] = static_cast<uint8_t>(0x40 + i);  // nonce in the first 16 bytes
  }
  std::vector<uint8_t> quote1(kFtpmMaxRandom, 0);
  Result<ReplayStats> r = Execute(kFtpmOrdQuote, 0x3, req, &quote1);
  ASSERT_TRUE(r.ok()) << StatusName(r.status());
  EXPECT_EQ("Quote", r->template_name);
  // The quote opens with the caller's nonce (freshness).
  EXPECT_EQ(0, std::memcmp(quote1.data(), req.data(), kFtpmNonceBytes));

  // Extending a selected PCR changes the quote body for the same nonce.
  std::vector<uint8_t> digest(kFtpmPcrBytes, 0x11);
  std::vector<uint8_t> rsp(kFtpmMaxRandom, 0);
  ASSERT_TRUE(Execute(kFtpmOrdPcrExtend, 0, digest, &rsp).ok());
  std::vector<uint8_t> quote2(kFtpmMaxRandom, 0);
  ASSERT_TRUE(Execute(kFtpmOrdQuote, 0x3, req, &quote2).ok());
  EXPECT_EQ(0, std::memcmp(quote2.data(), req.data(), kFtpmNonceBytes));
  EXPECT_NE(0, std::memcmp(quote1.data() + kFtpmNonceBytes, quote2.data() + kFtpmNonceBytes,
                           kFtpmPcrBytes));
}

TEST_F(FtpmDriverletTest, EnginesAgreeByteForByteAndMatchGolden) {
  const ReplayEngine kEngines[] = {ReplayEngine::kInterpreter, ReplayEngine::kCompiled};
  std::vector<uint8_t> out[2];
  std::string measurement[2];
  for (int i = 0; i < 2; ++i) {
    Redeploy();  // fresh DRBG per engine, so the streams are comparable
    replayer_->set_engine(kEngines[i]);
    std::vector<uint8_t> req(kFtpmPcrBytes, 0);
    std::vector<uint8_t> rsp(kFtpmMaxRandom, 0);
    Result<ReplayStats> r = Execute(kFtpmOrdGetRandom, 32, req, &rsp);
    ASSERT_TRUE(r.ok()) << StatusName(r.status());
    EXPECT_EQ(kEngines[i] == ReplayEngine::kCompiled, r->compiled);
    out[i] = rsp;
    measurement[i] = r->measurement;

    // The clean run's chain equals the statically computed golden chain.
    const InteractionTemplate* tpl = FindTemplate(r->template_name);
    ASSERT_NE(nullptr, tpl);
    EXPECT_EQ(GoldenMeasurementHex(*tpl), r->measurement);
    EXPECT_TRUE(replayer_->last_measurement().valid);
    EXPECT_TRUE(replayer_->last_measurement().matches_golden);
  }
  EXPECT_EQ(out[0], out[1]);
  EXPECT_EQ(measurement[0], measurement[1]);
}

TEST_F(FtpmDriverletTest, BoundedStatusGlitchRecoversViaRetryLadder) {
  // One corrupted status read makes the device look busy; attempt 1 diverges
  // at the recorded not-busy branch, the soft reset + re-execution recovers.
  FaultInjector inj(&deploy_->machine());
  FaultPlan plan(42);
  plan.Add(FaultSpec{.kind = FaultKind::kMmioCorruptRead,
                     .device = deploy_->ftpm_id(),
                     .reg_off = kFtpmStatus,
                     .max_faults = 1,
                     .arg = kFtpmStatusBusy});
  ASSERT_EQ(Status::kOk, inj.Arm(plan));

  std::vector<uint8_t> req(kFtpmPcrBytes, 0);
  std::vector<uint8_t> rsp(kFtpmMaxRandom, 0);
  Result<ReplayStats> r = Execute(kFtpmOrdGetRandom, 32, req, &rsp);
  inj.Disarm();
  ASSERT_TRUE(r.ok()) << StatusName(r.status());
  EXPECT_EQ(2, r->attempts);
  EXPECT_EQ(1u, inj.injected_total());
}

TEST_F(FtpmDriverletTest, ServiceQuarantinesPersistentFault) {
  // Session admission + rung-0 integrity for the new class: a persistent MMIO
  // corruption diverges from golden and fences the session.
  ReplayServiceConfig cfg;
  cfg.enforce_integrity = true;
  cfg.quarantine_threshold = 0;
  Deployment d = MakeDeployment(*sealed_, cfg);
  ASSERT_NE(0u, d.session);
  d.replayer->set_max_attempts(1);

  FaultInjector inj(&d.tb->machine());
  FaultPlan plan(7);
  plan.Add(FaultSpec{.kind = FaultKind::kMmioCorruptRead,
                     .device = d.tb->ftpm_id(),
                     .arg = 0xff});
  ASSERT_EQ(Status::kOk, inj.Arm(plan));

  ReplayArgs args;
  std::vector<uint8_t> req(kFtpmPcrBytes, 0);
  std::vector<uint8_t> rsp(kFtpmMaxRandom, 0);
  args.scalars = {{"ord", kFtpmOrdGetRandom}, {"arg", 32}};
  args.ro_buffers["req"] = ConstBufferView{req.data(), req.size()};
  args.buffers["rsp"] = BufferView{rsp.data(), rsp.size()};
  Result<ReplayStats> r = d.service->Invoke(d.session, kFtpmEntry, args);
  inj.Disarm();
  ASSERT_FALSE(r.ok());

  Result<SessionStats> st = d.service->Stats(d.session);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(1u, st->measurement_mismatches);
  EXPECT_TRUE(st->quarantined);
  EXPECT_EQ(Status::kQuarantined, d.service->Invoke(d.session, kFtpmEntry, args).status());
}

TEST_F(FtpmDriverletTest, BinaryPackageFormatRoundTrips) {
  Replayer bin_replayer(&deploy_->tee(), kDeveloperKey);
  ASSERT_EQ(Status::kOk, bin_replayer.LoadPackage(sealed_bin_->data(), sealed_bin_->size()));
  EXPECT_EQ(4u, bin_replayer.templates().size());

  ReplayArgs args;
  std::vector<uint8_t> req(kFtpmPcrBytes, 0);
  std::vector<uint8_t> rsp(kFtpmMaxRandom, 0);
  args.scalars = {{"ord", kFtpmOrdGetRandom}, {"arg", 32}};
  args.ro_buffers["req"] = ConstBufferView{req.data(), req.size()};
  args.buffers["rsp"] = BufferView{rsp.data(), rsp.size()};
  EXPECT_TRUE(bin_replayer.Invoke(kFtpmEntry, args).ok());
}

TEST_F(FtpmDriverletTest, NormalWorldCannotTouchFtpm) {
  Result<uint32_t> r = deploy_->machine().mem().Read32(World::kNormal, kFtpmBase + kFtpmStatus);
  EXPECT_EQ(Status::kPermissionDenied, r.status());
}

}  // namespace
}  // namespace dlt
