// Compatibility shim: every shared test helper (deployment/package builders,
// PatternBuf, MemBlockDevice) lives in src/workload/deploy_util.h, shared with
// the benches and the fault-matrix campaign. Keep this file a pure forward.
#ifndef TESTS_TEST_UTIL_H_
#define TESTS_TEST_UTIL_H_

#include "src/workload/deploy_util.h"

#endif  // TESTS_TEST_UTIL_H_
