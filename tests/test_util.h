// Shared helpers for the test suite. Deployment/package builders and
// PatternBuf live in src/workload/deploy_util.h, shared with the benches.
#ifndef TESTS_TEST_UTIL_H_
#define TESTS_TEST_UTIL_H_

#include <cstring>
#include <map>
#include <vector>

#include "src/kern/block_layer.h"
#include "src/workload/deploy_util.h"

namespace dlt {

// In-memory BlockDevice with no timing model; for engine-level tests (MiniDb,
// page cache) that do not need the simulated machine.
class MemBlockDevice : public BlockDevice {
 public:
  explicit MemBlockDevice(uint64_t sectors) : sectors_(sectors) {}

  Status Read(uint64_t lba, uint32_t count, uint8_t* out) override {
    if (lba + count > sectors_) {
      return Status::kOutOfRange;
    }
    for (uint32_t i = 0; i < count; ++i) {
      auto it = data_.find(lba + i);
      if (it == data_.end()) {
        std::memset(out + i * 512, 0, 512);
      } else {
        std::memcpy(out + i * 512, it->second.data(), 512);
      }
    }
    ++ops_;
    return Status::kOk;
  }

  Status Write(uint64_t lba, uint32_t count, const uint8_t* data) override {
    if (lba + count > sectors_) {
      return Status::kOutOfRange;
    }
    for (uint32_t i = 0; i < count; ++i) {
      auto& sector = data_[lba + i];
      sector.resize(512);
      std::memcpy(sector.data(), data + i * 512, 512);
    }
    ++ops_;
    return Status::kOk;
  }

  Status Flush() override { return Status::kOk; }
  uint64_t io_ops() const override { return ops_; }

 private:
  uint64_t sectors_;
  std::map<uint64_t, std::vector<uint8_t>> data_;
  uint64_t ops_ = 0;
};

}  // namespace dlt

#endif  // TESTS_TEST_UTIL_H_
