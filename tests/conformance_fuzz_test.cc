// Slow-tier conformance sweep (ctest label "slow"): a wider seed range and a
// bigger-block generator configuration than the tier-1 fixed corpus. Nightly
// CI goes wider still via `driverletc check --seeds 500`; this keeps a
// meaningful sweep inside the test suite where a failure produces a shrunk
// repro hint instead of just an exit code.
#include <gtest/gtest.h>

#include "src/check/conformance.h"

namespace dlt {
namespace {

void ExpectConforms(const GeneratedCase& g) {
  ConformanceOutcome out = RunConformance(g);
  if (out.ok()) return;
  for (const ConformanceFailure& f : out.failures) {
    ADD_FAILURE() << "seed " << g.seed << " " << f.invariant << ": " << f.detail;
  }
  // Hand the developer a minimal reproduction straight from the test log.
  auto shrunk = Shrink(g, AllInvariants());
  if (shrunk.ok()) {
    ADD_FAILURE() << "shrunk repro (" << shrunk->reduced.tpl.events.size()
                  << " events, fails " << shrunk->invariant << "):\n"
                  << ReproToString(shrunk->reduced, shrunk->invariant);
  }
}

TEST(ConformanceFuzzTest, WideSeedSweepConforms) {
  for (uint64_t seed = 51; seed <= 150; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ExpectConforms(GenerateCase(seed));
  }
}

TEST(ConformanceFuzzTest, LargeTemplatesConform) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    SCOPED_TRACE("large seed " + std::to_string(seed));
    GenConfig cfg;
    cfg.seed = 0x5100 + seed;
    cfg.min_blocks = 8;
    cfg.max_blocks = 14;
    GeneratedCase g = GenerateCase(cfg);
    EXPECT_GE(g.tpl.events.size(), 8u);
    ExpectConforms(g);
  }
}

}  // namespace
}  // namespace dlt
