// Unit tests for the SoC substrate: clock, interrupts, TZASC, address space,
// DMA engine.
#include <gtest/gtest.h>

#include "src/soc/machine.h"

namespace dlt {
namespace {

TEST(SimClockTest, AdvanceFiresDueEventsInOrder) {
  SimClock clock;
  std::vector<int> fired;
  clock.ScheduleIn(10, [&] { fired.push_back(1); });
  clock.ScheduleIn(5, [&] { fired.push_back(2); });
  clock.ScheduleIn(20, [&] { fired.push_back(3); });
  clock.Advance(15);
  EXPECT_EQ((std::vector<int>{2, 1}), fired);
  EXPECT_EQ(15u, clock.now_us());
  clock.Advance(10);
  EXPECT_EQ((std::vector<int>{2, 1, 3}), fired);
}

TEST(SimClockTest, SameDeadlineFiresInScheduleOrder) {
  SimClock clock;
  std::vector<int> fired;
  clock.ScheduleIn(7, [&] { fired.push_back(1); });
  clock.ScheduleIn(7, [&] { fired.push_back(2); });
  clock.Advance(7);
  EXPECT_EQ((std::vector<int>{1, 2}), fired);
}

TEST(SimClockTest, CancelPreventsFiring) {
  SimClock clock;
  bool fired = false;
  SimClock::EventId id = clock.ScheduleIn(5, [&] { fired = true; });
  EXPECT_TRUE(clock.Cancel(id));
  EXPECT_FALSE(clock.Cancel(id));  // double-cancel reports failure
  clock.Advance(10);
  EXPECT_FALSE(fired);
}

TEST(SimClockTest, CallbacksMayScheduleMoreEvents) {
  SimClock clock;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) {
      clock.ScheduleIn(1, chain);
    }
  };
  clock.ScheduleIn(1, chain);
  clock.Advance(100);
  EXPECT_EQ(5, count);
}

TEST(SimClockTest, StepToNextEventJumps) {
  SimClock clock;
  bool fired = false;
  clock.ScheduleIn(1000, [&] { fired = true; });
  EXPECT_TRUE(clock.StepToNextEvent());
  EXPECT_TRUE(fired);
  EXPECT_EQ(1000u, clock.now_us());
  EXPECT_FALSE(clock.StepToNextEvent());
}

TEST(SimClockTest, NextEventTimeSkipsCancelled) {
  SimClock clock;
  SimClock::EventId a = clock.ScheduleIn(5, [] {});
  clock.ScheduleIn(9, [] {});
  clock.Cancel(a);
  ASSERT_TRUE(clock.NextEventTime().has_value());
  EXPECT_EQ(9u, *clock.NextEventTime());
}

TEST(IrqTest, RaiseClearPendingAndCounts) {
  InterruptController irq;
  EXPECT_FALSE(irq.Pending(5));
  irq.Raise(5);
  irq.Raise(5);  // still one level-triggered assertion
  EXPECT_TRUE(irq.Pending(5));
  EXPECT_EQ(1u, irq.raise_count(5));
  irq.Clear(5);
  EXPECT_FALSE(irq.Pending(5));
  irq.Raise(5);
  EXPECT_EQ(2u, irq.raise_count(5));
}

TEST(IrqTest, HighLinesWork) {
  InterruptController irq;
  irq.Raise(70);
  EXPECT_TRUE(irq.Pending(70));
  EXPECT_FALSE(irq.Pending(69));
  irq.Clear(70);
  EXPECT_FALSE(irq.Pending(70));
}

TEST(TzascTest, LaterAssignmentsOverride) {
  Tzasc tz;
  tz.AssignRegion(0x1000, 0x1000, World::kSecure);
  EXPECT_EQ(World::kSecure, tz.OwnerOf(0x1800));
  tz.AssignRegion(0x1800, 0x100, World::kNormal);
  EXPECT_EQ(World::kNormal, tz.OwnerOf(0x1880));
  EXPECT_EQ(World::kSecure, tz.OwnerOf(0x1000));
}

TEST(TzascTest, SecureAccessesEverythingNormalOnlyNormal) {
  Tzasc tz;
  tz.AssignRegion(0x2000, 0x1000, World::kSecure);
  EXPECT_TRUE(tz.Allows(World::kSecure, 0x2000));
  EXPECT_TRUE(tz.Allows(World::kSecure, 0x9000));
  EXPECT_FALSE(tz.Allows(World::kNormal, 0x2000));
  EXPECT_TRUE(tz.Allows(World::kNormal, 0x9000));
  EXPECT_EQ(1u, tz.denied_count());
}

class ScratchDevice : public MmioDevice {
 public:
  std::string_view name() const override { return "scratch"; }
  uint32_t MmioRead32(uint64_t offset) override { return static_cast<uint32_t>(offset + 1); }
  void MmioWrite32(uint64_t offset, uint32_t value) override { last_ = {offset, value}; }
  void SoftReset() override { last_ = {0, 0}; }
  std::pair<uint64_t, uint32_t> last_{0, 0};
};

TEST(AddressSpaceTest, RamReadWriteRoundTrip) {
  AddressSpace mem(nullptr);
  ASSERT_EQ(Status::kOk, mem.AddRam(0, 0x10000));
  ASSERT_EQ(Status::kOk, mem.Write32(World::kNormal, 0x100, 0xdeadbeef));
  Result<uint32_t> v = mem.Read32(World::kNormal, 0x100);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(0xdeadbeefu, *v);
}

TEST(AddressSpaceTest, MmioRoutesToDevice) {
  AddressSpace mem(nullptr);
  ScratchDevice dev;
  ASSERT_EQ(Status::kOk, mem.MapMmio(0x4000, 0x100, &dev));
  EXPECT_EQ(0x21u, *mem.Read32(World::kNormal, 0x4020));
  ASSERT_EQ(Status::kOk, mem.Write32(World::kNormal, 0x4024, 7));
  EXPECT_EQ(0x24u, dev.last_.first);
  EXPECT_EQ(7u, dev.last_.second);
}

TEST(AddressSpaceTest, OverlappingMappingsRejected) {
  AddressSpace mem(nullptr);
  ScratchDevice dev;
  ASSERT_EQ(Status::kOk, mem.AddRam(0, 0x1000));
  EXPECT_EQ(Status::kInvalidArg, mem.AddRam(0x800, 0x1000));
  EXPECT_EQ(Status::kInvalidArg, mem.MapMmio(0xf00, 0x200, &dev));
}

TEST(AddressSpaceTest, UnalignedMmioRejected) {
  AddressSpace mem(nullptr);
  ScratchDevice dev;
  ASSERT_EQ(Status::kOk, mem.MapMmio(0x4000, 0x100, &dev));
  EXPECT_EQ(Status::kInvalidArg, mem.Read32(World::kNormal, 0x4002).status());
}

TEST(AddressSpaceTest, TzascChecksApplyToCpuAccess) {
  Tzasc tz;
  AddressSpace mem(&tz);
  ASSERT_EQ(Status::kOk, mem.AddRam(0, 0x10000));
  tz.AssignRegion(0x8000, 0x1000, World::kSecure);
  EXPECT_EQ(Status::kPermissionDenied, mem.Write32(World::kNormal, 0x8000, 1));
  EXPECT_EQ(Status::kOk, mem.Write32(World::kSecure, 0x8000, 1));
  // Bus-master (DMA) paths are not world-checked.
  uint32_t v = 0;
  EXPECT_EQ(Status::kOk, mem.DmaRead(0x8000, &v, 4));
  EXPECT_EQ(1u, v);
}

class MachineDmaTest : public ::testing::Test {
 protected:
  Machine machine_;
};

TEST_F(MachineDmaTest, MemToMemCopyViaControlBlock) {
  auto& mem = machine_.mem();
  const char* msg = "driverlets move data";
  ASSERT_EQ(Status::kOk, mem.WriteBytes(World::kNormal, 0x1000, msg, 21));
  DmaControlBlock cb{};
  cb.ti = kDmaTiSrcInc | kDmaTiDestInc | kDmaTiIntEn;
  cb.source_ad = 0x1000;
  cb.dest_ad = 0x2000;
  cb.txfr_len = 21;
  cb.nextconbk = 0;
  ASSERT_EQ(Status::kOk, mem.WriteBytes(World::kNormal, 0x3000, &cb, sizeof(cb)));
  ASSERT_EQ(Status::kOk, mem.Write32(World::kNormal, kDmaEngineBase + kDmaConblkAd, 0x3000));
  ASSERT_EQ(Status::kOk, mem.Write32(World::kNormal, kDmaEngineBase + kDmaCs, kDmaCsActive));
  machine_.clock().Advance(1000);
  char out[32] = {};
  ASSERT_EQ(Status::kOk, mem.ReadBytes(World::kNormal, 0x2000, out, 21));
  EXPECT_STREQ(msg, out);
  uint32_t cs = *mem.Read32(World::kNormal, kDmaEngineBase + kDmaCs);
  EXPECT_TRUE(cs & kDmaCsEnd);
  EXPECT_TRUE(cs & kDmaCsInt);
  EXPECT_TRUE(machine_.irq().Pending(kDmaIrqBase));
  // Clearing INT lowers the line.
  ASSERT_EQ(Status::kOk,
            mem.Write32(World::kNormal, kDmaEngineBase + kDmaCs, kDmaCsEnd | kDmaCsInt));
  EXPECT_FALSE(machine_.irq().Pending(kDmaIrqBase));
}

TEST_F(MachineDmaTest, ChainedControlBlocksAllExecute) {
  auto& mem = machine_.mem();
  for (int i = 0; i < 3; ++i) {
    uint32_t v = 0x10 + static_cast<uint32_t>(i);
    ASSERT_EQ(Status::kOk,
              mem.Write32(World::kNormal, 0x1000 + static_cast<uint64_t>(i) * 0x100, v));
    DmaControlBlock cb{};
    cb.ti = kDmaTiSrcInc | kDmaTiDestInc | ((i == 2) ? kDmaTiIntEn : 0);
    cb.source_ad = 0x1000 + static_cast<uint32_t>(i) * 0x100;
    cb.dest_ad = 0x2000 + static_cast<uint32_t>(i) * 4;
    cb.txfr_len = 4;
    cb.nextconbk = (i == 2) ? 0 : 0x3000 + (static_cast<uint32_t>(i) + 1) * 32;
    ASSERT_EQ(Status::kOk, mem.WriteBytes(World::kNormal, 0x3000 + static_cast<uint64_t>(i) * 32,
                                          &cb, sizeof(cb)));
  }
  ASSERT_EQ(Status::kOk, mem.Write32(World::kNormal, kDmaEngineBase + kDmaConblkAd, 0x3000));
  ASSERT_EQ(Status::kOk, mem.Write32(World::kNormal, kDmaEngineBase + kDmaCs, kDmaCsActive));
  machine_.clock().Advance(1000);
  EXPECT_EQ(0x10u, *mem.Read32(World::kNormal, 0x2000));
  EXPECT_EQ(0x11u, *mem.Read32(World::kNormal, 0x2004));
  EXPECT_EQ(0x12u, *mem.Read32(World::kNormal, 0x2008));
}

TEST_F(MachineDmaTest, BadControlBlockSetsError) {
  auto& mem = machine_.mem();
  DmaControlBlock cb{};
  cb.ti = kDmaTiSrcDreq | kDmaTiDestInc | kDmaTiIntEn;  // DREQ with no registered port
  cb.source_ad = 0xdead0000;
  cb.dest_ad = 0x2000;
  cb.txfr_len = 16;
  ASSERT_EQ(Status::kOk, mem.WriteBytes(World::kNormal, 0x3000, &cb, sizeof(cb)));
  ASSERT_EQ(Status::kOk, mem.Write32(World::kNormal, kDmaEngineBase + kDmaConblkAd, 0x3000));
  ASSERT_EQ(Status::kOk, mem.Write32(World::kNormal, kDmaEngineBase + kDmaCs, kDmaCsActive));
  machine_.clock().Advance(1000);
  uint32_t cs = *mem.Read32(World::kNormal, kDmaEngineBase + kDmaCs);
  EXPECT_TRUE(cs & kDmaCsError);
}

TEST(MachineTest, DeviceRegistryLookups) {
  Machine machine;
  ScratchDevice dev;
  Result<uint16_t> id = machine.AttachDevice(0x3f30'0000, 0x100, &dev);
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(machine.DeviceById(*id).ok());
  EXPECT_TRUE(machine.DeviceByName("scratch").ok());
  EXPECT_FALSE(machine.DeviceByName("missing").ok());
  EXPECT_FALSE(machine.DeviceById(200).ok());
}

}  // namespace
}  // namespace dlt
