// Unit tests for the crypto/compression substrate used by template packaging.
#include <gtest/gtest.h>

#include <cstring>
#include <random>

#include "src/crypto/crc32.h"
#include "src/crypto/hmac.h"
#include "src/crypto/lzss.h"
#include "src/crypto/sha256.h"

namespace dlt {
namespace {

TEST(Sha256Test, EmptyStringVector) {
  Sha256::Digest d = Sha256::Hash("", 0);
  EXPECT_EQ("e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
            Sha256::HexDigest(d));
}

TEST(Sha256Test, AbcVector) {
  Sha256::Digest d = Sha256::Hash("abc", 3);
  EXPECT_EQ("ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
            Sha256::HexDigest(d));
}

TEST(Sha256Test, TwoBlockVector) {
  const char* msg = "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  Sha256::Digest d = Sha256::Hash(msg, strlen(msg));
  EXPECT_EQ("248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
            Sha256::HexDigest(d));
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string data(1000, 'x');
  Sha256 h;
  for (size_t i = 0; i < data.size(); i += 37) {
    h.Update(data.data() + i, std::min<size_t>(37, data.size() - i));
  }
  EXPECT_EQ(Sha256::HexDigest(Sha256::Hash(data.data(), data.size())),
            Sha256::HexDigest(h.Finalize()));
}

TEST(Sha256Test, PaddingBoundaries) {
  // Lengths straddling the 55/56/64-byte padding boundaries.
  for (size_t n : {55u, 56u, 57u, 63u, 64u, 65u}) {
    std::string data(n, 'a');
    Sha256::Digest d1 = Sha256::Hash(data.data(), n);
    Sha256 h;
    h.Update(data.data(), n / 2);
    h.Update(data.data() + n / 2, n - n / 2);
    EXPECT_EQ(Sha256::HexDigest(d1), Sha256::HexDigest(h.Finalize())) << n;
  }
}

TEST(HmacTest, Rfc4231Case2) {
  // Key = "Jefe", data = "what do ya want for nothing?".
  Sha256::Digest d = HmacSha256("Jefe", "what do ya want for nothing?", 28);
  EXPECT_EQ("5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843",
            Sha256::HexDigest(d));
}

TEST(HmacTest, VerifyDetectsTamper) {
  std::string data = "interaction template payload";
  Sha256::Digest mac = HmacSha256("key", data.data(), data.size());
  EXPECT_TRUE(HmacVerify("key", data.data(), data.size(), mac));
  data[3] ^= 1;
  EXPECT_FALSE(HmacVerify("key", data.data(), data.size(), mac));
  data[3] ^= 1;
  EXPECT_FALSE(HmacVerify("other-key", data.data(), data.size(), mac));
}

TEST(HmacTest, LongKeysAreHashed) {
  std::string key(200, 'k');
  std::string data = "x";
  Sha256::Digest mac = HmacSha256(key, data.data(), data.size());
  EXPECT_TRUE(HmacVerify(key, data.data(), data.size(), mac));
}

TEST(Crc32Test, KnownVector) {
  // CRC32("123456789") = 0xcbf43926.
  EXPECT_EQ(0xcbf43926u, Crc32("123456789", 9));
}

TEST(Crc32Test, SeedChaining) {
  uint32_t direct = Crc32("helloworld", 10);
  uint32_t chained = Crc32("world", 5, Crc32("hello", 5));
  EXPECT_EQ(direct, chained);
}

TEST(LzssTest, EmptyInput) {
  std::vector<uint8_t> c = LzssCompress(nullptr, 0);
  Result<std::vector<uint8_t>> d = LzssDecompress(c.data(), c.size());
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->empty());
}

TEST(LzssTest, RepetitiveTextCompressesWell) {
  std::string text;
  for (int i = 0; i < 100; ++i) {
    text += "ev kind=reg_write; dev=1; off=0x34; value=0x148; loc=driver.cc:42\n";
  }
  std::vector<uint8_t> c = LzssCompress(text.data(), text.size());
  EXPECT_LT(c.size(), text.size() / 4);
  Result<std::vector<uint8_t>> d = LzssDecompress(c.data(), c.size());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(0, std::memcmp(d->data(), text.data(), text.size()));
}

TEST(LzssTest, TruncatedStreamRejected) {
  std::string text = "aaaaaaaaaaaaaaaabbbbbbbbbbbbbbbb";
  std::vector<uint8_t> c = LzssCompress(text.data(), text.size());
  Result<std::vector<uint8_t>> d = LzssDecompress(c.data(), c.size() / 2);
  EXPECT_FALSE(d.ok());
}

class LzssRoundTripTest : public ::testing::TestWithParam<std::pair<size_t, uint32_t>> {};

TEST_P(LzssRoundTripTest, RandomDataRoundTrips) {
  auto [len, seed] = GetParam();
  std::mt19937 rng(seed);
  std::vector<uint8_t> data(len);
  for (auto& b : data) {
    // Skewed distribution: produces both compressible and incompressible runs.
    b = static_cast<uint8_t>(rng() % ((seed % 2) ? 8 : 256));
  }
  std::vector<uint8_t> c = LzssCompress(data.data(), data.size());
  Result<std::vector<uint8_t>> d = LzssDecompress(c.data(), c.size());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(data, *d);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LzssRoundTripTest,
                         ::testing::Values(std::make_pair(size_t{1}, 1u),
                                           std::make_pair(size_t{7}, 2u),
                                           std::make_pair(size_t{256}, 3u),
                                           std::make_pair(size_t{4096}, 4u),
                                           std::make_pair(size_t{4097}, 5u),
                                           std::make_pair(size_t{65536}, 6u),
                                           std::make_pair(size_t{100000}, 7u),
                                           std::make_pair(size_t{12345}, 8u)));

}  // namespace
}  // namespace dlt
