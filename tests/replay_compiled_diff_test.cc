// Differential testing: the compiled replay engine must be observationally
// identical to the interpreter. For every shipped package and entry the same
// canonical request stream runs on two fresh deployments — one per engine —
// and everything visible must match: returned data buffers, replay stats
// (events, attempts, resets), the virtual-time endpoint, divergence reports,
// and telemetry (trace events pushed + replay counters). A seeded fault-matrix
// sweep then proves the equivalence holds under each {mmio, dma, irq} fault
// plane by comparing the byte-stable campaign JSON across engines.
#include <gtest/gtest.h>

#include "src/check/conformance.h"
#include "src/core/replayer.h"
#include "src/obs/telemetry.h"
#include "src/workload/fault_campaign.h"
#include "src/workload/record_campaigns.h"
#include "src/workload/rpi3_testbed.h"
#include "src/workload/deploy_util.h"

namespace dlt {
namespace {

struct RunResult {
  std::vector<Status> statuses;
  std::vector<uint8_t> out_bytes;  // all output buffers, concatenated
  uint64_t events = 0;
  uint64_t attempts = 0;
  uint64_t resets = 0;
  uint64_t end_us = 0;
  uint64_t trace_pushed = 0;
  uint64_t replay_events_metric = 0;
  DivergenceReport last_report;
};

void ExpectEqual(const RunResult& interp, const RunResult& compiled) {
  EXPECT_EQ(interp.statuses, compiled.statuses);
  EXPECT_EQ(interp.out_bytes, compiled.out_bytes);
  EXPECT_EQ(interp.events, compiled.events);
  EXPECT_EQ(interp.attempts, compiled.attempts);
  EXPECT_EQ(interp.resets, compiled.resets);
  EXPECT_EQ(interp.end_us, compiled.end_us);
  EXPECT_EQ(interp.trace_pushed, compiled.trace_pushed);
  EXPECT_EQ(interp.replay_events_metric, compiled.replay_events_metric);
  EXPECT_EQ(interp.last_report.valid, compiled.last_report.valid);
  EXPECT_EQ(interp.last_report.template_name, compiled.last_report.template_name);
  EXPECT_EQ(interp.last_report.event_index, compiled.last_report.event_index);
  EXPECT_EQ(interp.last_report.event_desc, compiled.last_report.event_desc);
  EXPECT_EQ(interp.last_report.observed, compiled.last_report.observed);
  EXPECT_EQ(interp.last_report.expected_constraint, compiled.last_report.expected_constraint);
}

// Runs |body| against a fresh deployment of |sealed| under |engine| with
// telemetry armed, collecting everything the normal world can observe.
template <typename Body>
RunResult RunEngine(const std::vector<uint8_t>& sealed, ReplayEngine engine, Body body) {
  Telemetry::Get().Enable();
  Telemetry::Get().Reset();
  TestbedOptions opts;
  opts.secure_io = true;
  opts.probe_drivers = false;
  Rpi3Testbed deploy{opts};
  Replayer replayer(&deploy.tee(), kDeveloperKey);
  EXPECT_EQ(Status::kOk, replayer.LoadPackage(sealed.data(), sealed.size()));
  replayer.set_engine(engine);

  RunResult r;
  body(&deploy, &replayer, &r);
  r.end_us = deploy.clock().now_us();
  r.trace_pushed = Telemetry::Get().ring().pushed();
  r.replay_events_metric = Telemetry::Get().metrics().counter("replay.events").value();
  r.last_report = replayer.last_report();
  Telemetry::Get().Disable();
  return r;
}

void Record(RunResult* r, const Result<ReplayStats>& res) {
  r->statuses.push_back(res.ok() ? Status::kOk : res.status());
  if (res.ok()) {
    r->events += res->events_executed;
    r->attempts += static_cast<uint64_t>(res->attempts);
    r->resets += static_cast<uint64_t>(res->resets);
  }
}

template <typename Body>
void DiffEntry(const std::vector<uint8_t>& sealed, Body body) {
  ASSERT_FALSE(sealed.empty());
  RunResult interp = RunEngine(sealed, ReplayEngine::kInterpreter, body);
  RunResult compiled = RunEngine(sealed, ReplayEngine::kCompiled, body);
  ExpectEqual(interp, compiled);
  EXPECT_GT(interp.events, 0u);
}

// Block-class stream (MMC and USB share the entry shape): writes and reads at
// several granularities, the read-back bytes are the observable output.
void BlockStream(const char* entry, Rpi3Testbed*, Replayer* rep, RunResult* r) {
  for (uint64_t blkcnt : {1ull, 8ull, 32ull}) {
    std::vector<uint8_t> wr = PatternBuf(blkcnt * 512, blkcnt);
    ReplayArgs wargs;
    wargs.scalars = {{"rw", kMmcRwWrite}, {"blkcnt", blkcnt}, {"blkid", 2048}, {"flag", 0}};
    wargs.buffers["buf"] = BufferView{wr.data(), wr.size()};
    Record(r, rep->Invoke(entry, wargs));

    std::vector<uint8_t> rd(blkcnt * 512, 0);
    ReplayArgs rargs;
    rargs.scalars = {{"rw", kMmcRwRead}, {"blkcnt", blkcnt}, {"blkid", 2048}, {"flag", 0}};
    rargs.buffers["buf"] = BufferView{rd.data(), rd.size()};
    Record(r, rep->Invoke(entry, rargs));
    r->out_bytes.insert(r->out_bytes.end(), rd.begin(), rd.end());
  }
}

TEST(ReplayCompiledDiffTest, MmcEntryMatchesInterpreter) {
  Rpi3Testbed dev{TestbedOptions{}};
  Result<RecordCampaign> c = RecordMmcCampaign(&dev);
  ASSERT_TRUE(c.ok());
  DiffEntry(c->Seal(PackageFormat::kText, kDeveloperKey),
            [](Rpi3Testbed* tb, Replayer* rep, RunResult* r) {
              BlockStream(kMmcEntry, tb, rep, r);
            });
}

TEST(ReplayCompiledDiffTest, UsbEntryMatchesInterpreter) {
  Rpi3Testbed dev{TestbedOptions{}};
  Result<RecordCampaign> c = RecordUsbCampaign(&dev);
  ASSERT_TRUE(c.ok());
  DiffEntry(c->Seal(PackageFormat::kText, kDeveloperKey),
            [](Rpi3Testbed* tb, Replayer* rep, RunResult* r) {
              BlockStream(kUsbEntry, tb, rep, r);
            });
}

TEST(ReplayCompiledDiffTest, CameraEntryMatchesInterpreter) {
  Rpi3Testbed dev{TestbedOptions{}};
  Result<RecordCampaign> c = RecordCameraCampaign(&dev);
  ASSERT_TRUE(c.ok());
  DiffEntry(c->Seal(PackageFormat::kText, kDeveloperKey),
            [](Rpi3Testbed*, Replayer* rep, RunResult* r) {
              for (int i = 0; i < 2; ++i) {
                std::vector<uint8_t> buf(Vc4Firmware::FrameBytes(1440) + 4096, 0);
                std::vector<uint8_t> img_size(4, 0);
                ReplayArgs args;
                args.scalars = {{"frame", 1}, {"resolution", 720}, {"buf_size", buf.size()}};
                args.buffers["buf"] = BufferView{buf.data(), buf.size()};
                args.buffers["img_size"] = BufferView{img_size.data(), img_size.size()};
                Record(r, rep->Invoke(kCameraEntry, args));
                r->out_bytes.insert(r->out_bytes.end(), buf.begin(), buf.end());
                r->out_bytes.insert(r->out_bytes.end(), img_size.begin(), img_size.end());
              }
            });
}

TEST(ReplayCompiledDiffTest, DisplayEntryMatchesInterpreter) {
  Rpi3Testbed dev{TestbedOptions{}};
  Result<RecordCampaign> c = RecordDisplayCampaign(&dev);
  ASSERT_TRUE(c.ok());
  DiffEntry(c->Seal(PackageFormat::kText, kDeveloperKey),
            [](Rpi3Testbed*, Replayer* rep, RunResult* r) {
              std::vector<uint8_t> bitmap = PatternBuf(64 * 64 * 4, 9);
              ReplayArgs args;
              args.scalars = {{"x", 3}, {"y", 5}, {"w", 64}, {"h", 64}};
              args.buffers["buf"] = BufferView{bitmap.data(), bitmap.size()};
              Record(r, rep->Invoke(kDisplayEntry, args));
            });
}

TEST(ReplayCompiledDiffTest, TouchEntryMatchesInterpreter) {
  Rpi3Testbed dev{TestbedOptions{}};
  Result<RecordCampaign> c = RecordTouchCampaign(&dev);
  ASSERT_TRUE(c.ok());
  DiffEntry(c->Seal(PackageFormat::kText, kDeveloperKey),
            [](Rpi3Testbed* tb, Replayer* rep, RunResult* r) {
              tb->touch().InjectTouch(100, 100, 1'000);
              std::vector<uint8_t> evt(4, 0);
              ReplayArgs args;
              args.buffers["evt"] = BufferView{evt.data(), evt.size()};
              Record(r, rep->Invoke(kTouchEntry, args));
              r->out_bytes.insert(r->out_bytes.end(), evt.begin(), evt.end());
            });
}

// The oracle must hold beyond the hand-written gold campaigns: ten seeded
// generator-backed templates (register traffic, polls, shm word runs, DMA
// descriptor chains, IRQ waits, random operand expressions) go through the
// conformance harness's engine-parity invariant, which compares every
// normal-world observable between interpreter and compiled runs.
TEST(ReplayCompiledDiffTest, GeneratedTemplatesMatchInterpreter) {
  for (uint64_t seed = 201; seed <= 210; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ConformanceOutcome out = RunConformance(GenerateCase(seed), {"engine-parity"});
    for (const ConformanceFailure& f : out.failures) {
      ADD_FAILURE() << f.invariant << ": " << f.detail;
    }
  }
}

// The equivalence must survive injected faults: the same seeded fault-matrix
// campaign (every {mmio, dma, irq} plane x {mmc, usb, camera} x seed, with
// divergences, retries, resets and quarantines in play) must serialize to the
// exact same bytes under both engines — FaultMatrixToJson carries no engine
// field, so any behavioral difference shows up as a diff.
TEST(ReplayCompiledDiffTest, FaultMatrixIdenticalAcrossEngines) {
  FaultMatrixConfig cfg;
  cfg.seeds = {1, 2};
  cfg.ops_per_cell = 3;

  cfg.use_compiled = false;
  std::string interp_json = FaultMatrixToJson(RunFaultMatrix(cfg));
  cfg.use_compiled = true;
  std::string compiled_json = FaultMatrixToJson(RunFaultMatrix(cfg));
  EXPECT_EQ(interp_json, compiled_json);

  // Sanity: the sweep actually injected faults and exercised recovery.
  EXPECT_NE(std::string::npos, interp_json.find("\"faults_injected\""));
}

}  // namespace
}  // namespace dlt
