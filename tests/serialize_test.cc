// Template serialization (text + binary) and signed-package tests.
#include <gtest/gtest.h>

#include "src/core/package.h"
#include "src/core/serialize_binary.h"
#include "src/core/serialize_text.h"

namespace dlt {
namespace {

InteractionTemplate SampleTemplate() {
  InteractionTemplate t;
  t.name = "RD_8";
  t.entry = "replay_mmc";
  t.primary_device = 1;
  t.params = {{"rw", false}, {"blkcnt", false}, {"blkid", false}, {"buf", true}};
  t.initial.AddAtom(CmpEq(TValue::Input("rw", 1), TValue(1)));
  t.initial.AddAtom(CmpLe(TValue::Input("blkcnt", 8) * TValue(512), TValue(4096)));

  TemplateEvent w;
  w.kind = EventKind::kRegWrite;
  w.device = 1;
  w.reg_off = 0x50;
  w.value = Expr::Input("blkcnt");
  w.file = "driver.cc";
  w.line = 42;
  t.events.push_back(w);

  TemplateEvent alloc;
  alloc.kind = EventKind::kDmaAlloc;
  alloc.bind = "dma0";
  alloc.value = Expr::Const(4096);
  alloc.state_changing = true;
  t.events.push_back(alloc);

  TemplateEvent shmw;
  shmw.kind = EventKind::kShmWrite;
  shmw.addr = Expr::Binary(ExprOp::kAdd, Expr::Input("dma0"), Expr::Const(8));
  shmw.value = Expr::Binary(ExprOp::kAnd, Expr::Input("blkid"), Expr::Const(~7ull));
  t.events.push_back(shmw);

  TemplateEvent rd;
  rd.kind = EventKind::kRegRead;
  rd.device = 1;
  rd.reg_off = 0x20;
  rd.bind = "din0";
  rd.state_changing = true;
  rd.constraint.AddAtom(ConstraintAtom{
      Expr::Binary(ExprOp::kAnd, Expr::Input("din0"), Expr::Const(0x200)), Cmp::kEq,
      Expr::Const(0x200)});
  t.events.push_back(rd);

  TemplateEvent irq;
  irq.kind = EventKind::kWaitIrq;
  irq.irq_line = 56;
  irq.timeout_us = 1'000'000;
  irq.state_changing = true;
  t.events.push_back(irq);

  TemplateEvent poll;
  poll.kind = EventKind::kPollReg;
  poll.device = 1;
  poll.reg_off = 0x00;
  poll.mask = 0x8000;
  poll.want = 0;
  poll.poll_cmp = Cmp::kEq;
  poll.timeout_us = 200'000;
  poll.interval_us = 10;
  poll.recorded_iters = 9;
  poll.state_changing = true;
  TemplateEvent body;
  body.kind = EventKind::kDelay;
  body.value = Expr::Const(10);
  poll.body.push_back(body);
  t.events.push_back(poll);

  TemplateEvent copy;
  copy.kind = EventKind::kCopyFromDma;
  copy.addr = Expr::Input("dma0");
  copy.buffer = "buf";
  copy.buf_offset = Expr::Const(0);
  copy.value = Expr::Binary(ExprOp::kMul, Expr::Input("blkcnt"), Expr::Const(512));
  t.events.push_back(copy);
  return t;
}

void ExpectSame(const InteractionTemplate& a, const InteractionTemplate& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.entry, b.entry);
  EXPECT_EQ(a.primary_device, b.primary_device);
  ASSERT_EQ(a.params.size(), b.params.size());
  for (size_t i = 0; i < a.params.size(); ++i) {
    EXPECT_EQ(a.params[i].name, b.params[i].name);
    EXPECT_EQ(a.params[i].is_buffer, b.params[i].is_buffer);
  }
  EXPECT_EQ(a.initial.ToString(), b.initial.ToString());
  EXPECT_TRUE(SameStateTransition(a.events, b.events));
  // Also the non-structural fields the transition comparison ignores.
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].timeout_us, b.events[i].timeout_us) << i;
    EXPECT_EQ(a.events[i].interval_us, b.events[i].interval_us) << i;
    EXPECT_EQ(a.events[i].recorded_iters, b.events[i].recorded_iters) << i;
    EXPECT_EQ(a.events[i].file, b.events[i].file) << i;
    EXPECT_EQ(a.events[i].line, b.events[i].line) << i;
    EXPECT_EQ(a.events[i].bind, b.events[i].bind) << i;
  }
}

TEST(SerializeTextTest, RoundTrip) {
  InteractionTemplate t = SampleTemplate();
  std::string text = TemplateToText(t);
  Result<std::vector<InteractionTemplate>> parsed = TemplatesFromText(text);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(1u, parsed->size());
  ExpectSame(t, (*parsed)[0]);
}

TEST(SerializeTextTest, MultipleTemplates) {
  InteractionTemplate a = SampleTemplate();
  InteractionTemplate b = SampleTemplate();
  b.name = "WR_8";
  std::string text = TemplatesToText({a, b});
  Result<std::vector<InteractionTemplate>> parsed = TemplatesFromText(text);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(2u, parsed->size());
  EXPECT_EQ("RD_8", (*parsed)[0].name);
  EXPECT_EQ("WR_8", (*parsed)[1].name);
}

TEST(SerializeTextTest, CommentsAndBlankLinesIgnored) {
  std::string text = "# a driverlet\n\n" + TemplateToText(SampleTemplate());
  EXPECT_TRUE(TemplatesFromText(text).ok());
}

TEST(SerializeTextTest, GarbageRejected) {
  EXPECT_FALSE(TemplatesFromText("template X\nbogus line\nendtemplate\n").ok());
  EXPECT_FALSE(TemplatesFromText("ev kind=reg_read\n").ok());
  // Missing endtemplate.
  std::string text = TemplateToText(SampleTemplate());
  text = text.substr(0, text.size() - 12);
  EXPECT_FALSE(TemplatesFromText(text).ok());
}

TEST(SerializeBinaryTest, RoundTrip) {
  InteractionTemplate t = SampleTemplate();
  std::vector<uint8_t> bin = TemplatesToBinary({t});
  Result<std::vector<InteractionTemplate>> parsed = TemplatesFromBinary(bin.data(), bin.size());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(1u, parsed->size());
  ExpectSame(t, (*parsed)[0]);
}

TEST(SerializeBinaryTest, BinaryIsSmallerThanText) {
  InteractionTemplate t = SampleTemplate();
  std::string text = TemplatesToText({t});
  std::vector<uint8_t> bin = TemplatesToBinary({t});
  EXPECT_LT(bin.size(), text.size());
}

TEST(SerializeBinaryTest, CorruptionRejected) {
  std::vector<uint8_t> bin = TemplatesToBinary({SampleTemplate()});
  // Truncations must never crash or succeed wrongly.
  for (size_t cut : {size_t{3}, size_t{10}, bin.size() / 2, bin.size() - 1}) {
    EXPECT_FALSE(TemplatesFromBinary(bin.data(), cut).ok()) << cut;
  }
  std::vector<uint8_t> bad = bin;
  bad[0] ^= 0xff;
  EXPECT_FALSE(TemplatesFromBinary(bad.data(), bad.size()).ok());
}

TEST(PackageTest, SealOpenRoundTrip) {
  DriverletPackage pkg;
  pkg.driverlet = "mmc";
  pkg.templates = {SampleTemplate()};
  PackageSizes sizes;
  std::vector<uint8_t> sealed = SealPackage(pkg, PackageFormat::kText, "key", &sizes);
  EXPECT_GT(sizes.serialized, 0u);
  EXPECT_GT(sizes.compressed, 0u);
  EXPECT_EQ(sizes.sealed, sealed.size());
  Result<DriverletPackage> opened = OpenPackage(sealed.data(), sealed.size(), "key");
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ("mmc", opened->driverlet);
  ASSERT_EQ(1u, opened->templates.size());
  ExpectSame(pkg.templates[0], opened->templates[0]);
}

TEST(PackageTest, SignatureTamperRejected) {
  DriverletPackage pkg;
  pkg.driverlet = "mmc";
  pkg.templates = {SampleTemplate()};
  std::vector<uint8_t> sealed = SealPackage(pkg, PackageFormat::kBinary, "key");
  // Flip one payload bit: fabricated templates must not verify (paper §7.2.2).
  std::vector<uint8_t> bad = sealed;
  bad[sealed.size() / 2] ^= 1;
  EXPECT_EQ(Status::kCorrupt, OpenPackage(bad.data(), bad.size(), "key").status());
  // Wrong key.
  EXPECT_EQ(Status::kCorrupt, OpenPackage(sealed.data(), sealed.size(), "evil").status());
  // Truncation.
  EXPECT_FALSE(OpenPackage(sealed.data(), sealed.size() - 5, "key").ok());
}

}  // namespace
}  // namespace dlt
