// MiniDb (the SQLite stand-in) and kernel block-layer tests.
#include <gtest/gtest.h>

#include "src/workload/minidb.h"
#include "src/workload/rpi3_testbed.h"
#include "src/workload/sqlite_scripts.h"
#include "src/workload/deploy_util.h"

namespace dlt {
namespace {

TEST(MiniDbTest, InsertLookupRoundTrip) {
  MemBlockDevice dev(1 << 20);
  MiniDb db(&dev);
  ASSERT_EQ(Status::kOk, db.Open());
  std::string payload = "hello records";
  ASSERT_EQ(Status::kOk, db.Insert(42, payload.data(), payload.size()));
  ASSERT_EQ(Status::kOk, db.Commit());
  Result<std::vector<uint8_t>> got = db.Lookup(42);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(payload, std::string(got->begin(), got->end()));
  EXPECT_FALSE(db.Lookup(43).ok());
}

TEST(MiniDbTest, ManyRowsSpanPages) {
  MemBlockDevice dev(1 << 20);
  MiniDb db(&dev);
  ASSERT_EQ(Status::kOk, db.Open());
  ASSERT_EQ(Status::kOk, PopulateDb(&db, 500, 7));
  EXPECT_EQ(500u, db.row_count());
  for (uint64_t key : {1ull, 250ull, 500ull}) {
    Result<std::vector<uint8_t>> got = db.Lookup(key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(100u, got->size());
  }
  Result<size_t> n = db.Scan(100, 199);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(100u, *n);
}

TEST(MiniDbTest, DeleteRemovesRow) {
  MemBlockDevice dev(1 << 20);
  MiniDb db(&dev);
  ASSERT_EQ(Status::kOk, db.Open());
  ASSERT_EQ(Status::kOk, PopulateDb(&db, 50, 3));
  ASSERT_EQ(Status::kOk, db.Delete(25));
  ASSERT_EQ(Status::kOk, db.Commit());
  EXPECT_FALSE(db.Lookup(25).ok());
  EXPECT_EQ(49u, db.row_count());
  Result<size_t> n = db.Scan(1, 50);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(49u, *n);
}

TEST(MiniDbTest, UpdateInPlaceAndResize) {
  MemBlockDevice dev(1 << 20);
  MiniDb db(&dev);
  ASSERT_EQ(Status::kOk, db.Open());
  std::string a = "0123456789";
  ASSERT_EQ(Status::kOk, db.Insert(7, a.data(), a.size()));
  std::string b = "abcdefghij";  // same length: in-place
  ASSERT_EQ(Status::kOk, db.Update(7, b.data(), b.size()));
  Result<std::vector<uint8_t>> got = db.Lookup(7);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(b, std::string(got->begin(), got->end()));
  std::string c = "resized payload";  // different length: delete + reinsert
  ASSERT_EQ(Status::kOk, db.Update(7, c.data(), c.size()));
  got = db.Lookup(7);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(c, std::string(got->begin(), got->end()));
  ASSERT_EQ(Status::kOk, db.Commit());
}

TEST(MiniDbTest, PersistsAcrossReopen) {
  MemBlockDevice dev(1 << 20);
  {
    MiniDb db(&dev);
    ASSERT_EQ(Status::kOk, db.Open());
    std::string payload = "durable";
    ASSERT_EQ(Status::kOk, db.Insert(9, payload.data(), payload.size()));
    ASSERT_EQ(Status::kOk, db.Commit());
  }
  MiniDb db2(&dev);
  ASSERT_EQ(Status::kOk, db2.Open());
  EXPECT_EQ(1u, db2.row_count());
  Result<std::vector<uint8_t>> got = db2.Lookup(9);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ("durable", std::string(got->begin(), got->end()));
}

TEST(MiniDbTest, CommitWritesJournalBeforeData) {
  MemBlockDevice dev(1 << 20);
  CountingBlockDevice counter(&dev);
  MiniDb db(&counter);
  ASSERT_EQ(Status::kOk, db.Open());
  uint64_t writes_before = counter.writes();
  std::string payload = "journaled";
  ASSERT_EQ(Status::kOk, db.Insert(1, payload.data(), payload.size()));
  ASSERT_EQ(Status::kOk, db.Commit());
  // At least: journal header + pre-images + data pages + header clear.
  EXPECT_GE(counter.writes() - writes_before, 4u);
}

class SqliteScriptTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SqliteScriptTest, RunsCleanlyOnMemoryDevice) {
  MemBlockDevice dev(1 << 20);
  CountingBlockDevice counter(&dev);
  MiniDb db(&counter);
  SimClock clock;
  ASSERT_EQ(Status::kOk, db.Open());
  ASSERT_EQ(Status::kOk, PopulateDb(&db, 600, 11));
  Result<ScriptResult> r = RunSqliteScript(GetParam(), &db, &counter, &clock, 30, 99);
  ASSERT_TRUE(r.ok()) << StatusName(r.status());
  EXPECT_EQ(30u, r->queries);
  EXPECT_GT(r->reads + r->writes, 0u);
  // The script read/write mixes must be ordered like Table 9: select scripts
  // read-most, insert3 write-most.
  if (GetParam() == "select3" || GetParam() == "indexedby") {
    EXPECT_EQ(0u, r->writes);
  }
  if (GetParam() == "insert3") {
    EXPECT_GT(r->writes, r->reads);
  }
}

INSTANTIATE_TEST_SUITE_P(AllScripts, SqliteScriptTest,
                         ::testing::ValuesIn(SqliteScriptNames()));

TEST(PageCacheTest, WritebackDefersDeviceWrites) {
  Rpi3Testbed tb{TestbedOptions{}};
  PageCacheBlockDevice cache(&tb.mmc_driver(), &tb.machine(),
                             PageCacheBlockDevice::SyncMode::kWriteback);
  std::vector<uint8_t> data = PatternBuf(8 * 512, 1);
  ASSERT_EQ(Status::kOk, cache.Write(0, 8, data.data()));
  EXPECT_EQ(0u, tb.sd_medium().sectors_written());  // still in the cache
  ASSERT_EQ(Status::kOk, cache.Flush());
  EXPECT_EQ(8u, tb.sd_medium().sectors_written());
}

TEST(PageCacheTest, SyncModeWritesThrough) {
  Rpi3Testbed tb{TestbedOptions{}};
  PageCacheBlockDevice cache(&tb.mmc_driver(), &tb.machine(),
                             PageCacheBlockDevice::SyncMode::kSync);
  std::vector<uint8_t> data = PatternBuf(8 * 512, 2);
  ASSERT_EQ(Status::kOk, cache.Write(0, 8, data.data()));
  EXPECT_EQ(8u, tb.sd_medium().sectors_written());
}

TEST(PageCacheTest, MergesAdjacentDirtyExtentsOnFlush) {
  Rpi3Testbed tb{TestbedOptions{}};
  PageCacheBlockDevice cache(&tb.mmc_driver(), &tb.machine(),
                             PageCacheBlockDevice::SyncMode::kWriteback);
  std::vector<uint8_t> data = PatternBuf(8 * 512, 3);
  // 16 adjacent extents + 1 distant: must merge into few device requests.
  for (uint64_t i = 0; i < 16; ++i) {
    ASSERT_EQ(Status::kOk, cache.Write(i * 8, 8, data.data()));
  }
  ASSERT_EQ(Status::kOk, cache.Write(4096, 8, data.data()));
  uint64_t before = tb.mmc_driver().transfers();
  ASSERT_EQ(Status::kOk, cache.Flush());
  uint64_t requests = tb.mmc_driver().transfers() - before;
  EXPECT_LE(requests, 2u);  // one merged 128-block write + one distant extent
}

TEST(PageCacheTest, ReadsHitCacheAfterMiss) {
  Rpi3Testbed tb{TestbedOptions{}};
  PageCacheBlockDevice cache(&tb.mmc_driver(), &tb.machine(),
                             PageCacheBlockDevice::SyncMode::kWriteback);
  std::vector<uint8_t> out(8 * 512);
  ASSERT_EQ(Status::kOk, cache.Read(0, 8, out.data()));
  ASSERT_EQ(Status::kOk, cache.Read(0, 8, out.data()));
  EXPECT_EQ(1u, cache.cache_misses());
  EXPECT_GE(cache.cache_hits(), 1u);
}

TEST(PageCacheTest, PartialWriteDoesReadModifyWrite) {
  Rpi3Testbed tb{TestbedOptions{}};
  // Seed the medium directly.
  std::vector<uint8_t> seed = PatternBuf(8 * 512, 9);
  ASSERT_EQ(Status::kOk, tb.sd_medium().Write(0, 8, seed.data()));
  PageCacheBlockDevice cache(&tb.mmc_driver(), &tb.machine(),
                             PageCacheBlockDevice::SyncMode::kSync);
  std::vector<uint8_t> two = PatternBuf(2 * 512, 4);
  ASSERT_EQ(Status::kOk, cache.Write(2, 2, two.data()));
  std::vector<uint8_t> out(8 * 512);
  ASSERT_EQ(Status::kOk, tb.sd_medium().Read(0, 8, out.data()));
  EXPECT_TRUE(std::equal(seed.begin(), seed.begin() + 1024, out.begin()));
  EXPECT_TRUE(std::equal(two.begin(), two.end(), out.begin() + 1024));
  EXPECT_TRUE(std::equal(seed.begin() + 2048, seed.end(), out.begin() + 2048));
}

}  // namespace
}  // namespace dlt
