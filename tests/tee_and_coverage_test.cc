// SecureWorld runtime, CMA pool, coverage computation and region-validation
// unit tests.
#include <gtest/gtest.h>

#include "src/core/coverage.h"
#include "src/core/differ.h"
#include "src/kern/cma_pool.h"
#include "src/workload/rpi3_testbed.h"

namespace dlt {
namespace {

TEST(CmaPoolTest, AlignedBumpAllocation) {
  CmaPool pool(0x10000, 0x100000);
  Result<PhysAddr> a = pool.Alloc(100);
  Result<PhysAddr> b = pool.Alloc(100);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(0u, *a & 0x3fff);  // 16 KB aligned (VCHIQ MBOX requirement)
  EXPECT_EQ(0u, *b & 0x3fff);
  EXPECT_NE(*a, *b);
  EXPECT_TRUE(pool.Contains(*a, 100));
  EXPECT_FALSE(pool.Contains(0x10000 + 0x100000, 1));
}

TEST(CmaPoolTest, ExhaustionAndRelease) {
  CmaPool pool(0x4000, 0x8000);  // room for two 16 KB-aligned allocations
  ASSERT_TRUE(pool.Alloc(0x4000).ok());
  ASSERT_TRUE(pool.Alloc(0x1000).ok());
  EXPECT_FALSE(pool.Alloc(0x4000).ok());
  pool.ReleaseAll();
  EXPECT_TRUE(pool.Alloc(0x4000).ok());
}

TEST(CmaPoolTest, ZeroSizeRejected) {
  CmaPool pool(0x4000, 0x8000);
  EXPECT_FALSE(pool.Alloc(0).ok());
}

class SecureWorldTest : public ::testing::Test {
 protected:
  SecureWorldTest() : tb_(TestbedOptions{.secure_io = true, .probe_drivers = false}) {}
  Rpi3Testbed tb_;
};

TEST_F(SecureWorldTest, RegisterAccessRequiresMapping) {
  // The display device is mapped; an unmapped id is refused even in-TEE.
  EXPECT_TRUE(tb_.tee().RegRead32(tb_.mmc_id(), 0x20).ok());
  EXPECT_EQ(Status::kPermissionDenied, tb_.tee().RegRead32(99, 0).status());
  EXPECT_EQ(Status::kOutOfRange, tb_.tee().RegRead32(tb_.mmc_id(), 0x10000).status());
}

TEST_F(SecureWorldTest, MemAccessConfinedToPool) {
  Result<PhysAddr> a = tb_.tee().DmaAlloc(64);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(Status::kOk, tb_.tee().MemWrite32(*a, 0x1122));
  EXPECT_EQ(0x1122u, *tb_.tee().MemRead32(*a));
  // Outside the TEE reservation: refused.
  EXPECT_EQ(Status::kPermissionDenied, tb_.tee().MemWrite32(0x100, 1));
  EXPECT_EQ(Status::kPermissionDenied, tb_.tee().MemRead32(kKernPoolBase).status());
}

TEST_F(SecureWorldTest, TimestampsFollowVirtualClock) {
  uint64_t t0 = tb_.tee().TimestampUs();
  tb_.tee().DelayUs(123);
  EXPECT_EQ(t0 + 123, tb_.tee().TimestampUs());
}

TEST_F(SecureWorldTest, RngIsDeterministicPerSeedButNonConstant) {
  uint32_t a = *tb_.tee().RandomU32();
  uint32_t b = *tb_.tee().RandomU32();
  EXPECT_NE(a, b);
}

TEST_F(SecureWorldTest, SoftResetChargesTimeAndResets) {
  uint64_t t0 = tb_.clock().now_us();
  ASSERT_EQ(Status::kOk, tb_.tee().SoftResetDevice(tb_.mmc_id()));
  EXPECT_GT(tb_.clock().now_us(), t0);
  EXPECT_EQ(Status::kPermissionDenied, tb_.tee().SoftResetDevice(99));
}

TEST(CoverageTest, AffineConstraintsSolved) {
  InteractionTemplate t;
  t.entry = "e";
  t.params = {{"blkcnt", false}};
  // (blkcnt * 512) - 0x3000 > 0x1000 && (blkcnt * 512) - 0x4000 <= 0x1000
  t.initial.AddAtom(ConstraintAtom{
      Expr::Binary(ExprOp::kSub, Expr::Binary(ExprOp::kMul, Expr::Input("blkcnt"),
                                              Expr::Const(512)),
                   Expr::Const(0x3000)),
      Cmp::kGt, Expr::Const(0x1000)});
  t.initial.AddAtom(ConstraintAtom{
      Expr::Binary(ExprOp::kSub, Expr::Binary(ExprOp::kMul, Expr::Input("blkcnt"),
                                              Expr::Const(512)),
                   Expr::Const(0x4000)),
      Cmp::kLe, Expr::Const(0x1000)});
  Coverage cov = ComputeCoverage({t});
  EXPECT_FALSE(Covers(cov, "blkcnt", 32));
  EXPECT_TRUE(Covers(cov, "blkcnt", 33));
  EXPECT_TRUE(Covers(cov, "blkcnt", 40));
  EXPECT_FALSE(Covers(cov, "blkcnt", 41));
}

TEST(CoverageTest, UnionAcrossTemplatesMerges) {
  auto make = [](uint64_t lo, uint64_t hi) {
    InteractionTemplate t;
    t.entry = "e";
    t.params = {{"n", false}};
    t.initial.AddAtom(ConstraintAtom{Expr::Input("n"), Cmp::kGe, Expr::Const(lo)});
    t.initial.AddAtom(ConstraintAtom{Expr::Input("n"), Cmp::kLe, Expr::Const(hi)});
    return t;
  };
  Coverage cov = ComputeCoverage({make(1, 4), make(5, 8), make(20, 30)});
  // [1,4] and [5,8] are adjacent: merged into [1,8].
  ASSERT_EQ(2u, cov["n"].ranges.size());
  EXPECT_EQ(1u, cov["n"].ranges[0].lo);
  EXPECT_EQ(8u, cov["n"].ranges[0].hi);
  EXPECT_TRUE(Covers(cov, "n", 7));
  EXPECT_FALSE(Covers(cov, "n", 12));
  EXPECT_TRUE(Covers(cov, "n", 25));
}

TEST(CoverageTest, ShiftExpressionsSolved) {
  InteractionTemplate t;
  t.entry = "e";
  t.params = {{"n", false}};
  // (n << 9) <= 0x1000  ->  n <= 8
  t.initial.AddAtom(ConstraintAtom{
      Expr::Binary(ExprOp::kShl, Expr::Input("n"), Expr::Const(9)), Cmp::kLe,
      Expr::Const(0x1000)});
  Coverage cov = ComputeCoverage({t});
  EXPECT_TRUE(Covers(cov, "n", 8));
  EXPECT_FALSE(Covers(cov, "n", 9));
}

TEST(CoverageTest, NonAffineAtomsAreConservative) {
  InteractionTemplate t;
  t.entry = "e";
  t.params = {{"n", false}};
  t.initial.AddAtom(ConstraintAtom{
      Expr::Binary(ExprOp::kAnd, Expr::Input("n"), Expr::Const(7)), Cmp::kEq, Expr::Const(0)});
  Coverage cov = ComputeCoverage({t});
  // Alignment is not interval-representable: reported as unconstrained
  // (selection still enforces it through full constraint evaluation).
  EXPECT_TRUE(Covers(cov, "n", 3));
}

TEST(RegionValidationTest, DetectsBothKindsOfViolation) {
  // A scripted probe: path depends on whether n <= 4.
  TransitionProbe probe = [](const Bindings& b) -> Result<std::string> {
    return std::string(b.at("n") <= 4 ? "small" : "large");
  };
  Bindings recorded{{"n", 3}};
  RegionValidation good = ValidateTransitionRegion(
      probe, recorded, {{{"n", 1}}, {{"n", 4}}}, {{{"n", 5}}, {{"n", 100}}});
  EXPECT_TRUE(good.ok());

  RegionValidation bad_in = ValidateTransitionRegion(probe, recorded, {{{"n", 9}}}, {});
  EXPECT_FALSE(bad_in.ok());
  EXPECT_EQ(1u, bad_in.violations.size());

  RegionValidation bad_out = ValidateTransitionRegion(probe, recorded, {}, {{{"n", 2}}});
  EXPECT_FALSE(bad_out.ok());
}

}  // namespace
}  // namespace dlt
