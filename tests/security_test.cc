// Security tests (paper §7.2.2): TZASC isolation, package signatures, the
// replayer's pervasive boundary checks, and TEE device-mapping policy.
#include <gtest/gtest.h>

#include "src/core/replayer.h"
#include "src/core/serialize_text.h"
#include "src/workload/record_campaigns.h"
#include "src/workload/rpi3_testbed.h"
#include "src/workload/deploy_util.h"

namespace dlt {
namespace {

class SecurityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rpi3Testbed dev{TestbedOptions{}};
    Result<RecordCampaign> campaign = RecordMmcCampaign(&dev);
    ASSERT_TRUE(campaign.ok());
    pkg_ = new DriverletPackage(campaign->MakePackage());
    sealed_ = new std::vector<uint8_t>(campaign->Seal(PackageFormat::kText, kDeveloperKey));
  }
  static void TearDownTestSuite() {
    delete pkg_;
    delete sealed_;
  }

  void SetUp() override {
    TestbedOptions opts;
    opts.secure_io = true;
    opts.probe_drivers = false;
    deploy_ = std::make_unique<Rpi3Testbed>(opts);
  }

  static DriverletPackage* pkg_;
  static std::vector<uint8_t>* sealed_;
  std::unique_ptr<Rpi3Testbed> deploy_;
};

DriverletPackage* SecurityTest::pkg_ = nullptr;
std::vector<uint8_t>* SecurityTest::sealed_ = nullptr;

TEST_F(SecurityTest, NormalWorldDeniedOnAllSecureDevices) {
  auto& mem = deploy_->machine().mem();
  for (PhysAddr base : {kMmcBase, kUsbBase, kMailboxBase, kDmaEngineBase}) {
    EXPECT_EQ(Status::kPermissionDenied, mem.Read32(World::kNormal, base).status()) << base;
    EXPECT_EQ(Status::kPermissionDenied, mem.Write32(World::kNormal, base, 0)) << base;
  }
  // TEE RAM reservation is also closed to the normal world.
  EXPECT_EQ(Status::kPermissionDenied, mem.Read32(World::kNormal, kTeePoolBase).status());
}

TEST_F(SecurityTest, TamperedPackageRefusedBeforeUse) {
  // "It verifies recording integrity by developers' signatures prior to use".
  std::vector<uint8_t> bad = *sealed_;
  bad[bad.size() / 3] ^= 0x40;
  Replayer replayer(&deploy_->tee(), kDeveloperKey);
  EXPECT_EQ(Status::kCorrupt, replayer.LoadPackage(bad.data(), bad.size()));
  EXPECT_TRUE(replayer.templates().empty());
}

TEST_F(SecurityTest, WrongSigningKeyRefused) {
  Replayer replayer(&deploy_->tee(), "attacker-key");
  EXPECT_EQ(Status::kCorrupt, replayer.LoadPackage(sealed_->data(), sealed_->size()));
}

TEST_F(SecurityTest, FabricatedTemplateWithWildAddressIsBlocked) {
  // An adversary who could somehow inject a template pointing shared-memory
  // events outside the run's own DMA allocations is stopped by the executor's
  // boundary checks (paper §5, "pervasive boundary checks").
  DriverletPackage evil = *pkg_;
  for (auto& t : evil.templates) {
    for (auto& e : t.events) {
      if (e.kind == EventKind::kShmWrite) {
        e.addr = Expr::Const(0x100);  // normal-world RAM, outside the TEE pool
      }
    }
  }
  Replayer replayer(&deploy_->tee(), kDeveloperKey);
  ASSERT_EQ(Status::kOk, replayer.LoadPackage(evil));
  std::vector<uint8_t> buf(8 * 512, 0);
  ReplayArgs args;
  args.scalars = {{"rw", kMmcRwRead}, {"blkcnt", 8}, {"blkid", 0}, {"flag", 0}};
  args.buffers["buf"] = BufferView{buf.data(), buf.size()};
  Result<ReplayStats> r = replayer.Invoke(kMmcEntry, args);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(Status::kPermissionDenied, r.status());
}

TEST_F(SecurityTest, OversizedCopyIntoTrustletBufferIsBlocked) {
  // A template whose copy length exceeds the trustlet buffer must be rejected
  // by the buffer boundary check, not overflow the trustlet.
  DriverletPackage evil = *pkg_;
  for (auto& t : evil.templates) {
    for (auto& e : t.events) {
      if (e.kind == EventKind::kCopyFromDma) {
        e.value = Expr::Const(1 << 20);  // 1 MB into a 4 KB buffer
      }
    }
  }
  Replayer replayer(&deploy_->tee(), kDeveloperKey);
  ASSERT_EQ(Status::kOk, replayer.LoadPackage(evil));
  std::vector<uint8_t> buf(8 * 512, 0);
  ReplayArgs args;
  args.scalars = {{"rw", kMmcRwRead}, {"blkcnt", 8}, {"blkid", 0}, {"flag", 0}};
  args.buffers["buf"] = BufferView{buf.data(), buf.size()};
  Result<ReplayStats> r = replayer.Invoke(kMmcEntry, args);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(Status::kInvalidArg, r.status());
}

TEST_F(SecurityTest, TemplateTouchingUnmappedDeviceIsBlocked) {
  // Register accesses are confined to devices the TEE actually mapped.
  DriverletPackage evil = *pkg_;
  for (auto& t : evil.templates) {
    for (auto& e : t.events) {
      if (e.kind == EventKind::kRegWrite) {
        e.device = 99;  // no such mapping
      }
    }
  }
  Replayer replayer(&deploy_->tee(), kDeveloperKey);
  ASSERT_EQ(Status::kOk, replayer.LoadPackage(evil));
  std::vector<uint8_t> buf(512, 0);
  ReplayArgs args;
  args.scalars = {{"rw", kMmcRwRead}, {"blkcnt", 1}, {"blkid", 0}, {"flag", 0}};
  args.buffers["buf"] = BufferView{buf.data(), buf.size()};
  Result<ReplayStats> r = replayer.Invoke(kMmcEntry, args);
  ASSERT_FALSE(r.ok());
}

TEST_F(SecurityTest, TeeRefusesToMapNonSecureDevice) {
  // On a machine where firmware did NOT assign the device instance to the TEE,
  // MapDevice must refuse (no secure IO without TZASC protection).
  Rpi3Testbed open_machine{TestbedOptions{.secure_io = false, .probe_drivers = false}};
  EXPECT_EQ(Status::kPermissionDenied, open_machine.tee().MapDevice(open_machine.mmc_id()));
}

TEST_F(SecurityTest, MissingBufferArgumentRejectedNotCrash) {
  Replayer replayer(&deploy_->tee(), kDeveloperKey);
  ASSERT_EQ(Status::kOk, replayer.LoadPackage(sealed_->data(), sealed_->size()));
  ReplayArgs args;
  args.scalars = {{"rw", kMmcRwRead}, {"blkcnt", 8}, {"blkid", 0}, {"flag", 0}};
  // No "buf" buffer supplied.
  Result<ReplayStats> r = replayer.Invoke(kMmcEntry, args);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(Status::kInvalidArg, r.status());
}

TEST_F(SecurityTest, MissingScalarArgumentRejected) {
  Replayer replayer(&deploy_->tee(), kDeveloperKey);
  ASSERT_EQ(Status::kOk, replayer.LoadPackage(sealed_->data(), sealed_->size()));
  ReplayArgs args;
  args.scalars = {{"rw", kMmcRwRead}};
  Result<ReplayStats> r = replayer.Invoke(kMmcEntry, args);
  // A candidate missing one of its params is skipped, not an argument error:
  // with no template's param set satisfied, the input is simply uncovered.
  EXPECT_EQ(Status::kNoTemplate, r.status());
}

TEST_F(SecurityTest, UnknownEntryRejected) {
  Replayer replayer(&deploy_->tee(), kDeveloperKey);
  ASSERT_EQ(Status::kOk, replayer.LoadPackage(sealed_->data(), sealed_->size()));
  ReplayArgs args;
  Result<ReplayStats> r = replayer.Invoke("replay_gpu", args);
  EXPECT_EQ(Status::kNoTemplate, r.status());
}

}  // namespace
}  // namespace dlt
