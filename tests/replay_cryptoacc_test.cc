// End-to-end crypto-accelerator driverlet tests (fifth class): the
// descriptor-ring DMA engine — record on the developer machine, replay in the
// TEE. Exercises the opposite template shape from the fTPM pipe: bulk
// descriptor writes into DMA memory, per-chunk-count transition paths, an op
// code that stays symbolic in the control word (encrypt and decrypt share one
// template), and an IRQ-gated consumer-index poll.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/core/integrity.h"
#include "src/core/replayer.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/workload/deploy_util.h"
#include "src/workload/record_campaigns.h"
#include "src/workload/rpi3_testbed.h"

namespace dlt {
namespace {

class CryptoaccDriverletTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dev_machine_ = new Rpi3Testbed(TestbedOptions{});
    Result<RecordCampaign> campaign = RecordCryptoaccCampaign(dev_machine_);
    ASSERT_TRUE(campaign.ok()) << StatusName(campaign.status());
    sealed_ = new std::vector<uint8_t>(campaign->Seal(PackageFormat::kText, kDeveloperKey));
  }
  static void TearDownTestSuite() {
    delete dev_machine_;
    delete sealed_;
  }

  void SetUp() override { Redeploy(); }

  void Redeploy() {
    TestbedOptions opts;
    opts.secure_io = true;
    opts.probe_drivers = false;
    deploy_ = std::make_unique<Rpi3Testbed>(opts);
    replayer_ = std::make_unique<Replayer>(&deploy_->tee(), kDeveloperKey);
    ASSERT_EQ(Status::kOk, replayer_->LoadPackage(sealed_->data(), sealed_->size()));
  }

  Result<ReplayStats> Transform(uint64_t op, uint64_t key, uint64_t len,
                                const std::vector<uint8_t>& buf, std::vector<uint8_t>* out) {
    ReplayArgs args;
    args.scalars = {{"op", op}, {"key", key}, {"len", len}};
    args.ro_buffers["buf"] = ConstBufferView{buf.data(), buf.size()};
    args.buffers["out"] = BufferView{out->data(), out->size()};
    return replayer_->Invoke(kCryptoaccEntry, args);
  }

  const InteractionTemplate* FindTemplate(const std::string& name) {
    for (const InteractionTemplate* t : replayer_->templates()) {
      if (t->name == name) {
        return t;
      }
    }
    return nullptr;
  }

  static Rpi3Testbed* dev_machine_;
  static std::vector<uint8_t>* sealed_;
  std::unique_ptr<Rpi3Testbed> deploy_;
  std::unique_ptr<Replayer> replayer_;
};

Rpi3Testbed* CryptoaccDriverletTest::dev_machine_ = nullptr;
std::vector<uint8_t>* CryptoaccDriverletTest::sealed_ = nullptr;

TEST_F(CryptoaccDriverletTest, CampaignDistillsFiveTemplates) {
  // Six record runs, five templates: Dec1 merges into Enc1 — the op is a
  // symbolic operand in the descriptor control word, not a branch.
  EXPECT_EQ(5u, replayer_->templates().size());
  EXPECT_NE(nullptr, FindTemplate("Enc1"));
  EXPECT_EQ(nullptr, FindTemplate("Dec1"));
  EXPECT_NE(nullptr, FindTemplate("Enc2"));
  EXPECT_NE(nullptr, FindTemplate("Enc3"));
  EXPECT_NE(nullptr, FindTemplate("Enc4"));
  EXPECT_NE(nullptr, FindTemplate("Digest"));
}

TEST_F(CryptoaccDriverletTest, EncryptDecryptRoundTripsThroughMergedTemplate) {
  const uint64_t kKey = 0x1234abcd;
  std::vector<uint8_t> pt = PatternBuf(4096, 9);
  std::vector<uint8_t> ct(pt.size(), 0), rt(pt.size(), 0);

  Result<ReplayStats> enc = Transform(kCaOpEncrypt, kKey, pt.size(), pt, &ct);
  ASSERT_TRUE(enc.ok()) << StatusName(enc.status());
  EXPECT_EQ("Enc1", enc->template_name);
  EXPECT_NE(pt, ct);

  // Decrypt was recorded only once (Dec1) and merged away: it replays through
  // the encrypt-recorded template because the op never pinned the path.
  Result<ReplayStats> dec = Transform(kCaOpDecrypt, kKey, ct.size(), ct, &rt);
  ASSERT_TRUE(dec.ok()) << StatusName(dec.status());
  EXPECT_EQ("Enc1", dec->template_name);
  EXPECT_EQ(pt, rt);
}

TEST_F(CryptoaccDriverletTest, CipherMatchesKeystreamOracle) {
  const uint64_t kKey = 0xfeedbee5;
  std::vector<uint8_t> pt = PatternBuf(256, 3);
  std::vector<uint8_t> ct(pt.size(), 0);
  ASSERT_TRUE(Transform(kCaOpEncrypt, kKey, pt.size(), pt, &ct).ok());
  for (size_t i = 0; i < pt.size(); ++i) {
    ASSERT_EQ(static_cast<uint8_t>(pt[i] ^ CryptoaccDevice::KeystreamByte(kKey, i)), ct[i])
        << "ciphertext mismatch at byte " << i;
  }
}

TEST_F(CryptoaccDriverletTest, MultiChunkKeystreamIsChunkLocal) {
  // The engine restarts the keystream per descriptor, so a 2-chunk job's
  // expected ciphertext indexes the keystream modulo the chunk size. This
  // pins the DMA chunking the driver recorded.
  const uint64_t kKey = 0x0badcafe;
  std::vector<uint8_t> pt = PatternBuf(8192, 11);
  std::vector<uint8_t> ct(pt.size(), 0);
  Result<ReplayStats> r = Transform(kCaOpEncrypt, kKey, pt.size(), pt, &ct);
  ASSERT_TRUE(r.ok()) << StatusName(r.status());
  EXPECT_EQ("Enc2", r->template_name);
  for (size_t i = 0; i < pt.size(); ++i) {
    uint8_t ks = CryptoaccDevice::KeystreamByte(kKey, i % kCryptoChunkBytes);
    ASSERT_EQ(static_cast<uint8_t>(pt[i] ^ ks), ct[i]) << "ciphertext mismatch at byte " << i;
  }
}

TEST_F(CryptoaccDriverletTest, ChunkCountSelectsTemplateAndPartialTailGeneralizes) {
  // Unrecorded lengths select by chunk-count range (the loop's branch on the
  // remaining length became interval constraints) and the partial last chunk's
  // length is symbolic: 6000 → 2 chunks, 16000 → 4 chunks.
  struct Case {
    uint64_t len;
    const char* tpl;
  };
  const Case kCases[] = {{6000, "Enc2"}, {16000, "Enc4"}};
  for (const Case& c : kCases) {
    std::vector<uint8_t> pt = PatternBuf(c.len, c.len);
    std::vector<uint8_t> ct(pt.size(), 0), rt(pt.size(), 0);
    Result<ReplayStats> enc = Transform(kCaOpEncrypt, 0x5eed0001, c.len, pt, &ct);
    ASSERT_TRUE(enc.ok()) << c.len << ": " << StatusName(enc.status());
    EXPECT_EQ(c.tpl, enc->template_name) << c.len;
    ASSERT_TRUE(Transform(kCaOpDecrypt, 0x5eed0001, c.len, ct, &rt).ok()) << c.len;
    EXPECT_EQ(pt, rt) << c.len;
  }
}

TEST_F(CryptoaccDriverletTest, DigestMatchesOracleAtUnrecordedLength) {
  const uint64_t kKey = 0xd16e5702;
  std::vector<uint8_t> data = PatternBuf(1024, 5);  // recorded at 4096
  std::vector<uint8_t> out(kCaDigestBytes, 0);
  Result<ReplayStats> r = Transform(kCaOpDigest, kKey, data.size(), data, &out);
  ASSERT_TRUE(r.ok()) << StatusName(r.status());
  EXPECT_EQ("Digest", r->template_name);

  uint8_t want[kCaDigestBytes];
  CryptoaccDevice::DigestBytes(static_cast<uint32_t>(kKey), data.data(), data.size(), want);
  EXPECT_EQ(0, std::memcmp(out.data(), want, kCaDigestBytes));

  // Digest is data-sensitive: flip one byte, digest changes.
  std::vector<uint8_t> data2 = data;
  data2[100] ^= 0x1;
  std::vector<uint8_t> out2(kCaDigestBytes, 0);
  ASSERT_TRUE(Transform(kCaOpDigest, kKey, data2.size(), data2, &out2).ok());
  EXPECT_NE(out, out2);
}

TEST_F(CryptoaccDriverletTest, ConstraintsRejectUncoveredInputs) {
  std::vector<uint8_t> buf(kCryptoMaxJobBytes * 2, 0);
  std::vector<uint8_t> out(kCryptoMaxJobBytes * 2, 0);
  // Zero, unaligned and over-cap lengths violate the distilled constraints.
  EXPECT_EQ(Status::kNoTemplate, Transform(kCaOpEncrypt, 1, 0, buf, &out).status());
  EXPECT_EQ(Status::kNoTemplate, Transform(kCaOpEncrypt, 1, 24, buf, &out).status());
  EXPECT_EQ(Status::kNoTemplate,
            Transform(kCaOpEncrypt, 1, kCryptoMaxJobBytes + 16, buf, &out).status());
  // Unknown op: neither the cipher path nor the digest path admits it.
  EXPECT_EQ(Status::kNoTemplate, Transform(3, 1, 256, buf, &out).status());
}

TEST_F(CryptoaccDriverletTest, EnginesAgreeByteForByteAndMatchGolden) {
  const ReplayEngine kEngines[] = {ReplayEngine::kInterpreter, ReplayEngine::kCompiled};
  std::vector<uint8_t> pt = PatternBuf(8192, 21);
  std::vector<uint8_t> out[2];
  std::string measurement[2];
  for (int i = 0; i < 2; ++i) {
    Redeploy();
    replayer_->set_engine(kEngines[i]);
    std::vector<uint8_t> ct(pt.size(), 0);
    Result<ReplayStats> r = Transform(kCaOpEncrypt, 0x77aa77aa, pt.size(), pt, &ct);
    ASSERT_TRUE(r.ok()) << StatusName(r.status());
    EXPECT_EQ(kEngines[i] == ReplayEngine::kCompiled, r->compiled);
    out[i] = ct;
    measurement[i] = r->measurement;

    const InteractionTemplate* tpl = FindTemplate(r->template_name);
    ASSERT_NE(nullptr, tpl);
    EXPECT_EQ(GoldenMeasurementHex(*tpl), r->measurement);
    EXPECT_TRUE(replayer_->last_measurement().valid);
    EXPECT_TRUE(replayer_->last_measurement().matches_golden);
  }
  EXPECT_EQ(out[0], out[1]);
  EXPECT_EQ(measurement[0], measurement[1]);
}

TEST_F(CryptoaccDriverletTest, BoundedStatusGlitchRecoversViaRetryLadder) {
  FaultInjector inj(&deploy_->machine());
  FaultPlan plan(42);
  plan.Add(FaultSpec{.kind = FaultKind::kMmioCorruptRead,
                     .device = deploy_->crypto_id(),
                     .reg_off = kCaStatus,
                     .max_faults = 1,
                     .arg = kCaStatusBusy});
  ASSERT_EQ(Status::kOk, inj.Arm(plan));

  std::vector<uint8_t> pt = PatternBuf(256, 7);
  std::vector<uint8_t> ct(pt.size(), 0);
  Result<ReplayStats> r = Transform(kCaOpEncrypt, 0xabcd, pt.size(), pt, &ct);
  inj.Disarm();
  ASSERT_TRUE(r.ok()) << StatusName(r.status());
  EXPECT_EQ(2, r->attempts);
  EXPECT_EQ(1u, inj.injected_total());
  // The recovered run still produced the right ciphertext.
  for (size_t i = 0; i < pt.size(); ++i) {
    ASSERT_EQ(static_cast<uint8_t>(pt[i] ^ CryptoaccDevice::KeystreamByte(0xabcd, i)), ct[i]);
  }
}

TEST_F(CryptoaccDriverletTest, DroppedCompletionIrqRecoversViaRetry) {
  // The completion interrupt is lost once: the recorded WaitForIrq diverges on
  // timeout, the ladder soft-resets the engine and the retry completes.
  FaultInjector inj(&deploy_->machine());
  FaultPlan plan(42);
  plan.Add(FaultSpec{.kind = FaultKind::kIrqDrop,
                     .irq_line = kCryptoIrq,
                     .max_faults = 1});
  ASSERT_EQ(Status::kOk, inj.Arm(plan));

  std::vector<uint8_t> pt = PatternBuf(4096, 13);
  std::vector<uint8_t> ct(pt.size(), 0), rt(pt.size(), 0);
  Result<ReplayStats> r = Transform(kCaOpEncrypt, 0x600d, pt.size(), pt, &ct);
  inj.Disarm();
  ASSERT_TRUE(r.ok()) << StatusName(r.status());
  EXPECT_EQ(2, r->attempts);
  ASSERT_TRUE(Transform(kCaOpDecrypt, 0x600d, ct.size(), ct, &rt).ok());
  EXPECT_EQ(pt, rt);
}

TEST_F(CryptoaccDriverletTest, NormalWorldCannotTouchCrypto) {
  Result<uint32_t> r = deploy_->machine().mem().Read32(World::kNormal, kCryptoBase + kCaStatus);
  EXPECT_EQ(Status::kPermissionDenied, r.status());
}

}  // namespace
}  // namespace dlt
