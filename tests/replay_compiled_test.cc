// Replay compiler unit tests: lowering (operand folding, coalescing, fallback
// on unsupported shapes), the TemplateStore compile/selection caches with
// their hit/miss/evict counters, and interpreter-vs-compiled parity plus the
// deterministic cost model on a scripted fake context.
#include <gtest/gtest.h>

#include <cstring>
#include <deque>

#include "src/core/compiled_executor.h"
#include "src/core/compiled_program.h"
#include "src/core/executor.h"
#include "src/core/template_store.h"

namespace dlt {
namespace {

class FakeContext : public ReplayContext {
 public:
  std::deque<uint32_t> reg_values;
  std::map<PhysAddr, uint32_t> mem;
  std::vector<std::pair<uint64_t, uint32_t>> reg_writes;
  PhysAddr pool_next = 0x1000;
  PhysAddr pool_base = 0x1000;
  uint64_t pool_size = 0x100000;
  uint64_t now = 0;
  uint64_t charged_ns = 0;

  Result<uint32_t> RegRead32(uint16_t, uint64_t) override {
    if (reg_values.empty()) {
      return 0u;
    }
    uint32_t v = reg_values.front();
    if (reg_values.size() > 1) {
      reg_values.pop_front();
    }
    return v;
  }
  Status RegWrite32(uint16_t device, uint64_t offset, uint32_t value) override {
    reg_writes.push_back({(static_cast<uint64_t>(device) << 32) | offset, value});
    return Status::kOk;
  }
  Result<uint32_t> MemRead32(PhysAddr addr) override { return mem[addr]; }
  Status MemWrite32(PhysAddr addr, uint32_t value) override {
    mem[addr] = value;
    return Status::kOk;
  }
  Status MemCopyIn(PhysAddr dst, const uint8_t* src, size_t len) override {
    // Word-granular mirror so bulk block writes land in |mem| like MemWrite32.
    for (size_t i = 0; i + 4 <= len; i += 4) {
      uint32_t v = 0;
      std::memcpy(&v, src + i, 4);
      mem[dst + i] = v;
    }
    return Status::kOk;
  }
  Status MemCopyOut(uint8_t* dst, PhysAddr src, size_t len) override {
    for (size_t i = 0; i + 4 <= len; i += 4) {
      uint32_t v = mem.count(src + i) ? mem[src + i] : 0;
      std::memcpy(dst + i, &v, 4);
    }
    return Status::kOk;
  }
  Result<PhysAddr> DmaAlloc(uint64_t size) override {
    PhysAddr a = pool_next;
    pool_next += (size + 0xfff) & ~0xfffull;
    return a;
  }
  void DmaReleaseAll() override { pool_next = pool_base; }
  Result<uint32_t> RandomU32() override { return 0x1234u; }
  uint64_t TimestampUs() override { return now; }
  Status WaitForIrq(int, uint64_t) override { return Status::kOk; }
  void DelayUs(uint64_t us) override { now += us; }
  Status SoftResetDevice(uint16_t) override { return Status::kOk; }
  bool AddressAllowed(PhysAddr addr, size_t len) override {
    return addr >= pool_base && addr + len <= pool_base + pool_size;
  }
  void ChargeReplayOverheadNs(uint64_t ns) override { charged_ns += ns; }
};

TemplateEvent ShmWriteEv(ExprRef base, uint64_t off, uint64_t value) {
  TemplateEvent e;
  e.kind = EventKind::kShmWrite;
  e.addr = Expr::Binary(ExprOp::kAdd, std::move(base), Expr::Const(off));
  e.value = Expr::Const(value);
  return e;
}

TemplateEvent ShmReadEv(ExprRef base, uint64_t off, const std::string& bind) {
  TemplateEvent e;
  e.kind = EventKind::kShmRead;
  e.addr = Expr::Binary(ExprOp::kAdd, std::move(base), Expr::Const(off));
  e.bind = bind;
  return e;
}

TEST(CompiledProgramTest, CoalescesConsecutiveSameBaseWordWrites) {
  InteractionTemplate t;
  t.name = "T";
  for (uint64_t w = 0; w < 4; ++w) {
    t.events.push_back(ShmWriteEv(Expr::Input("dma"), 4 * w, 0x10 + w));
  }
  Result<std::shared_ptr<const CompiledProgram>> p = CompileTemplate(&t);
  ASSERT_TRUE(p.ok());
  ASSERT_EQ(1u, (*p)->ops.size());
  EXPECT_EQ(COp::kShmWriteBulk, (*p)->ops[0].code);
  EXPECT_EQ(4u, (*p)->ops[0].word_end - (*p)->ops[0].word_begin);
  EXPECT_EQ(4u, (*p)->source_events);
  // Cost model: one op + four covered words, strictly below 4 interpreted events.
  EXPECT_EQ(kCompiledOpNs + 4 * kCompiledWordNs, (*p)->StaticCompiledNs());
  EXPECT_LT((*p)->StaticCompiledNs(), (*p)->StaticInterpNs());
}

TEST(CompiledProgramTest, NonAdjacentOffsetsDoNotCoalesce) {
  InteractionTemplate t;
  t.name = "T";
  t.events.push_back(ShmWriteEv(Expr::Input("dma"), 0, 1));
  t.events.push_back(ShmWriteEv(Expr::Input("dma"), 12, 2));  // hole at +4
  Result<std::shared_ptr<const CompiledProgram>> p = CompileTemplate(&t);
  ASSERT_TRUE(p.ok());
  ASSERT_EQ(2u, (*p)->ops.size());
  EXPECT_EQ(COp::kShmWrite, (*p)->ops[0].code);
  EXPECT_EQ(COp::kShmWrite, (*p)->ops[1].code);
}

TEST(CompiledProgramTest, ReadRunStopsWhenABindFeedsTheSharedBase) {
  // Every read addresses q + k, and the first read rebinds q: coalescing the
  // run would evaluate the base once and miss the rebinding the interpreter
  // honors, so the compiler must keep these as single-word reads.
  InteractionTemplate t;
  t.name = "T";
  t.events.push_back(ShmReadEv(Expr::Input("q"), 0, "q"));
  t.events.push_back(ShmReadEv(Expr::Input("q"), 4, ""));
  t.events.push_back(ShmReadEv(Expr::Input("q"), 8, ""));
  Result<std::shared_ptr<const CompiledProgram>> p = CompileTemplate(&t);
  ASSERT_TRUE(p.ok());
  // The rebinding read stays a single-word op; the tail pair (no interfering
  // bind) still coalesces.
  ASSERT_EQ(2u, (*p)->ops.size());
  EXPECT_EQ(COp::kShmRead, (*p)->ops[0].code);
  EXPECT_EQ(COp::kShmReadBulk, (*p)->ops[1].code);
  EXPECT_EQ(2u, (*p)->ops[1].word_end - (*p)->ops[1].word_begin);
}

TEST(CompiledProgramTest, FoldsOperandsToImmediateSlotAndSteps) {
  InteractionTemplate t;
  t.name = "T";
  TemplateEvent imm;
  imm.kind = EventKind::kRegWrite;
  imm.value = Expr::Binary(ExprOp::kAdd, Expr::Const(2), Expr::Const(3));  // folds to 5
  t.events.push_back(imm);
  TemplateEvent slot;
  slot.kind = EventKind::kRegWrite;
  slot.value = Expr::Input("a");
  t.events.push_back(slot);
  TemplateEvent steps;
  steps.kind = EventKind::kRegWrite;
  steps.value = Expr::Binary(ExprOp::kMul, Expr::Input("a"), Expr::Input("b"));
  t.events.push_back(steps);

  Result<std::shared_ptr<const CompiledProgram>> p = CompileTemplate(&t);
  ASSERT_TRUE(p.ok());
  ASSERT_EQ(3u, (*p)->ops.size());
  EXPECT_EQ(Operand::Kind::kImm, (*p)->ops[0].value.kind);
  EXPECT_EQ(5u, (*p)->ops[0].value.imm);
  EXPECT_EQ(Operand::Kind::kSlot, (*p)->ops[1].value.kind);
  EXPECT_EQ(Operand::Kind::kSteps, (*p)->ops[2].value.kind);
}

TEST(CompiledProgramTest, DeepExpressionFallsBackUnsupported) {
  // Right-deep input chain: postfix evaluation needs one stack slot per level,
  // exceeding kMaxExprStack forces the interpreter fallback.
  ExprRef e = Expr::Input("p0");
  for (size_t i = 1; i < kMaxExprStack + 4; ++i) {
    e = Expr::Binary(ExprOp::kAdd, Expr::Input("p" + std::to_string(i)), std::move(e));
  }
  InteractionTemplate t;
  t.name = "T";
  TemplateEvent wr;
  wr.kind = EventKind::kRegWrite;
  wr.value = std::move(e);
  t.events.push_back(wr);
  Result<std::shared_ptr<const CompiledProgram>> p = CompileTemplate(&t);
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(Status::kUnsupported, p.status());
}

TEST(CompiledProgramTest, EvalInitialMatchesTreeEvaluation) {
  InteractionTemplate t;
  t.name = "T";
  t.initial.AddAtom(ConstraintAtom{Expr::Input("a"), Cmp::kEq, Expr::Const(1)});
  TemplateEvent wr;
  wr.kind = EventKind::kRegWrite;
  wr.value = Expr::Const(0);
  t.events.push_back(wr);
  Result<std::shared_ptr<const CompiledProgram>> p = CompileTemplate(&t);
  ASSERT_TRUE(p.ok());

  Result<bool> match = (*p)->EvalInitial({{"a", 1}});
  ASSERT_TRUE(match.ok());
  EXPECT_TRUE(*match);
  Result<bool> reject = (*p)->EvalInitial({{"a", 2}});
  ASSERT_TRUE(reject.ok());
  EXPECT_FALSE(*reject);
  Result<bool> unbound = (*p)->EvalInitial({});
  EXPECT_FALSE(unbound.ok());
  EXPECT_EQ(Status::kNotFound, unbound.status());
}

InteractionTemplate ParityTemplate() {
  InteractionTemplate t;
  t.name = "parity";
  t.entry = "entry";
  t.params.push_back(ParamSpec{"a", false});
  TemplateEvent rd;
  rd.kind = EventKind::kRegRead;
  rd.device = 1;
  rd.reg_off = 0x20;
  rd.bind = "din";
  t.events.push_back(rd);
  TemplateEvent wr;
  wr.kind = EventKind::kRegWrite;
  wr.device = 1;
  wr.reg_off = 0x30;
  wr.value = Expr::Binary(ExprOp::kAdd, Expr::Input("din"), Expr::Input("a"));
  t.events.push_back(wr);
  // Shm accesses must land inside this run's own allocations, so the writes
  // target a freshly bound DMA region. The input-rooted base also keeps the
  // +4w offsets from constant-folding away the shared-base coalescing.
  TemplateEvent alloc;
  alloc.kind = EventKind::kDmaAlloc;
  alloc.value = Expr::Const(64);
  alloc.bind = "dma";
  t.events.push_back(alloc);
  for (uint64_t w = 0; w < 3; ++w) {
    t.events.push_back(ShmWriteEv(Expr::Input("dma"), 4 * w, 0x40 + w));
  }
  return t;
}

TEST(CompiledExecutorTest, MatchesInterpreterAndChargesParityTime) {
  InteractionTemplate t = ParityTemplate();
  Result<std::shared_ptr<const CompiledProgram>> p = CompileTemplate(&t);
  ASSERT_TRUE(p.ok());
  ReplayArgs args;
  args.scalars["a"] = 3;

  FakeContext interp_ctx;
  interp_ctx.reg_values = {0x77};
  Executor interp(&interp_ctx, &t, &args);
  DivergenceReport r1;
  ASSERT_EQ(Status::kOk, interp.Run(&r1));

  FakeContext comp_ctx;
  comp_ctx.reg_values = {0x77};
  CompiledExecutor comp(&comp_ctx, p->get(), &args);
  DivergenceReport r2;
  ASSERT_EQ(Status::kOk, comp.Run(&r2));

  EXPECT_EQ(interp_ctx.reg_writes, comp_ctx.reg_writes);
  EXPECT_EQ(interp_ctx.mem, comp_ctx.mem);
  EXPECT_EQ(interp.events_executed(), comp.events_executed());
  // Parity charging: both engines bill the interpreter model to the clock.
  EXPECT_EQ(interp_ctx.charged_ns, comp_ctx.charged_ns);
  EXPECT_EQ(uint64_t{6} * kReplayInterpEventNs, comp_ctx.charged_ns);
  // The model cost is accounted separately and is strictly cheaper.
  EXPECT_GT(comp.cpu_model_ns(), 0u);
  EXPECT_LT(comp.cpu_model_ns(), comp_ctx.charged_ns);
  EXPECT_EQ(1u, comp.bulk_ops());
}

TEST(CompiledExecutorTest, ModelClockChargesModelCostInstead) {
  InteractionTemplate t = ParityTemplate();
  Result<std::shared_ptr<const CompiledProgram>> p = CompileTemplate(&t);
  ASSERT_TRUE(p.ok());
  ReplayArgs args;
  args.scalars["a"] = 3;

  FakeContext ctx;
  ctx.reg_values = {0x77};
  CompiledExecutor exec(&ctx, p->get(), &args);
  exec.set_model_clock(true);
  DivergenceReport r;
  ASSERT_EQ(Status::kOk, exec.Run(&r));
  EXPECT_EQ(exec.cpu_model_ns(), ctx.charged_ns);
  EXPECT_LT(ctx.charged_ns, uint64_t{6} * kReplayInterpEventNs);
}

TEST(CompiledExecutorTest, DivergenceReportMatchesInterpreter) {
  InteractionTemplate t;
  t.name = "T";
  Constraint c;
  c.AddAtom(ConstraintAtom{Expr::Input("din"), Cmp::kEq, Expr::Const(0x1)});
  TemplateEvent rd;
  rd.kind = EventKind::kRegRead;
  rd.device = 1;
  rd.reg_off = 0x20;
  rd.bind = "din";
  rd.constraint = std::move(c);
  rd.state_changing = true;
  t.events.push_back(rd);
  Result<std::shared_ptr<const CompiledProgram>> p = CompileTemplate(&t);
  ASSERT_TRUE(p.ok());
  ReplayArgs args;

  FakeContext ictx;
  ictx.reg_values = {0x2};
  Executor interp(&ictx, &t, &args);
  DivergenceReport ri;
  EXPECT_EQ(Status::kDiverged, interp.Run(&ri));

  FakeContext cctx;
  cctx.reg_values = {0x2};
  CompiledExecutor comp(&cctx, p->get(), &args);
  DivergenceReport rc;
  EXPECT_EQ(Status::kDiverged, comp.Run(&rc));

  EXPECT_EQ(ri.valid, rc.valid);
  EXPECT_EQ(ri.template_name, rc.template_name);
  EXPECT_EQ(ri.event_index, rc.event_index);
  EXPECT_EQ(ri.event_desc, rc.event_desc);
  EXPECT_EQ(ri.observed, rc.observed);
  EXPECT_EQ(ri.expected_constraint, rc.expected_constraint);
}

DriverletPackage CachePackage() {
  DriverletPackage pkg;
  pkg.driverlet = "d";
  InteractionTemplate t;
  t.name = "T";
  t.entry = "e";
  t.params.push_back(ParamSpec{"a", false});
  t.initial.AddAtom(ConstraintAtom{Expr::Input("a"), Cmp::kLe, Expr::Const(100)});
  TemplateEvent wr;
  wr.kind = EventKind::kRegWrite;
  wr.reg_off = 0x10;
  wr.value = Expr::Input("a");
  t.events.push_back(wr);
  pkg.templates.push_back(std::move(t));
  return pkg;
}

TEST(TemplateStoreCompiledTest, SelectAndCompileCacheCounters) {
  TemplateStore store;
  ASSERT_EQ(Status::kOk, store.AddPackage(CachePackage()));

  // First selection: both caches miss, the program compiles once.
  Result<TemplateStore::CompiledSelection> s1 = store.SelectCompiled("d", "e", {{"a", 1}});
  ASSERT_TRUE(s1.ok());
  ASSERT_NE(nullptr, s1->program);
  EXPECT_EQ(1u, store.select_cache_misses());
  EXPECT_EQ(0u, store.select_cache_hits());
  EXPECT_EQ(1u, store.compile_cache_misses());
  EXPECT_EQ(0u, store.compile_cache_hits());

  // Same scalar signature, different value: select cache hits (values gate at
  // invoke time), compile cache untouched.
  Result<TemplateStore::CompiledSelection> s2 = store.SelectCompiled("d", "e", {{"a", 7}});
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s1->program.get(), s2->program.get());
  EXPECT_EQ(1u, store.select_cache_hits());
  EXPECT_EQ(1u, store.select_cache_misses());

  // New scalar signature (superset): a fresh select-cache entry reuses the
  // compiled program through the compile cache.
  Result<TemplateStore::CompiledSelection> s3 =
      store.SelectCompiled("d", "e", {{"a", 1}, {"extra", 9}});
  ASSERT_TRUE(s3.ok());
  EXPECT_EQ(s1->program.get(), s3->program.get());
  EXPECT_EQ(2u, store.select_cache_misses());
  EXPECT_EQ(1u, store.compile_cache_hits());
  EXPECT_EQ(1u, store.compile_cache_misses());

  // Initial-constraint rejection happens per invoke against the cached list.
  std::vector<const InteractionTemplate*> rejected;
  Result<TemplateStore::CompiledSelection> s4 =
      store.SelectCompiled("d", "e", {{"a", 1000}}, &rejected);
  EXPECT_FALSE(s4.ok());
  EXPECT_EQ(Status::kNoTemplate, s4.status());
  EXPECT_EQ(1u, rejected.size());

  // Reloading the driverlet invalidates both caches (template addresses die).
  ASSERT_EQ(Status::kOk, store.AddPackage(CachePackage()));
  EXPECT_EQ(1u, store.compile_cache_evictions());
  EXPECT_GE(store.select_cache_evictions(), 2u);
  Result<TemplateStore::CompiledSelection> s5 = store.SelectCompiled("d", "e", {{"a", 1}});
  ASSERT_TRUE(s5.ok());
  EXPECT_EQ(2u, store.compile_cache_misses());
}

}  // namespace
}  // namespace dlt
