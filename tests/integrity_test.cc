// Tier-1 tests for runtime integrity measurement (src/core/integrity.h) and
// session attestation (src/tee/attestation.h): golden-measurement parity
// across both engines for every driverlet class, measurement stability,
// fault-plane divergence feeding the rung-0 integrity quarantine, and the
// signed quote's round-trip + tamper rejection.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/integrity.h"
#include "src/core/replayer.h"
#include "src/dev/vc4/vc4_firmware.h"
#include "src/drv/bcm_sdhost_driver.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/soc/status.h"
#include "src/tee/attestation.h"
#include "src/workload/deploy_util.h"
#include "src/workload/record_campaigns.h"

namespace dlt {
namespace {

const std::vector<uint8_t>& MmcPkg() {
  static const std::vector<uint8_t>* pkg = new std::vector<uint8_t>(BuildMmcPackage());
  return *pkg;
}
const std::vector<uint8_t>& UsbPkg() {
  static const std::vector<uint8_t>* pkg = new std::vector<uint8_t>(BuildUsbPackage());
  return *pkg;
}
const std::vector<uint8_t>& CameraPkg() {
  static const std::vector<uint8_t>* pkg = new std::vector<uint8_t>(BuildCameraPackage());
  return *pkg;
}

// One covered invoke's arguments for the deployment's entry; buffers live in
// |buf|/|aux| and must outlive the call.
ReplayArgs CoveredArgs(const std::string& entry, std::vector<uint8_t>* buf,
                       std::vector<uint8_t>* aux) {
  ReplayArgs args;
  if (entry == kCameraEntry) {
    buf->assign(Vc4Firmware::FrameBytes(1440) + 4096, 0);
    aux->assign(4, 0);
    args.scalars = {{"frame", 1}, {"resolution", 720}, {"buf_size", buf->size()}};
    args.buffers["buf"] = BufferView{buf->data(), buf->size()};
    args.buffers["img_size"] = BufferView{aux->data(), aux->size()};
  } else {
    *buf = PatternBuf(8 * 512, 5);
    args.scalars = {{"rw", kMmcRwWrite}, {"blkcnt", 8}, {"blkid", 2048}, {"flag", 0}};
    args.ro_buffers["buf"] = ConstBufferView{buf->data(), buf->size()};
  }
  return args;
}

const InteractionTemplate* FindTemplate(const Deployment& d, const std::string& name) {
  for (const InteractionTemplate* t : d.service->store().templates(d.driverlet)) {
    if (t->name == name) {
      return t;
    }
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Golden parity across engines, for every driverlet class
// ---------------------------------------------------------------------------

TEST(IntegrityTest, MeasurementMatchesGoldenOnBothEnginesForEveryClass) {
  struct Case {
    const char* label;
    const std::vector<uint8_t>& pkg;
  };
  const Case kCases[] = {{"mmc", MmcPkg()}, {"usb", UsbPkg()}, {"camera", CameraPkg()}};
  for (const Case& c : kCases) {
    SCOPED_TRACE(c.label);
    std::string measurement[2];
    for (int engine = 0; engine < 2; ++engine) {
      ReplayServiceConfig cfg;
      cfg.use_compiled = engine == 1;
      Deployment d = MakeDeployment(c.pkg, cfg);
      ASSERT_NE(d.session, 0u);
      const std::string entry =
          d.service->store().templates(d.driverlet).front()->entry;
      std::vector<uint8_t> buf, aux;
      ReplayArgs args = CoveredArgs(entry, &buf, &aux);
      Result<ReplayStats> r = d.service->Invoke(d.session, entry, args);
      ASSERT_TRUE(r.ok()) << StatusName(r.status());
      ASSERT_FALSE(r->measurement.empty());
      EXPECT_GT(r->events_measured, 0u);
      measurement[engine] = r->measurement;

      // A clean run's chain is computable statically from the template alone.
      const InteractionTemplate* tpl = FindTemplate(d, r->template_name);
      ASSERT_NE(tpl, nullptr);
      EXPECT_EQ(r->measurement, GoldenMeasurementHex(*tpl));

      // The replayer's record and the session stats agree with the result.
      const MeasurementRecord& m = d.replayer->last_measurement();
      EXPECT_TRUE(m.valid);
      EXPECT_TRUE(m.matches_golden);
      EXPECT_EQ(m.Hex(), r->measurement);
      Result<SessionStats> st = d.service->Stats(d.session);
      ASSERT_TRUE(st.ok());
      EXPECT_EQ(st->last_measurement, r->measurement);
      EXPECT_EQ(st->measurement_mismatches, 0u);
    }
    // The acceptance bar: byte-identical chains, interpreter vs compiled.
    EXPECT_EQ(measurement[0], measurement[1]);
  }
}

TEST(IntegrityTest, MeasurementIsStableAcrossRepeatedInvokes) {
  Deployment d = MakeDeployment(MmcPkg());
  ASSERT_NE(d.session, 0u);
  const std::string entry = d.service->store().templates(d.driverlet).front()->entry;
  std::vector<uint8_t> buf, aux;
  ReplayArgs args = CoveredArgs(entry, &buf, &aux);
  Result<ReplayStats> a = d.service->Invoke(d.session, entry, args);
  Result<ReplayStats> b = d.service->Invoke(d.session, entry, args);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->measurement, b->measurement);
  EXPECT_EQ(a->events_measured, b->events_measured);
}

// Identical session histories on fresh deployments produce byte-identical
// quotes: the PCR chain, counters and MAC are all deterministic.
TEST(IntegrityTest, IdenticalHistoriesProduceIdenticalQuotes) {
  std::string serialized[2];
  for (int run = 0; run < 2; ++run) {
    Deployment d = MakeDeployment(MmcPkg());
    ASSERT_NE(d.session, 0u);
    const std::string entry = d.service->store().templates(d.driverlet).front()->entry;
    std::vector<uint8_t> buf, aux;
    ReplayArgs args = CoveredArgs(entry, &buf, &aux);
    ASSERT_TRUE(d.service->Invoke(d.session, entry, args).ok());
    ASSERT_TRUE(d.service->Invoke(d.session, entry, args).ok());
    Result<AttestationQuote> q = d.service->Attest(d.session, "stable-nonce");
    ASSERT_TRUE(q.ok());
    serialized[run] = SerializeQuote(*q);
  }
  EXPECT_EQ(serialized[0], serialized[1]);
}

// ---------------------------------------------------------------------------
// Fault-plane divergence and the rung-0 integrity quarantine
// ---------------------------------------------------------------------------

// Corrupts every MMIO read from the MMC controller so the single allowed
// attempt diverges deterministically.
FaultPlan CertainMmioCorruption(uint16_t device) {
  FaultPlan plan(7);
  FaultSpec spec;
  spec.kind = FaultKind::kMmioCorruptRead;
  spec.device = device;
  spec.arg = 0xff;
  plan.Add(spec);
  return plan;
}

TEST(IntegrityTest, FaultedRunDivergesFromGoldenAndQuarantinesAtRungZero) {
  ReplayServiceConfig cfg;
  cfg.enforce_integrity = true;
  cfg.quarantine_threshold = 0;  // rung 0 must quarantine on its own
  Deployment d = MakeDeployment(MmcPkg(), cfg);
  ASSERT_NE(d.session, 0u);
  d.replayer->set_max_attempts(1);
  const std::string entry = d.service->store().templates(d.driverlet).front()->entry;
  std::vector<uint8_t> buf, aux;
  ReplayArgs args = CoveredArgs(entry, &buf, &aux);

  FaultInjector injector(&d.tb->machine());
  ASSERT_EQ(injector.Arm(CertainMmioCorruption(d.tb->mmc_id())), Status::kOk);
  Result<ReplayStats> r = d.service->Invoke(d.session, entry, args);
  injector.Disarm();
  ASSERT_FALSE(r.ok());

  // The failed attempt measured a strict prefix, not the golden chain.
  const MeasurementRecord& m = d.replayer->last_measurement();
  EXPECT_TRUE(m.valid);
  EXPECT_FALSE(m.matches_golden);
  Result<SessionStats> st = d.service->Stats(d.session);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->measurement_mismatches, 1u);
  EXPECT_TRUE(st->quarantined);
  EXPECT_EQ(d.service->quarantined_sessions(), 1u);

  // Quarantine is terminal for the session: further invokes fail fast.
  EXPECT_EQ(d.service->Invoke(d.session, entry, args).status(), Status::kQuarantined);

  // The quote carries the divergence.
  Result<AttestationQuote> q = d.service->Attest(d.session, "post-fault");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->measurement_mismatches, 1u);
  EXPECT_TRUE(q->quarantined);
  EXPECT_TRUE(VerifyQuote(*q, kDeveloperKey));
}

TEST(IntegrityTest, MismatchWithoutEnforcementRecordsButDoesNotQuarantine) {
  ReplayServiceConfig cfg;
  cfg.enforce_integrity = false;
  cfg.quarantine_threshold = 0;
  Deployment d = MakeDeployment(MmcPkg(), cfg);
  ASSERT_NE(d.session, 0u);
  d.replayer->set_max_attempts(1);
  const std::string entry = d.service->store().templates(d.driverlet).front()->entry;
  std::vector<uint8_t> buf, aux;
  ReplayArgs args = CoveredArgs(entry, &buf, &aux);

  FaultInjector injector(&d.tb->machine());
  ASSERT_EQ(injector.Arm(CertainMmioCorruption(d.tb->mmc_id())), Status::kOk);
  Result<ReplayStats> r = d.service->Invoke(d.session, entry, args);
  injector.Disarm();
  ASSERT_FALSE(r.ok());

  Result<SessionStats> st = d.service->Stats(d.session);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->measurement_mismatches, 1u);
  EXPECT_FALSE(st->quarantined);

  // Without enforcement the session is never fenced: the next invoke may
  // need the recovery ladder, but it is not rejected out of hand.
  EXPECT_NE(d.service->Invoke(d.session, entry, args).status(), Status::kQuarantined);
}

// ---------------------------------------------------------------------------
// Attestation quotes
// ---------------------------------------------------------------------------

TEST(AttestTest, QuoteRoundTripsAndRejectsTampering) {
  Deployment d = MakeDeployment(MmcPkg());
  ASSERT_NE(d.session, 0u);
  const std::string entry = d.service->store().templates(d.driverlet).front()->entry;
  std::vector<uint8_t> buf, aux;
  ReplayArgs args = CoveredArgs(entry, &buf, &aux);
  ASSERT_TRUE(d.service->Invoke(d.session, entry, args).ok());

  Result<AttestationQuote> q = d.service->Attest(d.session, "fresh-nonce");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->driverlet, d.driverlet);
  EXPECT_EQ(q->invokes, 1u);
  EXPECT_EQ(q->nonce, "fresh-nonce");
  EXPECT_FALSE(q->session_measurement.empty());
  EXPECT_TRUE(VerifyQuote(*q, kDeveloperKey));

  // Text round-trip is exact and still verifies.
  Result<AttestationQuote> rt = ParseQuote(SerializeQuote(*q));
  ASSERT_TRUE(rt.ok());
  EXPECT_EQ(SerializeQuote(*rt), SerializeQuote(*q));
  EXPECT_TRUE(VerifyQuote(*rt, kDeveloperKey));

  // Any tampered field invalidates the MAC.
  AttestationQuote t = *q;
  t.invokes = 2;
  EXPECT_FALSE(VerifyQuote(t, kDeveloperKey));
  t = *q;
  t.session_measurement[0] = t.session_measurement[0] == '0' ? '1' : '0';
  EXPECT_FALSE(VerifyQuote(t, kDeveloperKey));
  t = *q;
  t.nonce = "replayed-nonce";
  EXPECT_FALSE(VerifyQuote(t, kDeveloperKey));
  // And the wrong key never verifies.
  EXPECT_FALSE(VerifyQuote(*q, "not-the-developer-key"));

  EXPECT_EQ(d.service->Attest(9999, "n").status(), Status::kNotFound);
}

TEST(AttestTest, SessionPcrExtendsWithEveryInvoke) {
  Deployment d = MakeDeployment(MmcPkg());
  ASSERT_NE(d.session, 0u);
  const std::string entry = d.service->store().templates(d.driverlet).front()->entry;
  std::vector<uint8_t> buf, aux;
  ReplayArgs args = CoveredArgs(entry, &buf, &aux);

  Result<AttestationQuote> q0 = d.service->Attest(d.session, "n");
  ASSERT_TRUE(q0.ok());
  ASSERT_TRUE(d.service->Invoke(d.session, entry, args).ok());
  Result<AttestationQuote> q1 = d.service->Attest(d.session, "n");
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(d.service->Invoke(d.session, entry, args).ok());
  Result<AttestationQuote> q2 = d.service->Attest(d.session, "n");
  ASSERT_TRUE(q2.ok());

  // Same invoke, different chain positions: the PCR commits to history, not
  // just to the set of templates run.
  EXPECT_NE(q0->session_measurement, q1->session_measurement);
  EXPECT_NE(q1->session_measurement, q2->session_measurement);
  EXPECT_EQ(q2->invokes, 2u);
}

}  // namespace
}  // namespace dlt
